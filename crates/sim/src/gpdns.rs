//! The Google Public DNS model.
//!
//! Reproduces every mechanism the cache-probing technique depends on
//! (paper §3.1):
//!
//! - **anycast PoPs with independent caches** — cache state is per-PoP;
//! - **multiple independent cache pools per PoP** — a query lands in
//!   one pool at random, which is why the prober sends 5 redundant
//!   queries (Trufflehunter documented the pool structure);
//! - **ECS-scoped cache entries** — one entry per authoritative
//!   response scope, so a crafted-ECS probe reveals whether any client
//!   in that scope resolved the domain within the TTL;
//! - **client-supplied ECS** — a query carrying an ECS option uses that
//!   prefix rather than the querier's address;
//! - **non-recursive semantics** — `RD=0` queries never resolve
//!   upstream and never populate the cache;
//! - **the UDP rate limit** — repeated probing over UDP is throttled
//!   far below the normal 1,500 QPS, which is why the paper probes over
//!   TCP.
//!
//! Cache-entry liveness is *sampled analytically*: client queries are
//! Poisson, so an entry for scope `G` in pool `k` is live at `t` with
//! probability `1 − exp(−(λ_G/K)·min(TTL, t))`. The sample is keyed by
//! `(seed, PoP, pool, domain, scope, ⌊t/TTL⌋)`, making repeated queries
//! within a TTL window consistent and the whole simulation reproducible
//! (see the crate docs for why this is statistically faithful).

use std::collections::HashMap;
use std::sync::Arc;

use clientmap_dns::{wire, DomainName, Message, Rcode, Record, RrType};
use clientmap_faults::{FaultMetrics, FaultPlan, QueryFault};
use clientmap_net::{Prefix, SeedMixer};
use clientmap_store::Slash24Bitset;
use clientmap_telemetry::{Counter, MetricsRegistry};
use clientmap_world::World;

use crate::anycast::Catchments;
use crate::authoritative::{Authoritatives, DomainScopeKey};
use crate::pops::{pop_catalog, PopId};
use crate::SimTime;

/// Independent cache pools per PoP (Trufflehunter-style).
pub const POOLS_PER_POP: usize = 4;

/// The special TXT name revealing which PoP answered.
pub const MYADDR_NAME: &str = "o-o.myaddr.l.google.com";

/// UDP tokens per second when probing repeatedly (the paper's "much
/// lower than the normal 1,500 QPS").
const UDP_RATE: f64 = 20.0;
const UDP_BURST: f64 = 60.0;
/// TCP sustained limit.
const TCP_RATE: f64 = 1500.0;
const TCP_BURST: f64 = 3000.0;

/// Transport for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// UDP — fast but rate limited under repeated probing.
    Udp,
    /// TCP — what the paper uses; effectively unthrottled at probe rates.
    Tcp,
}

/// Counters exposed for tests/reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpdnsStats {
    /// Total queries that reached a PoP.
    pub queries: u64,
    /// Queries dropped by the rate limiter.
    pub rate_limited: u64,
    /// Non-recursive cache hits with scope > 0.
    pub scoped_hits: u64,
    /// Non-recursive cache hits with scope 0.
    pub scope0_hits: u64,
    /// Non-recursive misses.
    pub misses: u64,
    /// Recursive queries answered.
    pub recursive: u64,
}

/// High-level outcome of one probe, decoded for convenience.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// Cache hit: the returned ECS scope (length > 0) and remaining TTL.
    Hit {
        /// The scope prefix attached to the answer.
        scope: Prefix,
        /// Remaining TTL, seconds.
        remaining_ttl: u32,
    },
    /// Cache hit whose entry was cached for the whole address space
    /// (scope 0) — the paper does *not* count these as prefix activity.
    HitScopeZero,
    /// No live entry covered the prefix.
    Miss,
    /// The query was dropped (rate limit).
    Dropped,
}

/// Aggregated client load for one cached scope at one PoP.
#[derive(Debug, Clone, Copy, Default)]
struct ScopeLoad {
    /// Mean queries/second into this PoP for this scope (all pools).
    rate: f64,
    /// Rate-weighted mean longitude (for the diurnal factor).
    lon_weighted: f64,
}

impl ScopeLoad {
    fn add(&mut self, rate: f64, lon: f64) {
        self.rate += rate;
        self.lon_weighted += rate * lon;
    }

    fn lon(&self) -> f64 {
        if self.rate > 0.0 {
            self.lon_weighted / self.rate
        } else {
            0.0
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: SimTime,
}

/// Per-caller connection state: token buckets and counters.
///
/// The service core ([`GooglePublicDns`]) is immutable after build, so
/// independent probers (threads) each hold their own session and query
/// the shared core concurrently — exactly like independent VMs hitting
/// the real anycast service.
#[derive(Debug, Default)]
pub struct GpdnsSession {
    /// Per-(prober, PoP, transport) token buckets.
    buckets: HashMap<(u64, PopId, Transport), Bucket>,
    /// Counters for this session.
    pub stats: GpdnsStats,
    /// Session-local sequence for pool randomisation.
    seq: u64,
}

impl GpdnsSession {
    /// A fresh session.
    pub fn new() -> GpdnsSession {
        GpdnsSession::default()
    }

    /// Merges another session's counters into this one.
    pub fn absorb(&mut self, other: &GpdnsSession) {
        self.stats.queries += other.stats.queries;
        self.stats.rate_limited += other.stats.rate_limited;
        self.stats.scoped_hits += other.stats.scoped_hits;
        self.stats.scope0_hits += other.stats.scope0_hits;
        self.stats.misses += other.stats.misses;
        self.stats.recursive += other.stats.recursive;
    }
}

/// Shared atomic telemetry for the service core.
///
/// Unlike [`GpdnsStats`] (per-session, absorbed after the fact), these
/// counters live on the immutable [`GooglePublicDns`] and are bumped
/// directly from every concurrent prober. All updates are commutative
/// atomic adds, so the totals — and any [`MetricsRegistry`] snapshot of
/// them — are identical across thread interleavings.
///
/// Every exit path of [`GooglePublicDns::handle_query_at_pop`] hits
/// exactly one terminal counter, so the conservation law
/// `queries == rate_limited + decode_errors + formerr + myaddr +
/// recursive + hits + scope0 + misses` holds by construction (the
/// invariant `clientmap-core` re-checks after every end-to-end run).
#[derive(Debug)]
pub struct GpdnsMetrics {
    queries_udp: Arc<Counter>,
    queries_tcp: Arc<Counter>,
    rate_limited_udp: Arc<Counter>,
    rate_limited_tcp: Arc<Counter>,
    decode_errors: Arc<Counter>,
    formerr: Arc<Counter>,
    myaddr: Arc<Counter>,
    recursive: Arc<Counter>,
    /// Scoped cache hits, per pool.
    pool_hits: [Arc<Counter>; POOLS_PER_POP],
    /// Scope-0 cache hits, per pool.
    pool_scope0: [Arc<Counter>; POOLS_PER_POP],
    /// Cache misses, per pool.
    pool_misses: [Arc<Counter>; POOLS_PER_POP],
    /// Misses on domains Google keeps no ECS-scoped entries for (no
    /// pool is drawn on that path).
    miss_non_ecs: Arc<Counter>,
}

impl GpdnsMetrics {
    /// Registers the full counter family under `gpdns.` in `m`.
    pub fn register(m: &MetricsRegistry) -> Self {
        let pool_family =
            |kind: &str| std::array::from_fn(|p| m.counter(&format!("gpdns.cache.{kind}.pool{p}")));
        GpdnsMetrics {
            queries_udp: m.counter("gpdns.queries.udp"),
            queries_tcp: m.counter("gpdns.queries.tcp"),
            rate_limited_udp: m.counter("gpdns.rate_limited.udp"),
            rate_limited_tcp: m.counter("gpdns.rate_limited.tcp"),
            decode_errors: m.counter("gpdns.decode_errors"),
            formerr: m.counter("gpdns.formerr"),
            myaddr: m.counter("gpdns.myaddr"),
            recursive: m.counter("gpdns.recursive"),
            pool_hits: pool_family("hit"),
            pool_scope0: pool_family("scope0"),
            pool_misses: pool_family("miss"),
            miss_non_ecs: m.counter("gpdns.cache.miss.non_ecs"),
        }
    }

    /// Counters bound to a private registry — for standalone service
    /// cores built outside a [`crate::Sim`] (tests, microbenches).
    fn detached() -> Self {
        GpdnsMetrics::register(&MetricsRegistry::new())
    }

    fn queries(&self, transport: Transport) -> &Counter {
        match transport {
            Transport::Udp => &self.queries_udp,
            Transport::Tcp => &self.queries_tcp,
        }
    }

    fn rate_limited(&self, transport: Transport) -> &Counter {
        match transport {
            Transport::Udp => &self.rate_limited_udp,
            Transport::Tcp => &self.rate_limited_tcp,
        }
    }
}

/// The simulated Google Public DNS service (immutable after build).
#[derive(Debug)]
pub struct GooglePublicDns {
    seed: u64,
    /// ECS-capable domains (index = domain slot used in hashing).
    ecs_domains: Vec<DomainName>,
    /// Uncompressed QNAME wire bytes per slot — the fast lane matches
    /// and echoes raw question bytes instead of decoding names.
    domain_wires: Vec<Vec<u8>>,
    /// Pre-mixed scope-policy hash states per slot, so the fast lane
    /// never stringifies a domain name.
    scope_keys: Vec<DomainScopeKey>,
    ttls: Vec<u32>,
    /// `[pop][domain] → scope → load` for scoped entries.
    scoped: Vec<Vec<HashMap<Prefix, ScopeLoad>>>,
    /// `[pop][domain]` load for scope-0 entries.
    global: Vec<Vec<ScopeLoad>>,
    /// Diurnal amplitude copied from the world config.
    diurnal_amplitude: f64,
    /// Base address for per-PoP egress (the Google /16).
    egress_base: u32,
    /// Shared atomic telemetry (hit/miss per pool, drops by transport).
    metrics: GpdnsMetrics,
    /// Fault-injection plan consulted on every admitted query (the
    /// inert [`FaultPlan::off`] by default, which short-circuits).
    faults: Arc<FaultPlan>,
    /// Injection counters — `None` when the plan is off, so fault-free
    /// metrics snapshots stay byte-identical to the pre-fault service.
    fault_metrics: Option<FaultMetrics>,
}

/// What an injected [`QueryFault`] looks like on the wire.
enum Injected {
    /// No response at all (loss, latency blow-out, reset, outage).
    Drop,
    /// An answerless response with an error rcode and/or the TC bit.
    Error { rcode: u8, tc: bool },
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uncompressed QNAME wire bytes (labels + terminal root byte).
fn qname_wire(name: &DomainName) -> Vec<u8> {
    let mut v = Vec::with_capacity(32);
    for label in name.labels() {
        v.push(label.as_str().len() as u8);
        v.extend_from_slice(label.as_str().as_bytes());
    }
    v.push(0);
    v
}

impl GooglePublicDns {
    /// Builds the service with counters on a private registry (for
    /// standalone use; [`crate::Sim`] uses
    /// [`GooglePublicDns::build_with_metrics`]).
    pub fn build(world: &World, catchments: &Catchments, auth: &Authoritatives) -> Self {
        Self::build_with_metrics(world, catchments, auth, GpdnsMetrics::detached())
    }

    /// Builds the service: aggregates every active /24's Google-bound
    /// query rate into per-(PoP, domain, scope) loads. Service-side
    /// telemetry lands on the supplied counter family.
    pub fn build_with_metrics(
        world: &World,
        catchments: &Catchments,
        auth: &Authoritatives,
        metrics: GpdnsMetrics,
    ) -> Self {
        let seed = SeedMixer::new(world.config.seed).mix_str("gpdns").finish();
        let npops = pop_catalog().len();
        let specs: Vec<&clientmap_world::DomainSpec> = world
            .domains
            .specs()
            .iter()
            .filter(|s| s.supports_ecs)
            .collect();
        let ecs_domains: Vec<DomainName> = specs.iter().map(|s| s.name.clone()).collect();
        let domain_wires: Vec<Vec<u8>> = ecs_domains.iter().map(qname_wire).collect();
        let scope_keys: Vec<DomainScopeKey> = specs.iter().map(|s| auth.scope_key(s)).collect();
        let ttls: Vec<u32> = specs.iter().map(|s| s.ttl_secs).collect();

        let mut scoped: Vec<Vec<HashMap<Prefix, ScopeLoad>>> = (0..npops)
            .map(|_| vec![HashMap::new(); specs.len()])
            .collect();
        let mut global: Vec<Vec<ScopeLoad>> = (0..npops)
            .map(|_| vec![ScopeLoad::default(); specs.len()])
            .collect();

        for (i, s) in world.slash24s.iter().enumerate() {
            if !s.is_active() || s.resolver_mix.google <= 0.0 {
                continue;
            }
            let pop = catchments.of_slash24(i);
            for (d, spec) in specs.iter().enumerate() {
                // Base rate into Google for this domain at the diurnal
                // mean (multiplier 1); the diurnal factor is re-applied
                // at query time from the stored longitude.
                let clients = s.users + s.machines;
                let rate =
                    clients * world.config.dns_queries_per_user_per_day * spec.popularity_weight
                        / 86_400.0
                        * s.resolver_mix.google;
                if rate <= 0.0 {
                    continue;
                }
                match auth.base_scope(spec, s.prefix.addr()) {
                    Some(scope) if scope.is_default() => {
                        global[pop][d].add(rate, s.coord.lon);
                    }
                    Some(scope) => {
                        scoped[pop][d]
                            .entry(scope)
                            .or_default()
                            .add(rate, s.coord.lon);
                    }
                    None => {}
                }
            }
        }

        GooglePublicDns {
            seed,
            ecs_domains,
            domain_wires,
            scope_keys,
            ttls,
            scoped,
            global,
            diurnal_amplitude: world.config.diurnal_amplitude,
            egress_base: world.blocks[world.ases[world.google_as].blocks[0]]
                .prefix
                .addr(),
            metrics,
            faults: Arc::new(FaultPlan::off()),
            fault_metrics: None,
        }
    }

    /// Attaches a fault-injection plan (builder style). Injection
    /// counters are only registered for enabled plans.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, metrics: Option<FaultMetrics>) -> Self {
        self.fault_metrics = if plan.enabled() { metrics } else { None };
        self.faults = plan;
        self
    }

    /// The fault plan this service consults.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether fault injection is active — probers switch to the
    /// resilient (retrying, accounting) query path when it is.
    pub fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// Consults the plan for one admitted query and counts the
    /// injection. Both serve lanes call this at the same logical point
    /// (after admission, before the pool-sequence draw) with the same
    /// coordinates, so they make identical decisions.
    fn fault_for(
        &self,
        prober: u64,
        pop: PopId,
        transport: Transport,
        t: SimTime,
        id: u16,
    ) -> Option<Injected> {
        let fault =
            self.faults
                .query_fault(prober, pop, transport == Transport::Udp, t.as_millis(), id)?;
        if let Some(fm) = &self.fault_metrics {
            fm.count_injected(fault);
        }
        Some(match fault {
            QueryFault::ServFail => Injected::Error {
                rcode: Rcode::ServFail.to_u8(),
                tc: false,
            },
            QueryFault::Refused => Injected::Error {
                rcode: Rcode::Refused.to_u8(),
                tc: false,
            },
            QueryFault::Truncate => Injected::Error { rcode: 0, tc: true },
            QueryFault::Loss | QueryFault::Latency | QueryFault::TcpReset | QueryFault::Outage => {
                Injected::Drop
            }
        })
    }

    /// The egress address authoritatives/roots see for queries issued
    /// by this PoP's resolver fleet.
    pub fn egress_addr(&self, pop: PopId) -> u32 {
        self.egress_base | 0x0100 | (pop as u32)
    }

    /// The PoP owning an egress address, if it is one.
    pub fn pop_of_egress(&self, addr: u32) -> Option<PopId> {
        let npops = pop_catalog().len();
        if addr & 0xFFFF_0000 == self.egress_base && addr & 0xFF00 == 0x0100 {
            let pop = (addr & 0xFF) as usize;
            (pop < npops).then_some(pop)
        } else {
            None
        }
    }

    /// Domain slot for a name, if Google keeps ECS-scoped entries for it.
    fn domain_slot(&self, name: &DomainName) -> Option<usize> {
        self.ecs_domains.iter().position(|d| d == name)
    }

    /// Token-bucket admission control (state lives in the session).
    fn admit(
        &self,
        session: &mut GpdnsSession,
        prober: u64,
        pop: PopId,
        transport: Transport,
        t: SimTime,
    ) -> bool {
        let (rate, burst) = match transport {
            Transport::Udp => (UDP_RATE, UDP_BURST),
            Transport::Tcp => (TCP_RATE, TCP_BURST),
        };
        let b = session
            .buckets
            .entry((prober, pop, transport))
            .or_insert(Bucket {
                tokens: burst,
                last: t,
            });
        let dt = (t - b.last).as_secs_f64();
        b.tokens = (b.tokens + dt * rate).min(burst);
        b.last = t;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Probability that the scoped entry `(pop, slot, scope)` is live in
    /// `pool` at `t`, and the deterministic per-window coin for it.
    fn entry_live(
        &self,
        pop: PopId,
        pool: usize,
        slot: usize,
        scope: Prefix,
        load: &ScopeLoad,
        t: SimTime,
    ) -> bool {
        let ttl = f64::from(self.ttls[slot]);
        let window = (t.as_secs_f64() / ttl) as u64;
        let diurnal = clientmap_world::activity::diurnal_multiplier(
            t.as_secs_f64(),
            load.lon(),
            self.diurnal_amplitude,
        );
        let lambda_pool = load.rate * diurnal / POOLS_PER_POP as f64;
        let horizon = ttl.min(t.as_secs_f64().max(0.0));
        let p_live = 1.0 - (-lambda_pool * horizon).exp();
        let h = SeedMixer::new(self.seed)
            .mix_str("live")
            .mix(pop as u64)
            .mix(pool as u64)
            .mix(slot as u64)
            .mix(u64::from(scope.addr()))
            .mix(u64::from(scope.len()))
            .mix(window)
            .finish();
        unit(h) < p_live
    }

    /// Remaining TTL for a hit entry (age uniform within the window).
    fn remaining_ttl(&self, slot: usize, h_entropy: u64, t: SimTime) -> u32 {
        let ttl = f64::from(self.ttls[slot]);
        let age = unit(SeedMixer::new(h_entropy).mix(99).finish()) * ttl.min(t.as_secs_f64());
        (ttl - age).max(1.0) as u32
    }

    /// Handles one wire-format query arriving at `pop`. Returns the
    /// wire-format response, or `None` if the query was dropped.
    ///
    /// `prober` identifies the source for rate limiting; `auth` and
    /// `world` provide the authoritative layer for recursive queries.
    /// The caller's [`GpdnsSession`] carries buckets and counters, so
    /// independent probers can query the shared core concurrently.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_query_at_pop(
        &self,
        session: &mut GpdnsSession,
        world: &World,
        auth: &Authoritatives,
        prober: u64,
        pop: PopId,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
    ) -> Option<Vec<u8>> {
        session.stats.queries += 1;
        self.metrics.queries(transport).inc();
        if !self.admit(session, prober, pop, transport, t) {
            session.stats.rate_limited += 1;
            self.metrics.rate_limited(transport).inc();
            return None;
        }
        let Ok(query) = wire::decode(packet) else {
            self.metrics.decode_errors.inc();
            return None; // garbage in, silence out (like a drop)
        };
        let Some(q) = query.question.clone() else {
            self.metrics.formerr.inc();
            let resp = Message::response_for(&query).with_rcode(Rcode::FormErr);
            return wire::encode(&resp).ok();
        };

        // Fault-injection point: the query is admitted and parsed; the
        // plan decides whether the exchange fails before any service
        // logic (including the pool-sequence draw) sees it.
        if let Some(injected) = self.fault_for(prober, pop, transport, t, query.id) {
            return match injected {
                Injected::Drop => None,
                Injected::Error { rcode, tc } => {
                    let mut question_wire = qname_wire(&q.name);
                    question_wire.extend_from_slice(&q.rtype.to_u16().to_be_bytes());
                    question_wire.extend_from_slice(&q.class.to_u16().to_be_bytes());
                    let mut out = Vec::new();
                    wire::write_probe_error_response(&mut out, query.id, &question_wire, rcode, tc);
                    Some(out)
                }
            };
        }

        // PoP self-identification.
        if q.rtype == RrType::Txt && q.name.to_string() == MYADDR_NAME {
            self.metrics.myaddr.inc();
            let pops = pop_catalog();
            let resp = Message::response_for(&query).with_answers(vec![Record::txt(
                q.name.clone(),
                60,
                format!("pop={}", pops[pop].code),
            )]);
            return wire::encode(&resp).ok();
        }

        let ecs_source = query.ecs().map(|e| e.source);

        if query.recursion_desired {
            // Recursive path: resolve at the authoritative.
            session.stats.recursive += 1;
            self.metrics.recursive.inc();
            // Google forwards the client's /24 as ECS (or the supplied one).
            let fwd_ecs = ecs_source.or(Some(Prefix::DEFAULT));
            return match auth.answer(&world.domains, &q.name, fwd_ecs, t) {
                Some(ans) => {
                    let mut resp = Message::response_for(&query).with_answers(ans.records);
                    if let (Some(scope), Some(src)) = (ans.scope, ecs_source) {
                        resp = resp.with_response_ecs(src, scope.len());
                    }
                    wire::encode(&resp).ok()
                }
                None => {
                    let resp = Message::response_for(&query).with_rcode(Rcode::NxDomain);
                    wire::encode(&resp).ok()
                }
            };
        }

        // Non-recursive path: pure cache lookup; never resolves upstream.
        let Some(slot) = self.domain_slot(&q.name) else {
            // Not an ECS-cached domain: we model no global non-ECS cache
            // visibility (probing such domains is not meaningful).
            session.stats.misses += 1;
            self.metrics.miss_non_ecs.inc();
            let resp = Message::response_for(&query);
            return wire::encode(&resp).ok();
        };
        let source = ecs_source.unwrap_or(Prefix::DEFAULT);

        // Pick the pool this query lands in. The draw mixes the query's
        // own identity plus a session-local sequence, so it is
        // deterministic per prober regardless of what other probers do
        // in parallel.
        session.seq += 1;
        let pool_h = SeedMixer::new(self.seed)
            .mix_str("pool")
            .mix(prober)
            .mix(t.as_millis())
            .mix(u64::from(source.addr()))
            .mix(session.seq)
            .finish();
        let pool = (pool_h % POOLS_PER_POP as u64) as usize;

        // The cached entry that could answer: the scope the authoritative
        // assigns to this address region. A slot without a catalog entry
        // cannot happen for a well-formed build; degrade to a plain miss
        // rather than panicking inside the library.
        let Some(spec) = world.domains.get(&q.name) else {
            session.stats.misses += 1;
            self.metrics.miss_non_ecs.inc();
            let resp = Message::response_for(&query);
            return wire::encode(&resp).ok();
        };
        let candidate = auth.base_scope(spec, source.addr());

        // 1. Scoped entry.
        if let Some(scope) = candidate.filter(|s| !s.is_default()) {
            if let Some(load) = self.scoped[pop][slot].get(&scope).copied() {
                if self.entry_live(pop, pool, slot, scope, &load, t) {
                    session.stats.scoped_hits += 1;
                    self.metrics.pool_hits[pool].inc();
                    let h = SeedMixer::new(self.seed)
                        .mix_str("ttl")
                        .mix(pop as u64)
                        .mix(pool as u64)
                        .mix(u64::from(scope.addr()))
                        .mix(t.as_millis() / (u64::from(self.ttls[slot]) * 1000))
                        .finish();
                    let remaining = self.remaining_ttl(slot, h, t);
                    // The scope attached to the cached answer reflects the
                    // authoritative's (possibly churned) response scope.
                    let resp_scope = auth.response_scope(spec, source.addr(), t).unwrap_or(scope);
                    let resp = Message::response_for(&query)
                        .with_answers(vec![Record::a(
                            q.name.clone(),
                            remaining,
                            0x60F0_0000 | slot as u32,
                        )])
                        .with_response_ecs(source, resp_scope.len());
                    return wire::encode(&resp).ok();
                }
            }
        }

        // 2. Scope-0 entry (cached for everyone).
        let gload = self.global[pop][slot];
        if gload.rate > 0.0 && self.entry_live(pop, pool, slot, Prefix::DEFAULT, &gload, t) {
            session.stats.scope0_hits += 1;
            self.metrics.pool_scope0[pool].inc();
            let resp = Message::response_for(&query)
                .with_answers(vec![Record::a(
                    q.name.clone(),
                    self.ttls[slot].max(1),
                    0x60F0_0000 | slot as u32,
                )])
                .with_response_ecs(source, 0);
            return wire::encode(&resp).ok();
        }

        // 3. Miss.
        session.stats.misses += 1;
        self.metrics.pool_misses[pool].inc();
        let resp = Message::response_for(&query).with_response_ecs(source, 0);
        wire::encode(&resp).ok()
    }

    /// [`GooglePublicDns::handle_query_at_pop`] writing the response
    /// into a caller-reused buffer. Returns whether a response was
    /// produced (`false` = dropped).
    ///
    /// Probe-shaped queries (non-recursive `A`-in-`IN` for an
    /// ECS-cached domain) take a zero-allocation lane: the question is
    /// matched and echoed as raw wire bytes, scope policy runs off
    /// pre-mixed hash keys, and the response is written directly —
    /// byte-identical to the [`Message`]-building path, with identical
    /// session stats and telemetry (asserted in tests). Everything else
    /// falls back to the full decode path.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_query_at_pop_into(
        &self,
        session: &mut GpdnsSession,
        world: &World,
        auth: &Authoritatives,
        prober: u64,
        pop: PopId,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
        out: &mut Vec<u8>,
    ) -> bool {
        if let Some(served) = self.serve_fast(session, auth, prober, pop, packet, transport, t, out)
        {
            return served;
        }
        match self.handle_query_at_pop(session, world, auth, prober, pop, packet, transport, t) {
            Some(resp) => {
                out.clear();
                out.extend_from_slice(&resp);
                true
            }
            None => false,
        }
    }

    /// The zero-allocation serve lane. `None` means the packet is not
    /// fast-eligible and nothing was counted — the caller must fall back
    /// to [`GooglePublicDns::handle_query_at_pop`]. `Some(served)` means
    /// the query was fully handled (counted, admitted, answered or
    /// dropped) with `out` holding the response when `served`.
    #[allow(clippy::too_many_arguments)]
    fn serve_fast(
        &self,
        session: &mut GpdnsSession,
        auth: &Authoritatives,
        prober: u64,
        pop: PopId,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
        out: &mut Vec<u8>,
    ) -> Option<bool> {
        // Eligibility checks are pure: no counter moves until we commit
        // to this lane, so the fallback path never double-counts.
        let view = wire::query_view(packet)?;
        if view.is_response()
            || view.opcode() != 0
            || view.recursion_desired()
            || view.rtype != RrType::A.to_u16()
            || view.qclass != clientmap_dns::RrClass::In.to_u16()
        {
            return None;
        }
        let slot = self
            .domain_wires
            .iter()
            .position(|w| w[..] == *view.qname_wire)?;
        let question_wire = &packet[12..12 + view.qname_wire.len() + 4];

        session.stats.queries += 1;
        self.metrics.queries(transport).inc();
        if !self.admit(session, prober, pop, transport, t) {
            session.stats.rate_limited += 1;
            self.metrics.rate_limited(transport).inc();
            return Some(false);
        }
        let source = view.ecs.map_or(Prefix::DEFAULT, |e| e.source);

        // Fault-injection point — identical decision and position
        // (post-admission, pre-pool-draw) to the slow path, and the
        // error bytes come from the same wire helper, so the lanes stay
        // byte-identical under faults too.
        if let Some(injected) = self.fault_for(prober, pop, transport, t, view.id) {
            return Some(match injected {
                Injected::Drop => false,
                Injected::Error { rcode, tc } => {
                    wire::write_probe_error_response(out, view.id, question_wire, rcode, tc);
                    true
                }
            });
        }

        // Pool draw — same mix, same seq advance as the slow path.
        session.seq += 1;
        let pool_h = SeedMixer::new(self.seed)
            .mix_str("pool")
            .mix(prober)
            .mix(t.as_millis())
            .mix(u64::from(source.addr()))
            .mix(session.seq)
            .finish();
        let pool = (pool_h % POOLS_PER_POP as u64) as usize;

        let key = &self.scope_keys[slot];
        let candidate = auth.base_scope_keyed(key, source.addr());

        // 1. Scoped entry.
        if let Some(scope) = candidate.filter(|s| !s.is_default()) {
            if let Some(load) = self.scoped[pop][slot].get(&scope).copied() {
                if self.entry_live(pop, pool, slot, scope, &load, t) {
                    session.stats.scoped_hits += 1;
                    self.metrics.pool_hits[pool].inc();
                    let h = SeedMixer::new(self.seed)
                        .mix_str("ttl")
                        .mix(pop as u64)
                        .mix(pool as u64)
                        .mix(u64::from(scope.addr()))
                        .mix(t.as_millis() / (u64::from(self.ttls[slot]) * 1000))
                        .finish();
                    let remaining = self.remaining_ttl(slot, h, t);
                    let resp_scope = auth
                        .response_scope_keyed(key, source.addr(), t)
                        .unwrap_or(scope);
                    wire::write_probe_response(
                        out,
                        view.id,
                        question_wire,
                        Some((remaining, 0x60F0_0000 | slot as u32)),
                        source,
                        resp_scope.len(),
                    );
                    return Some(true);
                }
            }
        }

        // 2. Scope-0 entry.
        let gload = self.global[pop][slot];
        if gload.rate > 0.0 && self.entry_live(pop, pool, slot, Prefix::DEFAULT, &gload, t) {
            session.stats.scope0_hits += 1;
            self.metrics.pool_scope0[pool].inc();
            wire::write_probe_response(
                out,
                view.id,
                question_wire,
                Some((self.ttls[slot].max(1), 0x60F0_0000 | slot as u32)),
                source,
                0,
            );
            return Some(true);
        }

        // 3. Miss.
        session.stats.misses += 1;
        self.metrics.pool_misses[pool].inc();
        wire::write_probe_response(out, view.id, question_wire, None, source, 0);
        Some(true)
    }

    /// [`GooglePublicDns::handle_query`] writing into a caller-reused
    /// buffer (the zero-allocation prober call).
    #[allow(clippy::too_many_arguments)]
    pub fn handle_query_into(
        &self,
        session: &mut GpdnsSession,
        world: &World,
        catchments: &Catchments,
        auth: &Authoritatives,
        prober: u64,
        vp_coord: clientmap_net::GeoCoord,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
        out: &mut Vec<u8>,
    ) -> bool {
        let pop = self.route_vantage(catchments, prober, vp_coord, t);
        self.handle_query_at_pop_into(session, world, auth, prober, pop, packet, transport, t, out)
    }

    /// Anycast routing for a vantage point, including seeded catchment
    /// flaps: during a flap window the vantage's traffic lands at its
    /// second-choice PoP instead of its home catchment.
    fn route_vantage(
        &self,
        catchments: &Catchments,
        prober: u64,
        coord: clientmap_net::GeoCoord,
        t: SimTime,
    ) -> PopId {
        let home = catchments.of_vantage(prober, coord);
        if self.faults.flap(prober, t.as_millis()) {
            if let Some(fm) = &self.fault_metrics {
                fm.flaps.inc();
            }
            return catchments.of_vantage_excluding(prober, coord, home);
        }
        home
    }

    /// Convenience wrapper: routes by vantage-point anycast, then
    /// handles the query. This is the call a prober makes.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_query(
        &self,
        session: &mut GpdnsSession,
        world: &World,
        catchments: &Catchments,
        auth: &Authoritatives,
        prober: u64,
        vp_coord: clientmap_net::GeoCoord,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
    ) -> Option<Vec<u8>> {
        let pop = self.route_vantage(catchments, prober, vp_coord, t);
        self.handle_query_at_pop(session, world, auth, prober, pop, packet, transport, t)
    }

    /// Interprets a probe response into a [`ProbeOutcome`].
    ///
    /// Uses the zero-allocation [`wire::response_view`] parser — the
    /// classification needs only the answer count, the first answer's
    /// TTL and the ECS scope, none of which require materialising a
    /// [`Message`].
    pub fn classify_response(resp: Option<&[u8]>) -> ProbeOutcome {
        let Some(bytes) = resp else {
            return ProbeOutcome::Dropped;
        };
        let Ok(view) = wire::response_view(bytes) else {
            return ProbeOutcome::Dropped;
        };
        Self::classify_view(&view)
    }

    /// [`GooglePublicDns::classify_response`] for an already-parsed
    /// view — the resilient prober parses once to verify the response
    /// ID and flags, then classifies from the same view.
    pub fn classify_view(view: &wire::ResponseView) -> ProbeOutcome {
        if view.answer_count == 0 {
            return ProbeOutcome::Miss;
        }
        match view.ecs {
            Some(e) if e.scope_len > 0 => ProbeOutcome::Hit {
                scope: e.scope_prefix(),
                remaining_ttl: view.first_answer_ttl,
            },
            _ => ProbeOutcome::HitScopeZero,
        }
    }

    /// The load (mean qps and rate-weighted longitude) behind one
    /// scoped cache entry, if any — exposed so the micro-simulation
    /// validator can drive event-level arrivals from the same inputs.
    pub fn scope_load(&self, pop: PopId, domain: &DomainName, scope: Prefix) -> Option<(f64, f64)> {
        let slot = self.domain_slot(domain)?;
        self.scoped[pop][slot]
            .get(&scope)
            .map(|l| (l.rate, l.lon()))
    }

    /// The record TTL Google caches for a domain, if ECS-cached.
    pub fn domain_ttl(&self, domain: &DomainName) -> Option<u32> {
        let slot = self.domain_slot(domain)?;
        Some(self.ttls[slot])
    }

    /// All scopes with load at a PoP for a domain, heaviest first.
    pub fn scopes_at(&self, pop: PopId, domain: &DomainName) -> Vec<(Prefix, f64)> {
        let Some(slot) = self.domain_slot(domain) else {
            return Vec::new();
        };
        let mut v: Vec<(Prefix, f64)> = self.scoped[pop][slot]
            .iter()
            .map(|(p, l)| (*p, l.rate))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Total Google-bound load (qps at diurnal mean) at a PoP, across
    /// ECS domains — used to verify the unreachable-PoP share (~5%).
    pub fn pop_load(&self, pop: PopId) -> f64 {
        let scoped: f64 = self.scoped[pop]
            .iter()
            .flat_map(|m| m.values())
            .map(|l| l.rate)
            .sum();
        let global: f64 = self.global[pop].iter().map(|l| l.rate).sum();
        scoped + global
    }
}

// ---------------------------------------------------------------------------
// Batched serve lane
// ---------------------------------------------------------------------------

/// Counter deltas accumulated by one [`BatchConn`], flushed wholesale
/// at [`GooglePublicDns::close_batch`]. Returned to the caller so warm
/// starts can replay a batch's exact telemetry without re-serving it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries that reached the PoP (one per redundant attempt).
    pub queries: u64,
    /// Queries dropped by the rate limiter.
    pub rate_limited: u64,
    /// Scoped cache hits, per pool.
    pub pool_hits: [u64; POOLS_PER_POP],
    /// Scope-0 cache hits, per pool.
    pub pool_scope0: [u64; POOLS_PER_POP],
    /// Cache misses, per pool.
    pub pool_misses: [u64; POOLS_PER_POP],
}

impl BatchStats {
    /// Folds another batch's counters into this one.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.queries += other.queries;
        self.rate_limited += other.rate_limited;
        for p in 0..POOLS_PER_POP {
            self.pool_hits[p] += other.pool_hits[p];
            self.pool_scope0[p] += other.pool_scope0[p];
            self.pool_misses[p] += other.pool_misses[p];
        }
    }

    /// Scoped hits across pools.
    pub fn scoped_hits(&self) -> u64 {
        self.pool_hits.iter().sum()
    }

    /// Scope-0 hits across pools.
    pub fn scope0_hits(&self) -> u64 {
        self.pool_scope0.iter().sum()
    }

    /// Misses across pools.
    pub fn misses(&self) -> u64 {
        self.pool_misses.iter().sum()
    }
}

/// One batched probing connection: the per-(prober, PoP, transport)
/// state a whole batch of probes shares.
///
/// Opened from a [`GpdnsSession`] (anycast route, token bucket, and
/// pool sequence are read once), driven through
/// [`GooglePublicDns::serve_batch`], and closed back into the session —
/// at which point the session state and the shared telemetry are
/// exactly what the scalar lane would have produced for the same probe
/// stream. Between open and close, nothing touches the session's hash
/// map, the registry atomics, or the allocator.
#[derive(Debug)]
pub struct BatchConn {
    prober: u64,
    pop: PopId,
    transport: Transport,
    /// Local copy of the session's token bucket (created lazily at the
    /// first admission, exactly like the scalar `admit`).
    bucket: Option<Bucket>,
    /// Local copy of the session's pool-draw sequence.
    seq: u64,
    stats: BatchStats,
}

impl BatchConn {
    /// The PoP this connection's probes land at.
    pub fn pop(&self) -> PopId {
        self.pop
    }

    /// Token-bucket admission on the local bucket copy — the same
    /// arithmetic as the scalar `admit`, without the hash-map probe.
    fn admit(&mut self, t: SimTime) -> bool {
        let (rate, burst) = match self.transport {
            Transport::Udp => (UDP_RATE, UDP_BURST),
            Transport::Tcp => (TCP_RATE, TCP_BURST),
        };
        let b = self.bucket.get_or_insert(Bucket {
            tokens: burst,
            last: t,
        });
        let dt = (t - b.last).as_secs_f64();
        b.tokens = (b.tokens + dt * rate).min(burst);
        b.last = t;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One probed domain's slice of the service, resolved once per batch:
/// domain slot, pre-mixed scope-policy keys, cache-load tables, and a
/// [`Slash24Bitset`] prefilter over the /24s that hold scoped entries
/// at this PoP — so per-scope lane setup rejects cold scopes with a
/// word-indexed bit probe instead of a hash-map lookup.
#[derive(Debug)]
pub struct BatchDomain<'a> {
    slot: usize,
    key: DomainScopeKey,
    scoped: &'a HashMap<Prefix, ScopeLoad>,
    global: ScopeLoad,
    prefilter: Slash24Bitset,
    /// Ancestor depth for the admission prefilter: a candidate entry is
    /// never shorter than the domain's minimum scope length, so its
    /// base /24 index is the probed /24's index with at most this many
    /// low bits cleared.
    anc_clear: u8,
}

/// The time-independent part of serving one query scope, hoisted out
/// of the per-attempt loop: the scope-policy candidate entry and its
/// cached load. Scalar serving recomputes this (a RIB walk plus a
/// hash-map probe) for every redundant attempt; the batched lane pays
/// it once per scope per batch.
#[derive(Debug, Clone, Copy)]
pub struct ScopeLane {
    /// The probed (ECS source) scope.
    scope: Prefix,
    /// `(candidate entry scope, its load)` when this PoP holds a scoped
    /// entry that could answer; `None` means only scope-0/miss paths
    /// remain possible.
    hit_path: Option<(Prefix, ScopeLoad)>,
}

impl ScopeLane {
    /// The probed scope this lane serves.
    pub fn scope(&self) -> Prefix {
        self.scope
    }
}

impl GooglePublicDns {
    /// Opens a batched probing connection for `prober` over `transport`.
    ///
    /// Returns `None` when fault injection is active: faulted exchanges
    /// need per-query injection decisions, retries, and fault
    /// accounting, so probers must stay on the scalar resilient lane —
    /// falling back here keeps fault behaviour identical by
    /// construction.
    pub fn open_batch(
        &self,
        catchments: &Catchments,
        session: &GpdnsSession,
        prober: u64,
        coord: clientmap_net::GeoCoord,
        transport: Transport,
    ) -> Option<BatchConn> {
        if self.faults.enabled() {
            return None;
        }
        // No flap faults possible: the home catchment is the route.
        let pop = catchments.of_vantage(prober, coord);
        Some(BatchConn {
            prober,
            pop,
            transport,
            bucket: session.buckets.get(&(prober, pop, transport)).copied(),
            seq: session.seq,
            stats: BatchStats::default(),
        })
    }

    /// Resolves one probed domain (by uncompressed QNAME wire bytes)
    /// against the connection's PoP. `None` means Google keeps no
    /// ECS-scoped entries for the name — the caller falls back to the
    /// scalar lane, which models that case.
    pub fn batch_domain(&self, conn: &BatchConn, qname_wire: &[u8]) -> Option<BatchDomain<'_>> {
        let slot = self
            .domain_wires
            .iter()
            .position(|w| w[..] == *qname_wire)?;
        let scoped = &self.scoped[conn.pop][slot];
        let mut prefilter = Slash24Bitset::new();
        for scope in scoped.keys() {
            prefilter.insert(scope.addr() >> 8);
        }
        let (lo, _) = self.scope_keys[slot].scope_len_range();
        Some(BatchDomain {
            slot,
            key: self.scope_keys[slot],
            scoped,
            global: self.global[conn.pop][slot],
            prefilter,
            anc_clear: 24u8.saturating_sub(lo.min(24)),
        })
    }

    /// Precomputes the serve lane for one query scope: the scope-policy
    /// candidate (a RIB-backed computation) and, when the prefilter
    /// shows its /24 can hold an entry at this PoP, the entry's load.
    pub fn scope_lane(
        &self,
        auth: &Authoritatives,
        dom: &BatchDomain<'_>,
        scope: Prefix,
    ) -> ScopeLane {
        // Admission pass: any candidate the scope policy could assign
        // is at least the domain's minimum length, so its base /24 is
        // an aligned ancestor of the probed /24. If none of those /24s
        // holds a scoped entry at this PoP, the lane cannot hit — skip
        // the per-probe scope-policy walk (a hash chain plus RIB
        // lookup) entirely. Whole admission-empty pages reduce to one
        // word probe per lane.
        if !dom.prefilter.ancestor_hit(scope.addr() >> 8, dom.anc_clear) {
            return ScopeLane {
                scope,
                hit_path: None,
            };
        }
        let hit_path = auth
            .base_scope_keyed(&dom.key, scope.addr())
            .filter(|s| !s.is_default())
            .and_then(|cand| {
                if !dom.prefilter.contains_addr(cand.addr()) {
                    return None;
                }
                dom.scoped.get(&cand).map(|load| (cand, *load))
            });
        ScopeLane { scope, hit_path }
    }

    /// Serves a rendered probe batch in one pass: `redundancy` pool
    /// draws per event with Hit-early-exit, folding each event to its
    /// best outcome (`Hit > HitScopeZero > Miss > Dropped` — the
    /// prober's merge order). Appends one outcome per event to `out`.
    ///
    /// `batch` holds one rendered query per event; `events` pairs each
    /// with `(lane index, event time)`. Every packet is validated
    /// (pure, before any state moves) to be a probe-shaped query for
    /// `dom`'s name carrying its lane's scope; any mismatch returns
    /// `false` with the connection untouched, so the caller can replay
    /// the same packets through the scalar lane without double
    /// counting.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_batch(
        &self,
        conn: &mut BatchConn,
        dom: &BatchDomain<'_>,
        auth: &Authoritatives,
        lanes: &[ScopeLane],
        batch: &wire::ProbeBatch,
        events: &[(u32, SimTime)],
        redundancy: u32,
        out: &mut Vec<ProbeOutcome>,
    ) -> bool {
        if batch.len() != events.len() {
            return false;
        }
        for (i, &(lane, _)) in events.iter().enumerate() {
            let Some(lane) = lanes.get(lane as usize) else {
                return false;
            };
            let Some(view) = wire::query_view(batch.query(i)) else {
                return false;
            };
            if view.is_response()
                || view.opcode() != 0
                || view.recursion_desired()
                || view.rtype != RrType::A.to_u16()
                || view.qclass != clientmap_dns::RrClass::In.to_u16()
                || view.qname_wire != &self.domain_wires[dom.slot][..]
                || view.ecs.map_or(Prefix::DEFAULT, |e| e.source) != lane.scope
            {
                return false;
            }
        }
        for &(lane_idx, t) in events {
            let outcome =
                self.serve_batch_event(conn, dom, auth, &lanes[lane_idx as usize], t, redundancy);
            out.push(outcome);
        }
        true
    }

    /// One probe event on the batched lane: the exact scalar attempt
    /// sequence (admission → pool draw → scoped entry → scope-0 → miss)
    /// minus everything attempt-invariant, classified in place instead
    /// of through response bytes. Fault-free only — `open_batch`
    /// guarantees the plan is off, which is also why transaction IDs
    /// play no part here (they only ever feed fault decisions and the
    /// response echo).
    fn serve_batch_event(
        &self,
        conn: &mut BatchConn,
        dom: &BatchDomain<'_>,
        auth: &Authoritatives,
        lane: &ScopeLane,
        t: SimTime,
        redundancy: u32,
    ) -> ProbeOutcome {
        // Outcome rank mirrors the prober's merge order; `Hit` is an
        // early exit, so the fold needs only the other three.
        const RANK_DROPPED: u8 = 0;
        const RANK_MISS: u8 = 1;
        const RANK_SCOPE0: u8 = 2;
        let mut best = RANK_DROPPED;
        for r in 0..redundancy {
            let rt = t + SimTime::from_millis(u64::from(r));
            conn.stats.queries += 1;
            if !conn.admit(rt) {
                conn.stats.rate_limited += 1;
                continue; // Dropped: never upgrades `best`.
            }
            conn.seq += 1;
            let pool_h = SeedMixer::new(self.seed)
                .mix_str("pool")
                .mix(conn.prober)
                .mix(rt.as_millis())
                .mix(u64::from(lane.scope.addr()))
                .mix(conn.seq)
                .finish();
            let pool = (pool_h % POOLS_PER_POP as u64) as usize;

            // 1. Scoped entry.
            if let Some((cand, load)) = &lane.hit_path {
                if self.entry_live(conn.pop, pool, dom.slot, *cand, load, rt) {
                    conn.stats.pool_hits[pool] += 1;
                    let h = SeedMixer::new(self.seed)
                        .mix_str("ttl")
                        .mix(conn.pop as u64)
                        .mix(pool as u64)
                        .mix(u64::from(cand.addr()))
                        .mix(rt.as_millis() / (u64::from(self.ttls[dom.slot]) * 1000))
                        .finish();
                    let remaining = self.remaining_ttl(dom.slot, h, rt);
                    let resp_scope = auth
                        .response_scope_keyed(&dom.key, lane.scope.addr(), rt)
                        .unwrap_or(*cand);
                    if resp_scope.len() > 0 {
                        return ProbeOutcome::Hit {
                            // The classifier reads the scope off the
                            // response ECS: source address masked to the
                            // response scope length.
                            scope: Prefix::new(lane.scope.addr(), resp_scope.len())
                                .expect("scope length validated <= 32"),
                            remaining_ttl: remaining,
                        };
                    }
                    best = best.max(RANK_SCOPE0);
                    continue;
                }
            }

            // 2. Scope-0 entry.
            if dom.global.rate > 0.0
                && self.entry_live(conn.pop, pool, dom.slot, Prefix::DEFAULT, &dom.global, rt)
            {
                conn.stats.pool_scope0[pool] += 1;
                best = best.max(RANK_SCOPE0);
                continue;
            }

            // 3. Miss.
            conn.stats.pool_misses[pool] += 1;
            best = best.max(RANK_MISS);
        }
        match best {
            RANK_SCOPE0 => ProbeOutcome::HitScopeZero,
            RANK_MISS => ProbeOutcome::Miss,
            _ => ProbeOutcome::Dropped,
        }
    }

    /// Closes a batched connection: writes the bucket and sequence back
    /// into the session, folds the batch tallies into the session stats,
    /// and flushes the shared telemetry in one atomic add per counter.
    /// Returns the batch's counter deltas.
    pub fn close_batch(&self, conn: BatchConn, session: &mut GpdnsSession) -> BatchStats {
        let s = conn.stats;
        if let Some(b) = conn.bucket {
            session
                .buckets
                .insert((conn.prober, conn.pop, conn.transport), b);
        }
        session.seq = conn.seq;
        session.stats.queries += s.queries;
        session.stats.rate_limited += s.rate_limited;
        session.stats.scoped_hits += s.scoped_hits();
        session.stats.scope0_hits += s.scope0_hits();
        session.stats.misses += s.misses();
        self.metrics.queries(conn.transport).add(s.queries);
        self.metrics
            .rate_limited(conn.transport)
            .add(s.rate_limited);
        for p in 0..POOLS_PER_POP {
            self.metrics.pool_hits[p].add(s.pool_hits[p]);
            self.metrics.pool_scope0[p].add(s.pool_scope0[p]);
            self.metrics.pool_misses[p].add(s.pool_misses[p]);
        }
        s
    }

    /// Re-applies a previously captured batch's telemetry (session
    /// stats and shared counters) without serving anything — the warm
    /// path's calibration replay.
    pub fn replay_batch_stats(
        &self,
        session: &mut GpdnsSession,
        s: &BatchStats,
        transport: Transport,
    ) {
        session.stats.queries += s.queries;
        session.stats.rate_limited += s.rate_limited;
        session.stats.scoped_hits += s.scoped_hits();
        session.stats.scope0_hits += s.scope0_hits();
        session.stats.misses += s.misses();
        self.metrics.queries(transport).add(s.queries);
        self.metrics.rate_limited(transport).add(s.rate_limited);
        for p in 0..POOLS_PER_POP {
            self.metrics.pool_hits[p].add(s.pool_hits[p]);
            self.metrics.pool_scope0[p].add(s.pool_scope0[p]);
            self.metrics.pool_misses[p].add(s.pool_misses[p]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_dns::Question;
    use clientmap_world::WorldConfig;

    struct Setup {
        world: World,
        catchments: Catchments,
        auth: Authoritatives,
        gpdns: GooglePublicDns,
        session: GpdnsSession,
    }

    fn setup() -> Setup {
        let world = World::generate(WorldConfig::tiny(21));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let gpdns = GooglePublicDns::build(&world, &catchments, &auth);
        Setup {
            world,
            catchments,
            auth,
            gpdns,
            session: GpdnsSession::new(),
        }
    }

    fn probe_packet(domain: &str, ecs: Prefix, id: u16) -> Vec<u8> {
        let m = Message::query(id, Question::a(domain).unwrap())
            .with_recursion_desired(false)
            .with_ecs(ecs);
        wire::encode(&m).unwrap()
    }

    /// A /24 with a decent Google-bound rate and its catchment PoP.
    fn busy_prefix(s: &Setup) -> (usize, Prefix, PopId) {
        let (i, s24) = s
            .world
            .slash24s
            .iter()
            .enumerate()
            .filter(|(_, p)| p.users > 0.0 && p.resolver_mix.google > 0.1)
            .max_by(|a, b| a.1.users.total_cmp(&b.1.users))
            .expect("active prefix exists");
        (i, s24.prefix, s.catchments.of_slash24(i))
    }

    #[test]
    fn busy_prefix_hits_at_its_pop() {
        let mut s = setup();
        let (_, prefix, pop) = busy_prefix(&s);
        // Probe late in the window so caches are warm, 5 redundant tries
        // over several TTL windows to beat pool selection.
        let mut hits = 0;
        let mut attempts = 0;
        for w in 0..20u64 {
            let t = SimTime::from_secs(3600 * 12 + w * 600);
            for r in 0..5 {
                let pkt = probe_packet("www.google.com", prefix, (w * 5 + r) as u16);
                let resp = s.gpdns.handle_query_at_pop(
                    &mut s.session,
                    &s.world,
                    &s.auth,
                    1,
                    pop,
                    &pkt,
                    Transport::Tcp,
                    t,
                );
                attempts += 1;
                if matches!(
                    GooglePublicDns::classify_response(resp.as_deref()),
                    ProbeOutcome::Hit { .. }
                ) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits > 0,
            "no hits in {attempts} probes of the busiest prefix"
        );
    }

    #[test]
    fn dark_prefix_never_hits() {
        let mut s = setup();
        let dark = s
            .world
            .slash24s
            .iter()
            .enumerate()
            .find(|(_, p)| !p.is_active())
            .map(|(i, p)| (i, p.prefix))
            .expect("dark prefix exists");
        let pop = s.catchments.of_slash24(dark.0);
        for w in 0..10u64 {
            let t = SimTime::from_secs(3600 * 10 + w * 700);
            let pkt = probe_packet("www.google.com", dark.1, w as u16);
            let resp = s.gpdns.handle_query_at_pop(
                &mut s.session,
                &s.world,
                &s.auth,
                2,
                pop,
                &pkt,
                Transport::Tcp,
                t,
            );
            let outcome = GooglePublicDns::classify_response(resp.as_deref());
            assert!(
                matches!(outcome, ProbeOutcome::Miss | ProbeOutcome::HitScopeZero),
                "dark prefix produced {outcome:?}"
            );
        }
    }

    #[test]
    fn wrong_pop_misses() {
        let mut s = setup();
        let (_, prefix, pop) = busy_prefix(&s);
        let other_pop = (0..pop_catalog().len())
            .find(|p| {
                *p != pop
                    && pop_catalog()[pop]
                        .coord
                        .distance_km(&pop_catalog()[*p].coord)
                        > 6000.0
            })
            .expect("a distant PoP exists");
        let mut scoped_hits = 0;
        for w in 0..10u64 {
            let t = SimTime::from_secs(3600 * 12 + w * 600);
            let pkt = probe_packet("www.google.com", prefix, w as u16);
            let resp = s.gpdns.handle_query_at_pop(
                &mut s.session,
                &s.world,
                &s.auth,
                3,
                other_pop,
                &pkt,
                Transport::Tcp,
                t,
            );
            if matches!(
                GooglePublicDns::classify_response(resp.as_deref()),
                ProbeOutcome::Hit { .. }
            ) {
                scoped_hits += 1;
            }
        }
        // A distant PoP may share *some* catchment but the busy prefix's
        // own queries land elsewhere; allow zero-or-rare hits.
        assert!(scoped_hits <= 2, "distant PoP hit {scoped_hits}/10");
    }

    #[test]
    fn udp_rate_limit_kicks_in_tcp_does_not() {
        let mut s = setup();
        let (_, prefix, pop) = busy_prefix(&s);
        let t = SimTime::from_secs(1000);
        let mut udp_drops = 0;
        for i in 0..200u16 {
            let pkt = probe_packet("www.google.com", prefix, i);
            // All at the same instant: exhausts the UDP burst.
            if s.gpdns
                .handle_query_at_pop(
                    &mut s.session,
                    &s.world,
                    &s.auth,
                    7,
                    pop,
                    &pkt,
                    Transport::Udp,
                    t,
                )
                .is_none()
            {
                udp_drops += 1;
            }
        }
        assert!(udp_drops > 100, "UDP drops {udp_drops}");
        let mut tcp_drops = 0;
        for i in 0..200u16 {
            let pkt = probe_packet("www.google.com", prefix, i);
            if s.gpdns
                .handle_query_at_pop(
                    &mut s.session,
                    &s.world,
                    &s.auth,
                    8,
                    pop,
                    &pkt,
                    Transport::Tcp,
                    t,
                )
                .is_none()
            {
                tcp_drops += 1;
            }
        }
        assert_eq!(tcp_drops, 0, "TCP should absorb 200 instant queries");
    }

    #[test]
    fn myaddr_reports_pop_code() {
        let mut s = setup();
        let q = Message::query(1, Question::txt(MYADDR_NAME).unwrap());
        let pkt = wire::encode(&q).unwrap();
        let resp = s
            .gpdns
            .handle_query_at_pop(
                &mut s.session,
                &s.world,
                &s.auth,
                9,
                3,
                &pkt,
                Transport::Udp,
                SimTime::ZERO,
            )
            .expect("myaddr always answers");
        let msg = wire::decode(&resp).unwrap();
        match &msg.answers[0].rdata {
            clientmap_dns::RData::Txt(s) => {
                assert_eq!(s, &format!("pop={}", pop_catalog()[3].code));
            }
            other => panic!("wrong rdata {other:?}"),
        }
    }

    #[test]
    fn recursive_queries_resolve_and_echo_scope() {
        let mut s = setup();
        let prefix: Prefix = {
            let (_, p, _) = busy_prefix(&s);
            p
        };
        let m = Message::query(5, Question::a("www.google.com").unwrap()).with_ecs(prefix);
        let pkt = wire::encode(&m).unwrap();
        let resp = s
            .gpdns
            .handle_query_at_pop(
                &mut s.session,
                &s.world,
                &s.auth,
                10,
                0,
                &pkt,
                Transport::Udp,
                SimTime::ZERO,
            )
            .expect("recursive answers");
        let msg = wire::decode(&resp).unwrap();
        assert!(msg.has_answers());
        assert!(msg.ecs().is_some());
        assert_eq!(s.session.stats.recursive, 1);
    }

    #[test]
    fn non_recursive_does_not_resolve_unknown() {
        let mut s = setup();
        let m = Message::query(6, Question::a("www.amazon.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs("5.5.5.0/24".parse().unwrap());
        let pkt = wire::encode(&m).unwrap();
        let resp = s
            .gpdns
            .handle_query_at_pop(
                &mut s.session,
                &s.world,
                &s.auth,
                11,
                0,
                &pkt,
                Transport::Tcp,
                SimTime::ZERO,
            )
            .expect("responds");
        let msg = wire::decode(&resp).unwrap();
        assert!(!msg.has_answers(), "non-ECS domain must not be snoopable");
    }

    #[test]
    fn liveness_consistent_within_ttl_window() {
        let mut s = setup();
        let (_, prefix, pop) = busy_prefix(&s);
        // Two identical probes close in time must agree per pool; since
        // pools are random, compare the multiset over many tries at two
        // times in the same window.
        let t1 = SimTime::from_secs(36_000);
        let t2 = SimTime::from_secs(36_020); // same 300s window
        let count_hits = |g: &GooglePublicDns,
                          session: &mut GpdnsSession,
                          world: &World,
                          auth: &Authoritatives,
                          t: SimTime| {
            let mut hits = 0;
            for i in 0..40u16 {
                let pkt = probe_packet("www.google.com", prefix, i);
                let resp =
                    g.handle_query_at_pop(session, world, auth, 20, pop, &pkt, Transport::Tcp, t);
                if matches!(
                    GooglePublicDns::classify_response(resp.as_deref()),
                    ProbeOutcome::Hit { .. }
                ) {
                    hits += 1;
                }
            }
            hits
        };
        let h1: i32 = count_hits(&s.gpdns, &mut s.session, &s.world, &s.auth, t1);
        let h2: i32 = count_hits(&s.gpdns, &mut s.session, &s.world, &s.auth, t2);
        // Same window ⇒ same per-pool liveness ⇒ similar hit counts
        // (pool draws differ, so allow sampling noise).
        assert!((h1 - h2).abs() <= 12, "inconsistent liveness: {h1} vs {h2}");
    }

    #[test]
    fn fast_lane_matches_slow_path_bytes_and_stats() {
        let s = setup();
        let (_, busy, pop) = busy_prefix(&s);
        let dark = s
            .world
            .slash24s
            .iter()
            .find(|p| !p.is_active())
            .map(|p| p.prefix)
            .expect("dark prefix exists");
        let mut slow_session = GpdnsSession::new();
        let mut fast_session = GpdnsSession::new();
        let mut out = Vec::new();
        let mut id = 0u16;
        // Sweep windows, domains and scopes so hits, scope-0 hits and
        // misses all occur; both sessions see the identical sequence, so
        // pool draws line up and every byte must match.
        for w in 0..40u64 {
            let t = SimTime::from_secs(3600 * 6 + w * 450);
            for domain in ["www.google.com", "www.youtube.com"] {
                for scope in [busy, dark] {
                    id += 1;
                    let pkt = probe_packet(domain, scope, id);
                    let slow = s.gpdns.handle_query_at_pop(
                        &mut slow_session,
                        &s.world,
                        &s.auth,
                        42,
                        pop,
                        &pkt,
                        Transport::Tcp,
                        t,
                    );
                    let fast = s.gpdns.handle_query_at_pop_into(
                        &mut fast_session,
                        &s.world,
                        &s.auth,
                        42,
                        pop,
                        &pkt,
                        Transport::Tcp,
                        t,
                        &mut out,
                    );
                    assert_eq!(fast, slow.is_some(), "drop disagreement at id {id}");
                    if let Some(slow_bytes) = slow {
                        assert_eq!(out, slow_bytes, "byte mismatch at id {id}");
                    }
                }
            }
        }
        assert_eq!(slow_session.stats, fast_session.stats);
        assert!(
            slow_session.stats.scoped_hits > 0 && slow_session.stats.misses > 0,
            "test did not exercise both hit and miss paths: {:?}",
            slow_session.stats
        );
    }

    /// Replays one probe event (redundant attempts, Hit-early-exit,
    /// merge by rank) through the scalar lane — the oracle the batched
    /// lane must reproduce exactly.
    #[allow(clippy::too_many_arguments)]
    fn scalar_probe_event(
        gpdns: &GooglePublicDns,
        session: &mut GpdnsSession,
        world: &World,
        catchments: &Catchments,
        auth: &Authoritatives,
        template: &wire::ProbeQueryTemplate,
        prober: u64,
        coord: clientmap_net::GeoCoord,
        scope: Prefix,
        transport: Transport,
        t: SimTime,
        redundancy: u32,
        query_buf: &mut Vec<u8>,
        resp_buf: &mut Vec<u8>,
    ) -> ProbeOutcome {
        fn rank(o: &ProbeOutcome) -> u8 {
            match o {
                ProbeOutcome::Dropped => 0,
                ProbeOutcome::Miss => 1,
                ProbeOutcome::HitScopeZero => 2,
                ProbeOutcome::Hit { .. } => 3,
            }
        }
        let mut best = ProbeOutcome::Dropped;
        for r in 0..redundancy {
            let rt = t + SimTime::from_millis(u64::from(r));
            template.render(0x5151, scope, query_buf);
            let got = gpdns.handle_query_into(
                session, world, catchments, auth, prober, coord, query_buf, transport, rt, resp_buf,
            );
            let outcome = GooglePublicDns::classify_response(got.then_some(resp_buf.as_slice()));
            if rank(&outcome) > rank(&best) {
                best = outcome;
            }
            if matches!(best, ProbeOutcome::Hit { .. }) {
                break;
            }
        }
        best
    }

    #[test]
    fn batched_lane_matches_the_scalar_lane_exactly() {
        let world = World::generate(WorldConfig::tiny(21));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let reg_scalar = MetricsRegistry::new();
        let gp_scalar = GooglePublicDns::build_with_metrics(
            &world,
            &catchments,
            &auth,
            GpdnsMetrics::register(&reg_scalar),
        );
        let reg_batch = MetricsRegistry::new();
        let gp_batch = GooglePublicDns::build_with_metrics(
            &world,
            &catchments,
            &auth,
            GpdnsMetrics::register(&reg_batch),
        );

        let template = wire::ProbeQueryTemplate::new(&"www.google.com".parse().unwrap());
        let prober = 11u64;
        let coord = pop_catalog()[3].coord;
        let redundancy = 5u32;
        // Busy prefixes homed at the prober's own PoP (hit candidates)
        // plus a spread of others (scope-0/miss candidates).
        let home = catchments.of_vantage(prober, coord);
        let mut scopes: Vec<Prefix> = {
            let mut busiest: Vec<(f64, Prefix)> = world
                .slash24s
                .iter()
                .enumerate()
                .filter(|(i, p)| p.is_active() && catchments.of_slash24(*i) == home)
                .map(|(_, p)| (p.users + p.machines, p.prefix))
                .collect();
            busiest.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            busiest.into_iter().take(16).map(|(_, p)| p).collect()
        };
        scopes.extend(world.slash24s.iter().step_by(11).take(8).map(|s| s.prefix));

        // Three passes over the scopes; TCP paces events out and
        // exercises the hit/scope-0/miss paths, UDP packs them tight so
        // the token bucket runs dry and admission-drop parity is
        // covered too.
        let stream = |event_gap_ms: u64, pass_gap_ms: u64| -> Vec<(u32, SimTime)> {
            let mut events = Vec::new();
            for pass in 0..3u64 {
                for i in 0..scopes.len() as u64 {
                    let t = SimTime::from_secs(3600 * 9)
                        + SimTime::from_millis(pass * pass_gap_ms + i * event_gap_ms);
                    events.push((i as u32, t));
                }
            }
            events
        };

        for transport in [Transport::Tcp, Transport::Udp] {
            let events = match transport {
                Transport::Tcp => stream(250, 40_000),
                Transport::Udp => stream(5, 125),
            };
            let mut scalar_session = GpdnsSession::new();
            let mut batch_session = GpdnsSession::new();
            let (mut query_buf, mut resp_buf) = (Vec::new(), Vec::new());
            let scalar_outcomes: Vec<ProbeOutcome> = events
                .iter()
                .map(|&(lane, t)| {
                    scalar_probe_event(
                        &gp_scalar,
                        &mut scalar_session,
                        &world,
                        &catchments,
                        &auth,
                        &template,
                        prober,
                        coord,
                        scopes[lane as usize],
                        transport,
                        t,
                        redundancy,
                        &mut query_buf,
                        &mut resp_buf,
                    )
                })
                .collect();

            let mut conn = gp_batch
                .open_batch(&catchments, &batch_session, prober, coord, transport)
                .expect("fault-free core opens a batch");
            let dom = gp_batch
                .batch_domain(&conn, template.qname_wire())
                .expect("probed domain is ECS-cached");
            let lanes: Vec<ScopeLane> = scopes
                .iter()
                .map(|&s| gp_batch.scope_lane(&auth, &dom, s))
                .collect();
            let mut arena = wire::ProbeBatch::new();
            for &(lane, _) in &events {
                arena.push(&template, 0x5151, scopes[lane as usize]);
            }
            let mut batch_outcomes = Vec::new();
            assert!(gp_batch.serve_batch(
                &mut conn,
                &dom,
                &auth,
                &lanes,
                &arena,
                &events,
                redundancy,
                &mut batch_outcomes,
            ));
            let stats = gp_batch.close_batch(conn, &mut batch_session);

            assert_eq!(
                batch_outcomes, scalar_outcomes,
                "{transport:?} outcome drift"
            );
            assert_eq!(
                batch_session.stats, scalar_session.stats,
                "{transport:?} session stats drift"
            );
            // The returned capture mirrors the fresh session's stats.
            assert_eq!(stats.queries, batch_session.stats.queries);
            assert_eq!(stats.scoped_hits(), batch_session.stats.scoped_hits);
            assert_eq!(stats.scope0_hits(), batch_session.stats.scope0_hits);
            assert_eq!(stats.misses(), batch_session.stats.misses);
            assert_eq!(stats.rate_limited, batch_session.stats.rate_limited);
            if transport == Transport::Tcp {
                assert!(
                    batch_session.stats.scoped_hits > 0 && batch_session.stats.misses > 0,
                    "test did not exercise both hit and miss paths: {:?}",
                    batch_session.stats
                );
            } else {
                assert!(
                    batch_session.stats.rate_limited > 0,
                    "UDP stream never hit the rate limit"
                );
            }
        }
        // Shared telemetry is identical counter for counter.
        assert_eq!(
            reg_batch.snapshot().to_json(),
            reg_scalar.snapshot().to_json(),
            "registry snapshot drift"
        );
    }

    #[test]
    fn batch_open_refuses_faulted_cores_and_rejects_mismatched_packets() {
        use clientmap_faults::{FaultConfig, FaultProfile};

        let world = World::generate(WorldConfig::tiny(21));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let m = MetricsRegistry::new();
        let faulted = GooglePublicDns::build_with_metrics(
            &world,
            &catchments,
            &auth,
            GpdnsMetrics::register(&m),
        )
        .with_faults(
            Arc::new(FaultPlan::new(
                world.config.seed,
                &FaultConfig::profile(FaultProfile::Lossy, 7),
            )),
            Some(FaultMetrics::register(&m)),
        );
        let session = GpdnsSession::new();
        let coord = pop_catalog()[0].coord;
        assert!(
            faulted
                .open_batch(&catchments, &session, 1, coord, Transport::Tcp)
                .is_none(),
            "faulted cores must force the scalar resilient lane"
        );

        // A clean core rejects a batch whose packets do not carry the
        // lane's scope — with no state moved.
        let reg = MetricsRegistry::new();
        let gpdns = GooglePublicDns::build_with_metrics(
            &world,
            &catchments,
            &auth,
            GpdnsMetrics::register(&reg),
        );
        let before = reg.snapshot().to_json();
        let mut batch_session = GpdnsSession::new();
        let mut conn = gpdns
            .open_batch(&catchments, &batch_session, 1, coord, Transport::Tcp)
            .unwrap();
        let template = wire::ProbeQueryTemplate::new(&"www.google.com".parse().unwrap());
        let dom = gpdns.batch_domain(&conn, template.qname_wire()).unwrap();
        let scope: Prefix = world.slash24s[0].prefix;
        let other: Prefix = world.slash24s[1].prefix;
        let lanes = [gpdns.scope_lane(&auth, &dom, scope)];
        let mut arena = wire::ProbeBatch::new();
        arena.push(&template, 1, other); // wrong scope for lane 0
        let mut out = Vec::new();
        let events = [(0u32, SimTime::from_secs(3600))];
        assert!(!gpdns.serve_batch(&mut conn, &dom, &auth, &lanes, &arena, &events, 5, &mut out));
        assert!(out.is_empty());
        let stats = gpdns.close_batch(conn, &mut batch_session);
        assert_eq!(stats, BatchStats::default());
        assert_eq!(batch_session.stats, GpdnsStats::default());
        assert_eq!(
            reg.snapshot().to_json(),
            before,
            "rejected batch moved telemetry"
        );
    }

    #[test]
    fn fault_injection_is_lane_identical_and_counted() {
        use clientmap_faults::{FaultConfig, FaultProfile};

        let world = World::generate(WorldConfig::tiny(21));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let m = MetricsRegistry::new();
        let plan = Arc::new(FaultPlan::new(
            world.config.seed,
            &FaultConfig::profile(FaultProfile::Lossy, 7),
        ));
        let gpdns = GooglePublicDns::build_with_metrics(
            &world,
            &catchments,
            &auth,
            GpdnsMetrics::register(&m),
        )
        .with_faults(Arc::clone(&plan), Some(FaultMetrics::register(&m)));
        assert!(gpdns.faults_enabled());

        let busy = world
            .slash24s
            .iter()
            .find(|p| p.is_active())
            .map(|p| p.prefix)
            .expect("active prefix exists");
        let mut slow_session = GpdnsSession::new();
        let mut fast_session = GpdnsSession::new();
        let mut out = Vec::new();
        let (mut dropped, mut errored, mut truncated_udp, mut tc_on_tcp) = (0u64, 0u64, 0u64, 0u64);
        // One query per second per transport keeps even UDP inside its
        // token budget, so every lost response is an injected fault.
        for q in 0..600u64 {
            let t = SimTime::from_secs(3600 * 6 + q);
            let transport = if q % 2 == 0 {
                Transport::Udp
            } else {
                Transport::Tcp
            };
            let pkt = probe_packet("www.google.com", busy, q as u16);
            let slow = gpdns.handle_query_at_pop(
                &mut slow_session,
                &world,
                &auth,
                42,
                1,
                &pkt,
                transport,
                t,
            );
            let fast = gpdns.handle_query_at_pop_into(
                &mut fast_session,
                &world,
                &auth,
                42,
                1,
                &pkt,
                transport,
                t,
                &mut out,
            );
            assert_eq!(fast, slow.is_some(), "drop disagreement at query {q}");
            match &slow {
                None => dropped += 1,
                Some(bytes) => {
                    assert_eq!(out, *bytes, "byte mismatch at query {q}");
                    let view = wire::response_view(bytes).unwrap();
                    assert_eq!(view.id, q as u16);
                    if view.flags & wire::RCODE_MASK != 0 {
                        errored += 1;
                    }
                    if view.flags & wire::FLAG_TC != 0 {
                        match transport {
                            Transport::Udp => truncated_udp += 1,
                            Transport::Tcp => tc_on_tcp += 1,
                        }
                    }
                }
            }
        }
        assert_eq!(slow_session.stats, fast_session.stats);
        assert_eq!(slow_session.stats.rate_limited, 0);
        let snap = m.snapshot();
        // Both lanes counted every injection, so the registry total is
        // twice what one lane observed on the wire.
        assert_eq!(
            snap.sum_counters("faults.injected."),
            2 * (dropped + errored + truncated_udp + tc_on_tcp)
        );
        assert!(
            dropped > 0,
            "lossy profile must drop something in 600 queries"
        );
        assert!(errored > 0, "lossy profile must inject an error rcode");
        assert!(truncated_udp > 0, "lossy profile must truncate some UDP");
        assert_eq!(tc_on_tcp, 0, "TC must never be set on TCP responses");
        // gpdns exit-path conservation with the injected classes included:
        // every query either rate-limits, faults, or reaches the cache.
        let cache_exits = snap.sum_counters("gpdns.cache.hit.")
            + snap.sum_counters("gpdns.cache.scope0.")
            + snap.sum_counters("gpdns.cache.miss.");
        assert_eq!(
            snap.sum_counters("gpdns.queries."),
            snap.sum_counters("faults.injected.") + cache_exits
        );
    }

    #[test]
    fn outage_window_drops_every_query_at_pop() {
        use clientmap_faults::{FaultConfig, FaultProfile};

        let world = World::generate(WorldConfig::tiny(21));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let plan = Arc::new(FaultPlan::new(
            world.config.seed,
            &FaultConfig::profile(FaultProfile::PopChurn, 3),
        ));
        let pop = (0..pop_catalog().len())
            .find(|p| plan.outage_window(*p).is_some())
            .expect("pop-churn schedules at least one outage");
        let (start, end) = plan.outage_window(pop).unwrap();
        let gpdns =
            GooglePublicDns::build(&world, &catchments, &auth).with_faults(Arc::clone(&plan), None);
        let busy = world
            .slash24s
            .iter()
            .find(|p| p.is_active())
            .map(|p| p.prefix)
            .unwrap();
        let mut session = GpdnsSession::new();
        for q in 0..50u64 {
            let t = SimTime::from_millis(start + q * (end - start - 1) / 50);
            let pkt = probe_packet("www.google.com", busy, q as u16);
            let resp = gpdns.handle_query_at_pop(
                &mut session,
                &world,
                &auth,
                7,
                pop,
                &pkt,
                Transport::Tcp,
                t,
            );
            assert!(resp.is_none(), "query {q} inside the outage must drop");
        }
        // Before the window opens, the PoP answers again.
        let pkt = probe_packet("www.google.com", busy, 999);
        let resp = gpdns.handle_query_at_pop(
            &mut session,
            &world,
            &auth,
            7,
            pop,
            &pkt,
            Transport::Tcp,
            SimTime::from_millis(start - 10_000),
        );
        assert!(
            resp.is_some()
                || plan
                    .query_fault(7, pop, false, start - 10_000, 999)
                    .is_some()
        );
    }

    #[test]
    fn fast_lane_falls_back_for_non_probe_shapes() {
        let s = setup();
        let mut slow_session = GpdnsSession::new();
        let mut fast_session = GpdnsSession::new();
        let mut out = Vec::new();
        let myaddr = wire::encode(&Message::query(1, Question::txt(MYADDR_NAME).unwrap())).unwrap();
        let recursive = wire::encode(
            &Message::query(2, Question::a("www.google.com").unwrap())
                .with_ecs("10.1.2.0/24".parse().unwrap()),
        )
        .unwrap();
        let unknown = wire::encode(
            &Message::query(3, Question::a("www.amazon.com").unwrap())
                .with_recursion_desired(false),
        )
        .unwrap();
        for pkt in [&myaddr, &recursive, &unknown] {
            let t = SimTime::from_secs(100);
            let slow = s.gpdns.handle_query_at_pop(
                &mut slow_session,
                &s.world,
                &s.auth,
                7,
                2,
                pkt,
                Transport::Tcp,
                t,
            );
            let fast = s.gpdns.handle_query_at_pop_into(
                &mut fast_session,
                &s.world,
                &s.auth,
                7,
                2,
                pkt,
                Transport::Tcp,
                t,
                &mut out,
            );
            assert_eq!(fast, slow.is_some());
            if let Some(slow_bytes) = slow {
                assert_eq!(out, slow_bytes);
            }
        }
        assert_eq!(slow_session.stats, fast_session.stats);
    }

    #[test]
    fn egress_addrs_roundtrip() {
        let s = setup();
        for pop in [0usize, 5, 21, 26] {
            let addr = s.gpdns.egress_addr(pop);
            assert_eq!(s.gpdns.pop_of_egress(addr), Some(pop));
        }
        assert_eq!(s.gpdns.pop_of_egress(0x0101_0101), None);
    }

    #[test]
    fn unreachable_pops_carry_small_share_of_load() {
        let s = setup();
        use crate::pops::PopStatus;
        let pops = pop_catalog();
        let mut probed = 0.0;
        let mut unreachable = 0.0;
        for (i, p) in pops.iter().enumerate() {
            match p.status {
                PopStatus::ProbedVerified => probed += s.gpdns.pop_load(i),
                PopStatus::UnprobedVerified => unreachable += s.gpdns.pop_load(i),
                PopStatus::UnprobedInactive => {
                    assert_eq!(s.gpdns.pop_load(i), 0.0, "inactive PoP {} has load", p.code)
                }
            }
        }
        let share = unreachable / (probed + unreachable);
        // Paper: ~5%. Accept a band (tiny worlds are noisy).
        assert!(share < 0.25, "unreachable share {share}");
        assert!(probed > 0.0);
    }
}
