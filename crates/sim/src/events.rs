//! A minimal discrete-event queue.
//!
//! The probing schedulers (`clientmap-cacheprobe`) drive their query
//! loops through this queue so that rate limits, PoP loops, and
//! redundant query batches interleave in simulated-time order, the same
//! way an event-driven network simulator would schedule packets.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event scheduled at a time, carrying a payload.
#[derive(Debug)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic tiebreaker so equal-time events pop FIFO.
    seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on BinaryHeap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
///
/// ```
/// use clientmap_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(5), "c");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules an event. Scheduling in the past is clamped to `now`
    /// (events never fire retroactively).
    pub fn push(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 2);
        q.push(SimTime::from_millis(10), 3);
        q.push(SimTime::from_millis(7), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn clock_advances_and_clamps() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(q.now(), SimTime::from_secs(10));
        // Scheduling "in the past" fires at now, not before.
        q.push(SimTime::from_secs(1), "past");
        let (t2, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t2, SimTime::from_secs(10));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
