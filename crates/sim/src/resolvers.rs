//! ISP recursive resolvers as a snooping target — the *baseline*
//! approach the paper considers and rejects (§3.1).
//!
//! Before leaning on Google Public DNS, the paper reviews classic DNS
//! cache snooping: send non-recursive queries to ISPs' recursive
//! resolvers and infer client activity from cache hits [2, 7, 33].
//! Its two documented problems, both modelled here:
//!
//! 1. **Most resolvers are closed.** The fraction answering queries
//!    from outside their network "has significantly reduced over time"
//!    [25, 28]; we model a small open fraction.
//! 2. **No ECS, one cache.** A hit only proves *some* client of that
//!    resolver queried — no prefix granularity, and coverage is bounded
//!    by the open-resolver population (the Cache-Me-Outside follow-up
//!    (paper ref. 26) found usable forwarders in only 4,905 ASes).

use clientmap_net::SeedMixer;
use clientmap_world::activity::ResolverChoice;
use clientmap_world::{DomainSpec, ResolverKind, World};

use crate::SimTime;

/// Fraction of ISP resolvers that answer external (off-net) queries.
pub const OPEN_RESOLVER_FRACTION: f64 = 0.06;

/// Outcome of one snoop query against a recursive resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopOutcome {
    /// The record was in cache (some client queried it within TTL).
    Hit {
        /// Remaining TTL, seconds.
        remaining_ttl: u32,
    },
    /// The resolver answered but had no cached record.
    Miss,
    /// The resolver refuses external queries (the common case).
    Refused,
}

/// The resolver-snooping service surface.
#[derive(Debug)]
pub struct ResolverSnooping {
    seed: u64,
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl ResolverSnooping {
    /// Builds the service for a world seed.
    pub fn new(world_seed: u64) -> ResolverSnooping {
        ResolverSnooping {
            seed: SeedMixer::new(world_seed)
                .mix_str("open-resolvers")
                .finish(),
        }
    }

    /// Whether the resolver with this id answers external queries.
    /// Public anycast resolvers always answer (that is their job);
    /// ISP resolvers are open only with [`OPEN_RESOLVER_FRACTION`].
    pub fn is_open(&self, world: &World, resolver_id: usize) -> bool {
        let info = &world.resolvers[resolver_id];
        match info.kind {
            ResolverKind::GooglePublic | ResolverKind::OtherPublic => true,
            ResolverKind::IspLocal => {
                let h = SeedMixer::new(self.seed)
                    .mix_str("open")
                    .mix(u64::from(info.addr))
                    .finish();
                unit(h) < OPEN_RESOLVER_FRACTION
            }
        }
    }

    /// One non-recursive snoop query for `spec` against a resolver.
    ///
    /// Cache liveness follows the same Poisson model as the Google
    /// cache, but with a single cache and only the resolver's own
    /// client population feeding it.
    pub fn snoop(
        &self,
        world: &World,
        resolver_id: usize,
        spec: &DomainSpec,
        t: SimTime,
    ) -> SnoopOutcome {
        if !self.is_open(world, resolver_id) {
            return SnoopOutcome::Refused;
        }
        let info = &world.resolvers[resolver_id];
        // Only ISP-local resolver caches are meaningfully snoopable in
        // this baseline (public anycast resolvers shard caches across
        // sites/pools; Cloudflare-style ones also ignore client ECS).
        if info.kind != ResolverKind::IspLocal {
            return SnoopOutcome::Miss;
        }
        let act = world.activity();
        let lambda: f64 = world
            .slash24s
            .iter()
            .filter(|s| s.as_id == info.as_id && s.is_active())
            .map(|s| act.dns_rate(s, spec, ResolverChoice::IspLocal, t.as_secs_f64()))
            .sum();
        let ttl = f64::from(spec.ttl_secs);
        let horizon = ttl.min(t.as_secs_f64().max(0.0));
        let p_live = 1.0 - (-lambda * horizon).exp();
        let window = (t.as_secs_f64() / ttl.max(1.0)) as u64;
        let h = SeedMixer::new(self.seed)
            .mix_str("cache")
            .mix(u64::from(info.addr))
            .mix_str(&spec.name.to_string())
            .mix(window)
            .finish();
        if unit(h) < p_live {
            let age = unit(SeedMixer::new(h).mix(5).finish()) * horizon;
            SnoopOutcome::Hit {
                remaining_ttl: (ttl - age).max(1.0) as u32,
            }
        } else {
            SnoopOutcome::Miss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::WorldConfig;

    fn setup() -> (World, ResolverSnooping) {
        let world = World::generate(WorldConfig::tiny(61));
        let snoop = ResolverSnooping::new(world.config.seed);
        (world, snoop)
    }

    #[test]
    fn open_fraction_is_small() {
        let (world, snoop) = setup();
        let isp: Vec<usize> = world
            .resolvers
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind == ResolverKind::IspLocal)
            .map(|(i, _)| i)
            .collect();
        let open = isp.iter().filter(|i| snoop.is_open(&world, **i)).count();
        let frac = open as f64 / isp.len().max(1) as f64;
        assert!(
            frac < 0.2,
            "open fraction {frac} implausibly high ({open}/{})",
            isp.len()
        );
        // Public resolvers always answer.
        for &r in &world.other_public_resolvers {
            assert!(snoop.is_open(&world, r));
        }
    }

    #[test]
    fn closed_resolvers_refuse() {
        let (world, snoop) = setup();
        let spec = world
            .domains
            .get(&"www.google.com".parse().unwrap())
            .unwrap();
        let closed = world
            .resolvers
            .iter()
            .enumerate()
            .find(|(i, r)| r.kind == ResolverKind::IspLocal && !snoop.is_open(&world, *i))
            .map(|(i, _)| i)
            .expect("a closed resolver exists");
        assert_eq!(
            snoop.snoop(&world, closed, spec, SimTime::from_hours(10)),
            SnoopOutcome::Refused
        );
    }

    #[test]
    fn busy_open_resolver_hits_popular_domains() {
        let (world, snoop) = setup();
        let spec = world
            .domains
            .get(&"www.google.com".parse().unwrap())
            .unwrap();
        // Find the open ISP resolver with the most users behind it.
        let best = world
            .resolvers
            .iter()
            .enumerate()
            .filter(|(i, r)| r.kind == ResolverKind::IspLocal && snoop.is_open(&world, *i))
            .max_by(|a, b| {
                let ua = world.ases[a.1.as_id].users;
                let ub = world.ases[b.1.as_id].users;
                ua.total_cmp(&ub)
            })
            .map(|(i, _)| i);
        let Some(best) = best else {
            return; // tiny world may have no open ISP resolver; fine
        };
        // Probe across many windows: a busy resolver hits at least once.
        let hit = (0..30).any(|k| {
            matches!(
                snoop.snoop(&world, best, spec, SimTime::from_secs(36_000 + k * 301)),
                SnoopOutcome::Hit { .. }
            )
        });
        assert!(
            hit || world.ases[world.resolvers[best].as_id].users < 50.0,
            "busy open resolver never hit"
        );
    }

    #[test]
    fn deterministic() {
        let (world, snoop) = setup();
        let spec = world.domains.get(&"facebook.com".parse().unwrap()).unwrap();
        for rid in 0..world.resolvers.len().min(20) {
            let a = snoop.snoop(&world, rid, spec, SimTime::from_hours(9));
            let b = snoop.snoop(&world, rid, spec, SimTime::from_hours(9));
            assert_eq!(a, b);
        }
    }
}
