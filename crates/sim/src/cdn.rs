//! The Microsoft CDN + Azure Traffic Manager, as log generators.
//!
//! These produce the three **private validation datasets** of §4:
//!
//! - **Microsoft clients** — HTTP(S) request counts per client /24 at
//!   the CDN edge;
//! - **Microsoft resolvers** — distinct client IPs observed using each
//!   recursive resolver (resolver IP → client count);
//! - **cloud ECS prefixes** — the ECS prefixes seen in DNS queries at
//!   the Traffic Manager authoritative (only resolvers that *send* ECS
//!   appear: Google Public DNS does, ISP and Cloudflare-style resolvers
//!   do not — which is exactly why this dataset is both useful and
//!   partial).
//!
//! Counts are Poisson draws from the world's activity model, seeded per
//! prefix, so the logs are reproducible and consistent with what the
//! cache-probing and DNS-logs techniques observe.

use std::collections::HashMap;

use clientmap_net::{Prefix, SeedMixer};
use clientmap_world::World;

use crate::anycast::Catchments;
use crate::authoritative::Authoritatives;
use crate::gpdns::GooglePublicDns;
use crate::SimTime;

/// One day (or window) of Microsoft-side logs.
#[derive(Debug, Default)]
pub struct CdnLogs {
    /// HTTP(S) requests per client /24 (**Microsoft clients**).
    pub clients: HashMap<Prefix, u64>,
    /// Distinct client IPs per recursive-resolver address
    /// (**Microsoft resolvers**).
    pub resolvers: HashMap<u32, u64>,
    /// ECS /24 prefixes (with query counts) seen at the Traffic Manager
    /// authoritative (**cloud ECS prefixes**).
    pub ecs_prefixes: HashMap<Prefix, u64>,
}

impl CdnLogs {
    /// Total HTTP request volume.
    pub fn total_requests(&self) -> u64 {
        self.clients.values().sum()
    }
}

/// Samples a Poisson variate with mean `mean` using inversion for small
/// means and a normal approximation above (adequate for log volumes).
pub(crate) fn poisson(h: u64, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let mut state = h;
    let mut next_unit = || {
        state = clientmap_net::splitmix64(state);
        ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(f64::MIN_POSITIVE, 1.0)
    };
    if mean < 30.0 {
        // Knuth inversion.
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= next_unit();
            if p <= l || k > 1000 {
                return k;
            }
            k += 1;
        }
    } else {
        // Box–Muller normal approximation.
        let u1 = next_unit();
        let u2 = next_unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * mean.sqrt()).round().max(0.0) as u64
    }
}

/// Collects one window of CDN + Traffic Manager logs.
///
/// `t0..t1` is the capture window (the paper compares "a full day").
pub fn collect_logs(
    world: &World,
    catchments: &Catchments,
    auth: &Authoritatives,
    gpdns: &GooglePublicDns,
    t0: SimTime,
    t1: SimTime,
) -> CdnLogs {
    let seed = SeedMixer::new(world.config.seed)
        .mix_str("cdn-logs")
        .finish();
    let act = world.activity();
    let ms_spec = world.domains.microsoft_cdn();
    let ttl = f64::from(ms_spec.ttl_secs);
    let window = (t1 - t0).as_secs_f64();
    let mut logs = CdnLogs::default();

    for (i, s) in world.slash24s.iter().enumerate() {
        if !s.is_active() {
            continue;
        }
        let h = SeedMixer::new(seed).mix(u64::from(s.prefix.addr()));

        // --- Microsoft clients: HTTP requests over the window ----------
        let mean_http =
            act.expected_events(|t| act.cdn_rate(s, t), t0.as_secs_f64(), t1.as_secs_f64());
        let http = poisson(h.mix_str("http").finish(), mean_http);
        if http > 0 {
            *logs.clients.entry(s.prefix).or_insert(0) += http;
        }

        // --- Microsoft resolvers: distinct client IPs per resolver -----
        // NAT and address density: ~0.9 observable IPs per client, ≤ 250.
        let distinct_ips = (s.clients() * 0.9).round().min(250.0) as u64;
        if distinct_ips > 0 && http > 0 {
            let mix = s.resolver_mix;
            if mix.isp > 0.0 {
                if let Some(rid) = world.ases[s.as_id].local_resolver {
                    let n = (distinct_ips as f64 * mix.isp).round() as u64;
                    if n > 0 {
                        *logs.resolvers.entry(world.resolvers[rid].addr).or_insert(0) += n;
                    }
                }
            }
            if mix.google > 0.0 {
                let pop = catchments.of_slash24(i);
                let n = (distinct_ips as f64 * mix.google).round() as u64;
                if n > 0 {
                    *logs.resolvers.entry(gpdns.egress_addr(pop)).or_insert(0) += n;
                }
            }
            if mix.other > 0.0 {
                let addr = world.resolvers[s.other_resolver].addr;
                let n = (distinct_ips as f64 * mix.other).round() as u64;
                if n > 0 {
                    *logs.resolvers.entry(addr).or_insert(0) += n;
                }
            }
        }

        // --- cloud ECS prefixes: Google-forwarded ECS reaching the TM --
        // Only Google sends ECS. A /24 appears iff at least one of its
        // Google-bound queries for the MS domain *missed* Google's cache
        // (misses are forwarded to the TM authoritative with ECS /24).
        if s.resolver_mix.google > 0.0 {
            let lambda = act.expected_events(
                |t| {
                    act.dns_rate(
                        s,
                        ms_spec,
                        clientmap_world::activity::ResolverChoice::Google,
                        t,
                    )
                },
                t0.as_secs_f64(),
                t1.as_secs_f64(),
            ) / window.max(1e-9);
            // Miss probability at Google for this prefix's scope: the
            // busier the scope, the more often answers come from cache.
            let scope_rate = {
                let scope = auth.base_scope(ms_spec, s.prefix.addr());
                match scope {
                    Some(sc) if !sc.is_default() => {
                        // Aggregate rate approximated by own rate as a
                        // lower bound — conservative (more TM visibility).
                        lambda.max(1e-12)
                    }
                    _ => lambda.max(1e-12),
                }
            };
            let p_miss = (-scope_rate * ttl).exp().clamp(0.05, 1.0);
            let mean_tm = lambda * window * p_miss;
            let tm = poisson(h.mix_str("tm").finish(), mean_tm);
            if tm > 0 {
                *logs.ecs_prefixes.entry(s.prefix).or_insert(0) += tm;
            }
        }
    }
    logs
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{ResolverKind, WorldConfig};

    fn logs_for(seed: u64) -> (World, CdnLogs) {
        let world = World::generate(WorldConfig::tiny(seed));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let gpdns = GooglePublicDns::build(&world, &catchments, &auth);
        let logs = collect_logs(
            &world,
            &catchments,
            &auth,
            &gpdns,
            SimTime::ZERO,
            SimTime::from_hours(24),
        );
        (world, logs)
    }

    #[test]
    fn poisson_mean_roughly_right() {
        for mean in [0.5, 3.0, 50.0, 400.0] {
            let n = 2000;
            let total: u64 = (0..n).map(|i| poisson(i * 7 + 13, mean)).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - mean).abs() < 0.15 * mean + 0.2,
                "mean {mean}: got {got}"
            );
        }
        assert_eq!(poisson(1, 0.0), 0);
    }

    #[test]
    fn active_prefixes_dominate_client_log() {
        let (world, logs) = logs_for(31);
        assert!(!logs.clients.is_empty());
        // Every logged prefix must be an active /24 in the world.
        for p in logs.clients.keys() {
            let s = world.slash24(*p).expect("logged prefix is routed");
            assert!(s.is_active(), "{p} logged but dark");
        }
        // Most active prefixes with nontrivial population appear over a day.
        let busy: Vec<_> = world
            .slash24s
            .iter()
            .filter(|s| s.clients() > 5.0)
            .collect();
        let seen = busy
            .iter()
            .filter(|s| logs.clients.contains_key(&s.prefix))
            .count();
        assert!(
            seen as f64 > 0.9 * busy.len() as f64,
            "only {seen}/{} busy prefixes in CDN log",
            busy.len()
        );
    }

    #[test]
    fn resolver_log_contains_all_three_kinds() {
        let (world, logs) = logs_for(32);
        let mut kinds = [false; 3];
        for addr in logs.resolvers.keys() {
            for r in &world.resolvers {
                if r.addr == *addr {
                    match r.kind {
                        ResolverKind::IspLocal => kinds[0] = true,
                        ResolverKind::GooglePublic => {}
                        ResolverKind::OtherPublic => kinds[2] = true,
                    }
                }
            }
        }
        // Google egress addresses are per-PoP, not in world.resolvers.
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let gpdns = GooglePublicDns::build(&world, &catchments, &auth);
        kinds[1] = logs
            .resolvers
            .keys()
            .any(|a| gpdns.pop_of_egress(*a).is_some());
        assert!(kinds.iter().all(|k| *k), "kinds seen: {kinds:?}");
    }

    #[test]
    fn ecs_prefixes_only_from_google_users() {
        let (world, logs) = logs_for(33);
        assert!(!logs.ecs_prefixes.is_empty());
        for p in logs.ecs_prefixes.keys() {
            let s = world.slash24(*p).expect("routed");
            assert!(s.resolver_mix.google > 0.0, "{p} has no Google users");
        }
    }

    #[test]
    fn deterministic_logs() {
        let (_, a) = logs_for(34);
        let (_, b) = logs_for(34);
        assert_eq!(a.clients, b.clients);
        assert_eq!(a.resolvers, b.resolvers);
        assert_eq!(a.ecs_prefixes, b.ecs_prefixes);
    }

    #[test]
    fn ecs_dns_and_http_mostly_overlap() {
        // The paper's "DNS activity is a good proxy for web activity":
        // prefixes in the ECS log should carry most HTTP volume.
        let (_, logs) = logs_for(35);
        let total: u64 = logs.clients.values().sum();
        let covered: u64 = logs
            .clients
            .iter()
            .filter(|(p, _)| logs.ecs_prefixes.contains_key(*p))
            .map(|(_, c)| *c)
            .sum();
        let frac = covered as f64 / total.max(1) as f64;
        // Only ~google-share of prefixes send ECS, but those are spread
        // across the volume; expect a substantial overlap, not ≈0.
        assert!(frac > 0.2, "ECS-covered HTTP volume {frac}");
    }
}
