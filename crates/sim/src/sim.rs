//! The [`Sim`] façade tying world + services together.

use std::sync::Arc;

use clientmap_dns::{wire, DomainName, Message, Question, RData, ScopedAnswer};
use clientmap_faults::{FaultConfig, FaultMetrics, FaultPlan};
use clientmap_net::{GeoCoord, Prefix};
use clientmap_telemetry::MetricsRegistry;
use clientmap_world::World;

use crate::anycast::Catchments;
use crate::authoritative::Authoritatives;
use crate::cdn::{collect_logs, CdnLogs};
use crate::gpdns::{GooglePublicDns, GpdnsMetrics, GpdnsSession, Transport, MYADDR_NAME};
use crate::pops::{pop_catalog, PopId};
use crate::resolvers::{ResolverSnooping, SnoopOutcome};
use crate::roots::{capture_traces, RootTraceSet};
use crate::SimTime;

/// The assembled simulation: one [`World`] plus every service the
/// measurement techniques interact with.
///
/// ```
/// use clientmap_sim::Sim;
/// use clientmap_world::{World, WorldConfig};
///
/// let sim = Sim::new(World::generate(WorldConfig::tiny(1)));
/// assert!(sim.world().routed_slash24s() > 1000);
/// ```
#[derive(Debug)]
pub struct Sim {
    world: World,
    catchments: Catchments,
    auth: Authoritatives,
    gpdns: GooglePublicDns,
    session: GpdnsSession,
    snooping: ResolverSnooping,
    metrics: Arc<MetricsRegistry>,
}

/// A read-only view over the simulation shared by concurrent probers;
/// obtained from [`Sim::view`]. Each prober pairs it with its own
/// [`GpdnsSession`].
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    /// The world (public data only, by convention).
    pub world: &'a World,
    /// Anycast catchments.
    pub catchments: &'a Catchments,
    /// Authoritative layer.
    pub auth: &'a Authoritatives,
    /// The Google Public DNS core.
    pub gpdns: &'a GooglePublicDns,
}

impl<'a> SimView<'a> {
    /// Sends one wire-format query through a caller-owned session.
    #[allow(clippy::too_many_arguments)]
    pub fn gpdns_query(
        &self,
        session: &mut GpdnsSession,
        prober: u64,
        coord: GeoCoord,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
    ) -> Option<Vec<u8>> {
        self.gpdns.handle_query(
            session,
            self.world,
            self.catchments,
            self.auth,
            prober,
            coord,
            packet,
            transport,
            t,
        )
    }

    /// [`SimView::gpdns_query`] writing the response into a
    /// caller-reused buffer — the zero-allocation probe call. Returns
    /// whether a response was produced (`false` = dropped).
    #[allow(clippy::too_many_arguments)]
    pub fn gpdns_query_into(
        &self,
        session: &mut GpdnsSession,
        prober: u64,
        coord: GeoCoord,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
        out: &mut Vec<u8>,
    ) -> bool {
        self.gpdns.handle_query_into(
            session,
            self.world,
            self.catchments,
            self.auth,
            prober,
            coord,
            packet,
            transport,
            t,
            out,
        )
    }
}

impl Sim {
    /// Builds the simulation for a world, with telemetry on a fresh
    /// registry (see [`Sim::with_metrics`]).
    pub fn new(world: World) -> Sim {
        Sim::with_metrics(world, Arc::new(MetricsRegistry::new()))
    }

    /// Builds the simulation for a world, registering all service-side
    /// instruments (and the world-shape gauges) on `metrics`.
    pub fn with_metrics(world: World, metrics: Arc<MetricsRegistry>) -> Sim {
        Sim::with_faults(world, metrics, &FaultConfig::default())
    }

    /// [`Sim::with_metrics`] plus a fault-injection plan derived from
    /// `(world seed, fault seed)`. With the default (off) config this
    /// is exactly the fault-free simulation: no fault counters are
    /// registered and every injection point short-circuits.
    pub fn with_faults(world: World, metrics: Arc<MetricsRegistry>, faults: &FaultConfig) -> Sim {
        world.register_metrics(&metrics);
        let plan = Arc::new(FaultPlan::new(world.config.seed, faults));
        let fault_metrics = plan.enabled().then(|| FaultMetrics::register(&metrics));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let gpdns = GooglePublicDns::build_with_metrics(
            &world,
            &catchments,
            &auth,
            GpdnsMetrics::register(&metrics),
        )
        .with_faults(plan, fault_metrics);
        let snooping = ResolverSnooping::new(world.config.seed);
        Sim {
            world,
            catchments,
            auth,
            gpdns,
            session: GpdnsSession::new(),
            snooping,
            metrics,
        }
    }

    /// The fault plan threaded through the services.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.gpdns.fault_plan()
    }

    /// The registry every service-side instrument reports to.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A shareable read-only view for concurrent probers.
    pub fn view(&self) -> SimView<'_> {
        SimView {
            world: &self.world,
            catchments: &self.catchments,
            auth: &self.auth,
            gpdns: &self.gpdns,
        }
    }

    /// The built-in session's counters (queries sent through
    /// [`Sim::gpdns_query`]).
    pub fn gpdns_stats(&self) -> crate::GpdnsStats {
        self.session.stats
    }

    /// Merges a worker session's counters into the built-in session.
    pub fn absorb_session(&mut self, other: &GpdnsSession) {
        self.session.absorb(other);
    }

    /// The underlying world (ground truth; techniques must not peek —
    /// only the validation/analysis layer does).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Anycast catchments.
    pub fn catchments(&self) -> &Catchments {
        &self.catchments
    }

    /// The authoritative layer.
    pub fn authoritatives(&self) -> &Authoritatives {
        &self.auth
    }

    /// The Google Public DNS service (read-only view).
    pub fn gpdns(&self) -> &GooglePublicDns {
        &self.gpdns
    }

    /// Sends one wire-format query to Google Public DNS from a vantage
    /// point at `coord` (anycast decides the PoP). Returns the raw
    /// response bytes, or `None` if dropped.
    pub fn gpdns_query(
        &mut self,
        prober: u64,
        coord: GeoCoord,
        packet: &[u8],
        transport: Transport,
        t: SimTime,
    ) -> Option<Vec<u8>> {
        self.gpdns.handle_query(
            &mut self.session,
            &self.world,
            &self.catchments,
            &self.auth,
            prober,
            coord,
            packet,
            transport,
            t,
        )
    }

    /// The `dig @8.8.8.8 o-o.myaddr.l.google.com TXT` dance: discovers
    /// which PoP a vantage point reaches.
    pub fn discover_pop(&mut self, prober: u64, coord: GeoCoord, t: SimTime) -> Option<PopId> {
        let q = Message::query(1, Question::txt(MYADDR_NAME).ok()?);
        let pkt = wire::encode(&q).ok()?;
        let resp = self.gpdns_query(prober, coord, &pkt, Transport::Tcp, t)?;
        let msg = wire::decode(&resp).ok()?;
        let txt = msg.answers.first()?;
        if let RData::Txt(body) = &txt.rdata {
            let code = body.strip_prefix("pop=")?;
            pop_catalog().iter().position(|p| p.code == code)
        } else {
            None
        }
    }

    /// Queries a domain's authoritative directly with an ECS prefix
    /// (the pre-scan that learns response scopes, §3.1.1).
    pub fn authoritative_scan(
        &self,
        name: &DomainName,
        ecs: Prefix,
        t: SimTime,
    ) -> Option<ScopedAnswer> {
        self.auth.answer(&self.world.domains, name, Some(ecs), t)
    }

    /// Collects a window of Microsoft CDN + Traffic Manager logs.
    pub fn collect_cdn_logs(&self, t0: SimTime, t1: SimTime) -> CdnLogs {
        collect_logs(
            &self.world,
            &self.catchments,
            &self.auth,
            &self.gpdns,
            t0,
            t1,
        )
    }

    /// Whether a resolver (by id) answers off-net queries — what an
    /// Internet-wide port-53 scan discovers.
    pub fn resolver_is_open(&self, resolver_id: usize) -> bool {
        self.snooping.is_open(&self.world, resolver_id)
    }

    /// One cache-snoop query against a recursive resolver (the §3.1
    /// baseline approach).
    pub fn snoop_resolver(
        &self,
        resolver_id: usize,
        domain: &DomainName,
        t: SimTime,
    ) -> Option<SnoopOutcome> {
        let spec = self.world.domains.get(domain)?;
        Some(self.snooping.snoop(&self.world, resolver_id, spec, t))
    }

    /// Captures a DITL-style root-trace window.
    pub fn capture_root_traces(&self, start: SimTime, days: u32, sample_rate: f64) -> RootTraceSet {
        capture_traces(
            &self.world,
            &self.catchments,
            &self.gpdns,
            start,
            days,
            sample_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::WorldConfig;

    #[test]
    fn discover_pop_returns_probeable_site() {
        let mut sim = Sim::new(World::generate(WorldConfig::tiny(51)));
        let nyc = GeoCoord::new(40.7, -74.0).unwrap();
        let pop = sim
            .discover_pop(77, nyc, SimTime::ZERO)
            .expect("pop discovered");
        use crate::pops::PopStatus;
        assert_eq!(pop_catalog()[pop].status, PopStatus::ProbedVerified);
        // Deterministic per prober key.
        let again = sim.discover_pop(77, nyc, SimTime::from_secs(60)).unwrap();
        assert_eq!(pop, again);
    }

    #[test]
    fn authoritative_scan_returns_scopes() {
        let sim = Sim::new(World::generate(WorldConfig::tiny(52)));
        let name: DomainName = "www.google.com".parse().unwrap();
        let ecs: Prefix = "100.100.100.0/24".parse().unwrap();
        let ans = sim.authoritative_scan(&name, ecs, SimTime::ZERO).unwrap();
        assert!(ans.scope.is_some());
        // Non-ECS domain scans yield no scope.
        let amazon: DomainName = "www.amazon.com".parse().unwrap();
        let plain = sim.authoritative_scan(&amazon, ecs, SimTime::ZERO).unwrap();
        assert!(plain.scope.is_none());
    }

    #[test]
    fn facade_logs_and_traces() {
        let sim = Sim::new(World::generate(WorldConfig::tiny(53)));
        let logs = sim.collect_cdn_logs(SimTime::ZERO, SimTime::from_hours(24));
        assert!(logs.total_requests() > 0);
        let traces = sim.capture_root_traces(SimTime::ZERO, 2, 0.001);
        assert_eq!(traces.traces.len(), 13);
    }
}
