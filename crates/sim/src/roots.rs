//! Root DNS servers and DITL-style trace capture.
//!
//! Chromium-based browsers probe for DNS interception with queries for
//! random single labels of 7–15 lowercase letters at browser launch and
//! on network changes (paper ref. 35). Having no valid TLD, these are not cached
//! and land at the root servers, where DITL traces record them with the
//! **recursive resolver's** source address. The paper crawls the J, H,
//! M, A, K and D roots (the letters with un-anonymised, complete 2020
//! traces).
//!
//! The capture here mixes three populations, so the classifier in
//! `clientmap-chromium` has real work to do:
//!
//! 1. genuine Chromium probes (fresh random label per probe);
//! 2. **misconfiguration noise**: fixed junk names (`localdomain`,
//!    `corpinternal`, …) leaked to the roots at high rates — they match
//!    the Chromium *shape* but recur far above the collision threshold;
//! 3. **typo noise**: hostnames missing their dot (`wwwgooglecom`) —
//!    also shape-matching, also high-recurrence.
//!
//! Traces can be **sampled** (`sample_rate < 1`): real DITL analysis at
//! scale works on samples, and it keeps the reproduction laptop-sized.
//! Counts in downstream analysis are scaled back by the rate.

use std::collections::HashMap;

use clientmap_dns::DomainName;
use clientmap_net::SeedMixer;
use clientmap_world::World;

use crate::anycast::Catchments;
use crate::cdn::poisson;
use crate::gpdns::GooglePublicDns;
use crate::SimTime;

/// The 13 root letters.
pub const ROOT_LETTERS: [char; 13] = [
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M',
];

/// The letters with public, complete, un-anonymised DITL traces (2020).
pub const PUBLIC_TRACE_LETTERS: [char; 6] = ['J', 'H', 'M', 'A', 'K', 'D'];

/// One aggregated trace record: a (resolver, name) pair with per-day
/// query counts over the capture window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Source address (the recursive resolver).
    pub resolver_addr: u32,
    /// The queried name.
    pub qname: DomainName,
    /// Queries observed per capture day.
    pub count_by_day: Vec<u32>,
}

impl TraceRecord {
    /// Total queries across the window.
    pub fn total(&self) -> u64 {
        self.count_by_day.iter().map(|c| u64::from(*c)).sum()
    }
}

/// The trace of one root letter.
#[derive(Debug)]
pub struct RootTrace {
    /// Root letter.
    pub letter: char,
    /// Whether a complete public trace exists (else it is unusable, as
    /// for the non-DITL letters in the paper).
    pub public: bool,
    /// Records (aggregated by (resolver, name)).
    pub records: Vec<TraceRecord>,
}

/// A full DITL-style capture.
#[derive(Debug)]
pub struct RootTraceSet {
    /// One trace per root letter.
    pub traces: Vec<RootTrace>,
    /// Sampling rate applied at capture (counts are *not* pre-scaled).
    pub sample_rate: f64,
    /// Capture length in days.
    pub days: u32,
}

impl RootTraceSet {
    /// The usable (public) traces.
    pub fn public_traces(&self) -> impl Iterator<Item = &RootTrace> {
        self.traces.iter().filter(|t| t.public)
    }

    /// Total records across public traces.
    pub fn public_records(&self) -> usize {
        self.public_traces().map(|t| t.records.len()).sum()
    }
}

/// Generates a fresh random Chromium-style label of 7–15 lowercase
/// letters from the hash state.
fn random_probe_label(h: u64) -> String {
    let mut state = h;
    let mut next = || {
        state = clientmap_net::splitmix64(state);
        state
    };
    let len = 7 + (next() % 9) as usize; // 7..=15
    (0..len)
        .map(|_| (b'a' + (next() % 26) as u8) as char)
        .collect()
}

/// Fixed misconfiguration names: single labels that *match* the
/// Chromium shape (7–15 lowercase letters) but recur at high rates.
const MISCONFIG_NAMES: &[&str] = &[
    "localdomain",
    "corpinternal",
    "homestation",
    "belkinrouter",
    "workgroup",
    "intranet",
];

/// Typo names: well-known hostnames with the dots dropped.
const TYPO_NAMES: &[&str] = &[
    "wwwgooglecom",
    "wwwfacebookcom",
    "wwwyoutubecom",
    "wikipediaorg",
    "wwwbingcom",
];

/// Captures `days` days of root traces.
///
/// `sample_rate` keeps each probe with that probability; counts remain
/// raw (downstream scales by `1/sample_rate`).
pub fn capture_traces(
    world: &World,
    catchments: &Catchments,
    gpdns: &GooglePublicDns,
    start: SimTime,
    days: u32,
    sample_rate: f64,
) -> RootTraceSet {
    assert!(days >= 1, "capture needs at least one day");
    assert!((0.0..=1.0).contains(&sample_rate));
    let seed = SeedMixer::new(world.config.seed).mix_str("roots").finish();
    let act = world.activity();
    let nletters = ROOT_LETTERS.len() as u64;

    // Aggregation key: (letter, resolver, name) → per-day counts.
    let mut agg: HashMap<(usize, u32, String), Vec<u32>> = HashMap::new();
    let mut bump = |letter: usize, resolver: u32, name: String, day: usize, n: u32, days: u32| {
        let counts = agg
            .entry((letter, resolver, name))
            .or_insert_with(|| vec![0; days as usize]);
        counts[day] += n;
    };

    for (i, s) in world.slash24s.iter().enumerate() {
        if s.users <= 0.0 {
            continue;
        }
        let base = SeedMixer::new(seed).mix(u64::from(s.prefix.addr()));
        // Resolver addresses for each share.
        let isp_addr = world.ases[s.as_id]
            .local_resolver
            .map(|rid| world.resolvers[rid].addr);
        let google_addr = gpdns.egress_addr(catchments.of_slash24(i));
        let other_addr = world.resolvers[s.other_resolver].addr;

        for day in 0..days {
            let t0 = start.as_secs_f64() + f64::from(day) * 86_400.0;
            let t1 = t0 + 86_400.0;
            let mean_probes =
                act.expected_events(|t| act.chromium_probe_rate(s, t), t0, t1) * sample_rate;
            for (share, addr) in [
                (s.resolver_mix.isp, isp_addr),
                (s.resolver_mix.google, Some(google_addr)),
                (s.resolver_mix.other, Some(other_addr)),
            ] {
                let Some(addr) = addr else { continue };
                if share <= 0.0 {
                    continue;
                }
                let h = base.mix(day as u64).mix(u64::from(addr)).finish();
                let n = poisson(h, mean_probes * share);
                // Each probe: a fresh random label, to a random root.
                let mut state = h;
                for k in 0..n {
                    state = clientmap_net::splitmix64(state ^ k);
                    let letter = (state % nletters) as usize;
                    let label = random_probe_label(state);
                    bump(letter, addr, label, day as usize, 1, days);
                }
            }
        }
    }

    // Misconfiguration + typo noise: emitted by a spread of resolvers at
    // rates far above the Chromium collision threshold.
    let mut noise_rng = SeedMixer::new(seed).mix_str("noise").finish();
    let resolver_pool: Vec<u32> = world.resolvers.iter().map(|r| r.addr).collect();
    for name in MISCONFIG_NAMES.iter().chain(TYPO_NAMES) {
        for day in 0..days as usize {
            // 10–40 resolvers leak each junk name, dozens of times a day.
            noise_rng = clientmap_net::splitmix64(noise_rng);
            let spread = 10 + (noise_rng % 31) as usize;
            for j in 0..spread.min(resolver_pool.len()) {
                noise_rng = clientmap_net::splitmix64(noise_rng);
                let addr = resolver_pool[(noise_rng as usize) % resolver_pool.len()];
                let letter = (noise_rng % nletters) as usize;
                let count = 20 + (noise_rng % 100) as u32;
                let sampled = poisson(
                    clientmap_net::splitmix64(noise_rng ^ j as u64),
                    f64::from(count) * sample_rate.max(1e-12),
                );
                if sampled > 0 {
                    bump(letter, addr, name.to_string(), day, sampled as u32, days);
                }
            }
        }
    }

    // Assemble per-letter traces.
    let mut traces: Vec<RootTrace> = ROOT_LETTERS
        .iter()
        .map(|l| RootTrace {
            letter: *l,
            public: PUBLIC_TRACE_LETTERS.contains(l),
            records: Vec::new(),
        })
        .collect();
    let mut entries: Vec<((usize, u32, String), Vec<u32>)> = agg.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic order
    for ((letter, resolver_addr, name), count_by_day) in entries {
        if let Ok(qname) = name.parse::<DomainName>() {
            traces[letter].records.push(TraceRecord {
                resolver_addr,
                qname,
                count_by_day,
            });
        }
    }
    RootTraceSet {
        traces,
        sample_rate,
        days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authoritative::Authoritatives;
    use clientmap_world::WorldConfig;

    fn capture(seed: u64, rate: f64) -> (World, RootTraceSet) {
        let world = World::generate(WorldConfig::tiny(seed));
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let gpdns = GooglePublicDns::build(&world, &catchments, &auth);
        let t = capture_traces(&world, &catchments, &gpdns, SimTime::ZERO, 2, rate);
        (world, t)
    }

    #[test]
    fn thirteen_letters_six_public() {
        let (_, set) = capture(41, 0.001);
        assert_eq!(set.traces.len(), 13);
        assert_eq!(set.public_traces().count(), 6);
        assert_eq!(set.days, 2);
    }

    #[test]
    fn probe_labels_have_chromium_shape() {
        let (_, set) = capture(42, 0.002);
        let mut checked = 0;
        for trace in &set.traces {
            for r in &trace.records {
                assert!(r.qname.is_single_label(), "{} has dots", r.qname);
                let label = r.qname.first_label().unwrap();
                assert!(
                    (7..=15).contains(&label.len()),
                    "label length {}",
                    label.len()
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "only {checked} records captured");
    }

    #[test]
    fn genuine_probes_rarely_repeat_noise_repeats_heavily() {
        let (_, set) = capture(43, 0.01);
        let mut max_random_count = 0u64;
        let mut noise_seen = false;
        for trace in &set.traces {
            for r in &trace.records {
                let name = r.qname.to_string();
                if MISCONFIG_NAMES.contains(&name.as_str()) || TYPO_NAMES.contains(&name.as_str()) {
                    noise_seen = true;
                    assert!(r.total() >= 1);
                } else {
                    max_random_count = max_random_count.max(r.total());
                }
            }
        }
        assert!(noise_seen, "noise population missing");
        // Fresh random labels essentially never collide within a capture.
        assert!(
            max_random_count <= 2,
            "random label repeated {max_random_count} times"
        );
    }

    #[test]
    fn resolver_addresses_are_real_resolvers_or_google_egress() {
        let (world, set) = capture(44, 0.005);
        let catchments = Catchments::compute(&world);
        let auth = Authoritatives::new(world.config.seed, world.rib.clone());
        let gpdns = GooglePublicDns::build(&world, &catchments, &auth);
        let known: std::collections::HashSet<u32> =
            world.resolvers.iter().map(|r| r.addr).collect();
        for trace in &set.traces {
            for r in &trace.records {
                assert!(
                    known.contains(&r.resolver_addr)
                        || gpdns.pop_of_egress(r.resolver_addr).is_some(),
                    "unknown resolver {:#x}",
                    r.resolver_addr
                );
            }
        }
    }

    #[test]
    fn sampling_scales_volume() {
        let (_, lo) = capture(45, 0.001);
        let (_, hi) = capture(45, 0.01);
        let lo_total: u64 = lo
            .traces
            .iter()
            .flat_map(|t| &t.records)
            .map(|r| r.total())
            .sum();
        let hi_total: u64 = hi
            .traces
            .iter()
            .flat_map(|t| &t.records)
            .map(|r| r.total())
            .sum();
        assert!(
            hi_total > 4 * lo_total,
            "sampling did not scale: {lo_total} vs {hi_total}"
        );
    }

    #[test]
    fn deterministic_capture() {
        let (_, a) = capture(46, 0.002);
        let (_, b) = capture(46, 0.002);
        let count = |s: &RootTraceSet| -> usize { s.traces.iter().map(|t| t.records.len()).sum() };
        assert_eq!(count(&a), count(&b));
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            assert_eq!(ta.records, tb.records);
        }
    }
}
