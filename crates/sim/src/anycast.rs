//! Anycast catchment simulation.
//!
//! Google Public DNS directs clients to PoPs with BGP anycast. Anycast
//! routing correlates with distance but is *not* nearest-PoP (the paper
//! cites [8, 21, 24]); we model a per-/24 deterministic "routing
//! inflation" factor so most prefixes land at a nearby PoP and a tail
//! lands further away — exactly the effect the per-PoP service-radius
//! calibration (Fig. 2) has to absorb.
//!
//! Cloud vantage points see a *restricted* anycast horizon: the five
//! active-but-unprobed PoPs attract no route from any tried cloud
//! region (paper Appendix A.1), which we model by excluding them from
//! VM catchment computation.

use clientmap_net::{GeoCoord, SeedMixer};
use clientmap_world::World;

use crate::pops::{active_pops, pop_catalog, probeable_pops, PopId};

/// Per-world catchment table: which PoP each routed /24 is served by,
/// plus helpers for vantage-point routing.
#[derive(Debug)]
pub struct Catchments {
    /// Index parallel to `world.slash24s`.
    by_slash24: Vec<PopId>,
    seed: u64,
}

/// Deterministic routing-inflation factor in `[1, 1+spread)` for an
/// entity identified by `key`.
fn inflation(seed: u64, key: u64, pop: PopId, spread: f64) -> f64 {
    let h = SeedMixer::new(seed)
        .mix_str("anycast-inflation")
        .mix(key)
        .mix(pop as u64)
        .finish();
    // Map to [0,1) then to [1, 1+spread).
    1.0 + (h >> 11) as f64 / (1u64 << 53) as f64 * spread
}

/// Chooses the PoP with minimal inflated distance among `candidates`.
///
/// Active-but-cloud-unreachable PoPs (the paper's "unprobed and
/// verified" five) carry a routing penalty: they announce the anycast
/// prefix to fewer peers, so even nearby clients often route past them
/// — which is why they carry only ~5% of Google's query volume
/// (Appendix A.1).
fn route(
    seed: u64,
    key: u64,
    from: GeoCoord,
    candidates: impl Iterator<Item = PopId>,
    spread: f64,
) -> PopId {
    let pops = pop_catalog();
    candidates
        .map(|id| {
            let d = from.distance_km(&pops[id].coord).max(1.0);
            let penalty = if pops[id].status == crate::pops::PopStatus::UnprobedVerified {
                2.2
            } else {
                1.0
            };
            (d * penalty * inflation(seed, key, id, spread), id)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, id)| id)
        .expect("candidate set is never empty")
}

/// Routing-inflation spread for clients (0.9 ⇒ up to ~90% detour).
const CLIENT_SPREAD: f64 = 0.9;
/// Cloud VMs have cleaner routing toward Google.
const VM_SPREAD: f64 = 0.4;

impl Catchments {
    /// Computes the client catchment of every routed /24 in the world.
    pub fn compute(world: &World) -> Catchments {
        let seed = SeedMixer::new(world.config.seed)
            .mix_str("catchments")
            .finish();
        let by_slash24 = world
            .slash24s
            .iter()
            .map(|s| {
                route(
                    seed,
                    u64::from(s.prefix.addr()),
                    s.coord,
                    active_pops(),
                    CLIENT_SPREAD,
                )
            })
            .collect();
        Catchments { by_slash24, seed }
    }

    /// The PoP serving the world's `i`-th routed /24.
    pub fn of_slash24(&self, i: usize) -> PopId {
        self.by_slash24[i]
    }

    /// The PoP an arbitrary coordinate's clients would be served by
    /// (used for resolvers and for ad-hoc queries; keyed by a caller-
    /// chosen stable id so the same entity always routes the same way).
    pub fn of_client_coord(&self, key: u64, coord: GeoCoord) -> PopId {
        route(self.seed, key, coord, active_pops(), CLIENT_SPREAD)
    }

    /// The PoP a cloud VM at `coord` reaches — restricted to the
    /// probeable set (the 5 active-unprobed PoPs attract no cloud route).
    pub fn of_vantage(&self, key: u64, coord: GeoCoord) -> PopId {
        route(self.seed, key, coord, probeable_pops(), VM_SPREAD)
    }

    /// [`Catchments::of_vantage`] with one PoP withdrawn — where a
    /// vantage's traffic lands while an anycast flap (fault injection)
    /// suppresses its home catchment for a routing window.
    pub fn of_vantage_excluding(&self, key: u64, coord: GeoCoord, exclude: PopId) -> PopId {
        let mut candidates = probeable_pops().filter(|&p| p != exclude).peekable();
        if candidates.peek().is_none() {
            return exclude;
        }
        route(self.seed, key, coord, candidates, VM_SPREAD)
    }

    /// Number of /24 entries.
    pub fn len(&self) -> usize {
        self.by_slash24.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_slash24.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pops::PopStatus;
    use clientmap_world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(11))
    }

    #[test]
    fn every_slash24_has_an_active_catchment() {
        let w = world();
        let c = Catchments::compute(&w);
        assert_eq!(c.len(), w.slash24s.len());
        let pops = pop_catalog();
        for i in 0..c.len() {
            assert_ne!(pops[c.of_slash24(i)].status, PopStatus::UnprobedInactive);
        }
    }

    #[test]
    fn catchment_is_deterministic() {
        let w = world();
        let c1 = Catchments::compute(&w);
        let c2 = Catchments::compute(&w);
        for i in (0..c1.len()).step_by(7) {
            assert_eq!(c1.of_slash24(i), c2.of_slash24(i));
        }
    }

    #[test]
    fn most_prefixes_route_near() {
        let w = world();
        let c = Catchments::compute(&w);
        let pops = pop_catalog();
        // For each prefix, its assigned PoP should usually be within 2×
        // the distance of the true nearest active PoP.
        let mut near = 0;
        let mut total = 0;
        for (i, s) in w.slash24s.iter().enumerate() {
            let assigned = pops[c.of_slash24(i)].coord;
            let d_assigned = s.coord.distance_km(&assigned);
            let d_nearest = active_pops()
                .map(|id| s.coord.distance_km(&pops[id].coord))
                .fold(f64::INFINITY, f64::min);
            total += 1;
            if d_assigned <= 2.0 * d_nearest.max(50.0) {
                near += 1;
            }
        }
        assert!(
            near as f64 > 0.85 * total as f64,
            "only {near}/{total} near their PoP"
        );
    }

    #[test]
    fn vantage_points_never_reach_unprobed_pops() {
        let w = world();
        let c = Catchments::compute(&w);
        let pops = pop_catalog();
        // A VM in Lima still cannot reach the Lima PoP.
        let lima = GeoCoord::new(-12.05, -77.04).unwrap();
        let reached = c.of_vantage(1, lima);
        assert_eq!(pops[reached].status, PopStatus::ProbedVerified);
        // But clients in Lima can.
        let client_pop = c.of_client_coord(1, lima);
        assert_ne!(pops[client_pop].status, PopStatus::UnprobedInactive);
    }

    #[test]
    fn andean_clients_often_land_on_unreachable_pops() {
        // Clients scattered around Lima/Quito/La Paz should frequently be
        // served by the UnprobedVerified PoPs — the mechanism behind the
        // paper's South America coverage gap.
        let w = world();
        let c = Catchments::compute(&w);
        let pops = pop_catalog();
        let lima = GeoCoord::new(-12.05, -77.04).unwrap();
        let mut unreachable = 0;
        let n = 200;
        for key in 0..n {
            let coord = lima.destination((key * 17 % 360) as f64, (key % 40) as f64 * 10.0);
            let pop = c.of_client_coord(key, coord);
            if pops[pop].status == PopStatus::UnprobedVerified {
                unreachable += 1;
            }
        }
        assert!(
            unreachable > n / 4,
            "only {unreachable}/{n} Andean clients on unreachable PoPs"
        );
    }
}
