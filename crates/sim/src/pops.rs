//! The Google Public DNS PoP catalog.
//!
//! The paper (Fig. 5, Appendix A.1) distinguishes three PoP states:
//! 22 **probed and verified** (reachable from AWS/Vultr VMs, carrying
//! 95% of Google Public DNS queries to Microsoft), 5 **unprobed and
//! verified** (active — they appear as resolvers in Microsoft logs —
//! but no tried cloud region's anycast routes to them; they carry the
//! remaining 5%), and 18 **unprobed and unverified** (apparently
//! inactive). The catalog reproduces those counts with plausible sites:
//! the unreachable-but-active ones sit in regions with thin cloud
//! presence (Andean/central South America, West Africa), which is what
//! makes the technique's South American coverage worse (Fig. 3).

use clientmap_net::GeoCoord;

/// Index into the PoP catalog.
pub type PopId = usize;

/// Reachability/activity state of a PoP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopStatus {
    /// Active and reachable from at least one cloud vantage point.
    ProbedVerified,
    /// Active (serves clients) but anycast from no tried cloud reaches it.
    UnprobedVerified,
    /// Inactive: serves no clients, announces no anycast route.
    UnprobedInactive,
}

/// One Google Public DNS PoP site.
#[derive(Debug, Clone, Copy)]
pub struct PopSite {
    /// Site mnemonic (airport-code style).
    pub code: &'static str,
    /// Human-readable location.
    pub location: &'static str,
    /// Coordinates.
    pub coord: GeoCoord,
    /// State.
    pub status: PopStatus,
}

macro_rules! pop {
    ($code:literal, $loc:literal, $lat:literal, $lon:literal, $status:ident) => {
        PopSite {
            code: $code,
            location: $loc,
            coord: GeoCoord {
                lat: $lat,
                lon: $lon,
            },
            status: PopStatus::$status,
        }
    };
}

/// The 45 PoPs. Slices are stable; `PopId` indexes into this array.
static POPS: &[PopSite] = &[
    // --- 22 probed and verified ---------------------------------------
    // United States, seven states (paper: "seven states").
    pop!(
        "DLS",
        "The Dalles, OR, US",
        45.5946,
        -121.1787,
        ProbedVerified
    ),
    pop!(
        "CBF",
        "Council Bluffs, IA, US",
        41.2619,
        -95.8608,
        ProbedVerified
    ),
    pop!(
        "CHS",
        "Charleston, SC, US",
        32.7765,
        -79.9311,
        ProbedVerified
    ),
    pop!("LNR", "Lenoir, NC, US", 35.9140, -81.5390, ProbedVerified),
    pop!("PRY", "Pryor, OK, US", 36.3084, -95.3169, ProbedVerified),
    pop!(
        "DGA",
        "Douglas County, GA, US",
        33.7515,
        -84.7477,
        ProbedVerified
    ),
    pop!("RNO", "Reno, NV, US", 39.5296, -119.8138, ProbedVerified),
    // Canada, two provinces.
    pop!("YUL", "Montreal, QC, CA", 45.5017, -73.5673, ProbedVerified),
    pop!("YYZ", "Toronto, ON, CA", 43.6532, -79.3832, ProbedVerified),
    // Europe, five countries.
    pop!("GRQ", "Groningen, NL", 53.2194, 6.5665, ProbedVerified),
    pop!("HEL", "Hamina, FI", 60.5696, 27.1979, ProbedVerified),
    pop!("DUB", "Dublin, IE", 53.3498, -6.2603, ProbedVerified),
    pop!("BRU", "St. Ghislain, BE", 50.4542, 3.8192, ProbedVerified),
    pop!("ZRH", "Zurich, CH", 47.3769, 8.5417, ProbedVerified),
    // Asia, five countries/regions.
    pop!(
        "TPE",
        "Changhua County, TW",
        24.0518,
        120.5161,
        ProbedVerified
    ),
    pop!("SIN", "Singapore, SG", 1.3521, 103.8198, ProbedVerified),
    pop!("NRT", "Tokyo, JP", 35.6762, 139.6503, ProbedVerified),
    pop!("KIX", "Osaka, JP", 34.6937, 135.5023, ProbedVerified),
    pop!("HKG", "Hong Kong, HK", 22.3193, 114.1694, ProbedVerified),
    // South America, two countries.
    pop!("GRU", "Sao Paulo, BR", -23.5505, -46.6333, ProbedVerified),
    pop!("SCL", "Santiago, CL", -33.4489, -70.6693, ProbedVerified),
    // Australia.
    pop!("SYD", "Sydney, AU", -33.8688, 151.2093, ProbedVerified),
    // --- 5 unprobed and verified (active, cloud-unreachable) -----------
    pop!("LIM", "Lima, PE", -12.0464, -77.0428, UnprobedVerified),
    pop!("UIO", "Quito, EC", -0.1807, -78.4678, UnprobedVerified),
    pop!("LPB", "La Paz, BO", -16.4897, -68.1193, UnprobedVerified),
    pop!("ASU", "Asuncion, PY", -25.2637, -57.5759, UnprobedVerified),
    pop!("LOS", "Lagos, NG", 6.5244, 3.3792, UnprobedVerified),
    // --- 18 unprobed and unverified (inactive) --------------------------
    pop!("FRA", "Frankfurt, DE", 50.1109, 8.6821, UnprobedInactive),
    pop!("LHR", "London, GB", 51.5074, -0.1278, UnprobedInactive),
    pop!("MAD", "Madrid, ES", 40.4168, -3.7038, UnprobedInactive),
    pop!("MXP", "Milan, IT", 45.4642, 9.1900, UnprobedInactive),
    pop!("WAW", "Warsaw, PL", 52.2297, 21.0122, UnprobedInactive),
    pop!("BOM", "Mumbai, IN", 19.0760, 72.8777, UnprobedInactive),
    pop!("DEL", "Delhi, IN", 28.7041, 77.1025, UnprobedInactive),
    pop!("MAA", "Chennai, IN", 13.0827, 80.2707, UnprobedInactive),
    pop!("ICN", "Seoul, KR", 37.5665, 126.9780, UnprobedInactive),
    pop!("CGK", "Jakarta, ID", -6.2088, 106.8456, UnprobedInactive),
    pop!("MNL", "Manila, PH", 14.5995, 120.9842, UnprobedInactive),
    pop!("BKK", "Bangkok, TH", 13.7563, 100.5018, UnprobedInactive),
    pop!(
        "EZE",
        "Buenos Aires, AR",
        -34.6037,
        -58.3816,
        UnprobedInactive
    ),
    pop!("BOG", "Bogota, CO", 4.7110, -74.0721, UnprobedInactive),
    pop!(
        "JNB",
        "Johannesburg, ZA",
        -26.2041,
        28.0473,
        UnprobedInactive
    ),
    pop!("CAI", "Cairo, EG", 30.0444, 31.2357, UnprobedInactive),
    pop!("DXB", "Dubai, AE", 25.2048, 55.2708, UnprobedInactive),
    pop!("MEL", "Melbourne, AU", -37.8136, 144.9631, UnprobedInactive),
];

/// The PoP catalog.
pub fn pop_catalog() -> &'static [PopSite] {
    POPS
}

/// Ids of all *active* PoPs (probed or not) — the ones clients can be
/// routed to.
pub fn active_pops() -> impl Iterator<Item = PopId> {
    POPS.iter()
        .enumerate()
        .filter(|(_, p)| p.status != PopStatus::UnprobedInactive)
        .map(|(i, _)| i)
}

/// Ids of PoPs reachable from cloud vantage points.
pub fn probeable_pops() -> impl Iterator<Item = PopId> {
    POPS.iter()
        .enumerate()
        .filter(|(_, p)| p.status == PopStatus::ProbedVerified)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        let probed = POPS
            .iter()
            .filter(|p| p.status == PopStatus::ProbedVerified)
            .count();
        let unprobed_active = POPS
            .iter()
            .filter(|p| p.status == PopStatus::UnprobedVerified)
            .count();
        let inactive = POPS
            .iter()
            .filter(|p| p.status == PopStatus::UnprobedInactive)
            .count();
        assert_eq!((probed, unprobed_active, inactive), (22, 5, 18));
        assert_eq!(POPS.len(), 45);
    }

    #[test]
    fn regional_structure_matches_paper() {
        let probed: Vec<&PopSite> = POPS
            .iter()
            .filter(|p| p.status == PopStatus::ProbedVerified)
            .collect();
        let us = probed.iter().filter(|p| p.location.ends_with("US")).count();
        let ca = probed.iter().filter(|p| p.location.ends_with("CA")).count();
        let au = probed.iter().filter(|p| p.location.ends_with("AU")).count();
        assert_eq!(us, 7, "seven US states");
        assert_eq!(ca, 2, "two Canadian provinces");
        assert_eq!(au, 1);
    }

    #[test]
    fn unreachable_active_pops_are_in_thin_cloud_regions() {
        for p in POPS
            .iter()
            .filter(|p| p.status == PopStatus::UnprobedVerified)
        {
            // All five sit in South America or Africa by construction.
            assert!(
                p.coord.lon < -50.0 || p.location.ends_with("NG"),
                "{} unexpectedly placed",
                p.location
            );
        }
    }

    #[test]
    fn codes_unique() {
        let mut codes: Vec<&str> = POPS.iter().map(|p| p.code).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    #[test]
    fn iterators_consistent() {
        assert_eq!(active_pops().count(), 27);
        assert_eq!(probeable_pops().count(), 22);
        for id in probeable_pops() {
            assert_eq!(POPS[id].status, PopStatus::ProbedVerified);
        }
    }
}
