//! Authoritative DNS servers with ECS scope policies.
//!
//! For every ECS-supporting domain, the authoritative assigns each
//! query a **response scope**: the prefix length the answer may be
//! cached for. The paper's probe-reduction trick (§3.1.1) pre-scans the
//! authoritatives to learn these scopes, and Appendix A.2 (Table 2)
//! validates that scopes are stable: 90% of cache hits return exactly
//! the queried scope, 97% within 2 bits, 99% within 4.
//!
//! We model a per-region **base scope** (stable, keyed by the /16
//! containing the query address: real CDNs assign scopes by routing
//! aggregates) plus occasional churn with the paper's magnitudes.
//! A small fraction of regions get scope 0 ("answer valid everywhere"),
//! which produces the scope-0 cache hits the probing methodology must
//! discard.

use clientmap_dns::{DomainName, Record, ScopedAnswer};
use clientmap_net::{Prefix, Rib, SeedMixer};
use clientmap_world::{DomainCatalog, DomainSpec};

use crate::SimTime;

/// Probability a region's answers carry scope 0 (global validity).
const SCOPE_ZERO_PROB: f64 = 0.02;
/// Scope-churn distribution (paper Table 2): probability the response
/// scope differs from the base, by bucketed magnitude.
// Halved relative to Table 2's *measured* rates: a probe pays churn
// twice (once when the pre-scan learns the scope, once at hit time),
// so per-sample churn of ~5% yields the paper's ~10% differing pairs.
const CHURN_WITHIN_2: f64 = 0.035;
const CHURN_WITHIN_4: f64 = 0.012;
const CHURN_BEYOND_4: f64 = 0.006;

/// The set of simulated authoritative servers (one logical service per
/// catalog domain).
///
/// CDN authoritatives derive their ECS scopes from **BGP routing
/// aggregates** (that is how end-user mapping systems are built), so a
/// scope never spans announced prefixes of different origins. The
/// layer therefore holds a snapshot of the public routing table and
/// clamps every drawn scope to the announced prefix containing the
/// query address.
#[derive(Debug)]
pub struct Authoritatives {
    seed: u64,
    /// Public routing snapshot used for scope alignment. An empty RIB
    /// disables clamping (used by unit tests of the raw policy).
    rib: Rib,
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-domain hash states for the scope policy, pre-mixed once so the
/// probe hot path never stringifies the domain name. Produced by
/// [`Authoritatives::scope_key`]; consumed by the `*_keyed` variants.
#[derive(Debug, Clone, Copy)]
pub struct DomainScopeKey {
    /// `SeedMixer(seed) · "scope" · name`, awaiting the /16 region.
    scope: SeedMixer,
    /// `SeedMixer(seed) · "churn" · name`, awaiting the /24 and bucket.
    churn: SeedMixer,
    supports_ecs: bool,
    scope_len_range: (u8, u8),
}

impl DomainScopeKey {
    /// The domain's configured `(lo, hi)` ECS scope-length range. The
    /// scope policy never assigns below `lo` (routing alignment only
    /// ever *lengthens*), which is what lets prefilters bound how far
    /// up the prefix tree a candidate entry can sit.
    pub fn scope_len_range(&self) -> (u8, u8) {
        self.scope_len_range
    }
}

impl Authoritatives {
    /// Builds the authoritative layer for a world seed, with a routing
    /// snapshot for scope alignment.
    pub fn new(world_seed: u64, rib: Rib) -> Authoritatives {
        Authoritatives {
            seed: SeedMixer::new(world_seed)
                .mix_str("authoritatives")
                .finish(),
            rib,
        }
    }

    /// Builds the layer without routing alignment (raw scope policy).
    pub fn without_rib(world_seed: u64) -> Authoritatives {
        Authoritatives::new(world_seed, Rib::new())
    }

    /// The announced-prefix length covering `addr`, if routed.
    fn announced_len(&self, addr: u32) -> Option<u8> {
        self.rib.lookup_addr(addr).map(|(p, _)| p.len())
    }

    /// Pre-mixes the per-domain hash states the scope policy keys on,
    /// so the probe hot path can evaluate scopes without re-hashing the
    /// domain name (which would stringify it — an allocation per query).
    pub fn scope_key(&self, spec: &DomainSpec) -> DomainScopeKey {
        let name = spec.name.to_string();
        DomainScopeKey {
            scope: SeedMixer::new(self.seed).mix_str("scope").mix_str(&name),
            churn: SeedMixer::new(self.seed).mix_str("churn").mix_str(&name),
            supports_ecs: spec.supports_ecs,
            scope_len_range: spec.scope_len_range,
        }
    }

    /// The **base scope** the authoritative assigns for queries whose
    /// ECS address falls at `addr` — what a patient pre-scan learns.
    /// `None` if the domain does not support ECS.
    pub fn base_scope(&self, spec: &DomainSpec, addr: u32) -> Option<Prefix> {
        self.base_scope_keyed(&self.scope_key(spec), addr)
    }

    /// [`Authoritatives::base_scope`] from a pre-mixed key
    /// (allocation-free; identical results by construction).
    pub fn base_scope_keyed(&self, key: &DomainScopeKey, addr: u32) -> Option<Prefix> {
        if !key.supports_ecs {
            return None;
        }
        let region = addr >> 16; // scope policy varies per /16 region
        let h = key.scope.mix(u64::from(region)).finish();
        if unit(h) < SCOPE_ZERO_PROB {
            return Some(Prefix::DEFAULT);
        }
        let (lo, hi) = key.scope_len_range;
        let span = u64::from(hi - lo) + 1;
        let mut len = lo + (SeedMixer::new(h).mix(1).finish() % span) as u8;
        // Align to the routing aggregate: never coarser than the
        // announced prefix containing the address.
        if let Some(announced) = self.announced_len(addr) {
            len = len.max(announced);
        }
        Some(Prefix::new(addr, len).expect("len <= 32 by catalog construction"))
    }

    /// The scope actually attached to a response at time `t` — the base
    /// scope, with occasional churn per Table 2's magnitudes. Churn is
    /// keyed by (domain, /24, 6-hour bucket) so it is consistent for
    /// nearby queries but drifts over the measurement window.
    pub fn response_scope(&self, spec: &DomainSpec, addr: u32, t: SimTime) -> Option<Prefix> {
        self.response_scope_keyed(&self.scope_key(spec), addr, t)
    }

    /// [`Authoritatives::response_scope`] from a pre-mixed key
    /// (allocation-free; identical results by construction).
    pub fn response_scope_keyed(
        &self,
        key: &DomainScopeKey,
        addr: u32,
        t: SimTime,
    ) -> Option<Prefix> {
        let base = self.base_scope_keyed(key, addr)?;
        if base.is_default() {
            return Some(base); // scope-0 regions stay scope 0
        }
        let bucket = t.as_millis() / (6 * 3_600_000);
        let h = key.churn.mix(u64::from(addr >> 8)).mix(bucket).finish();
        let u = unit(h);
        let delta: i8 = if u < CHURN_BEYOND_4 {
            5 + (h % 3) as i8 // 5..=7
        } else if u < CHURN_BEYOND_4 + CHURN_WITHIN_4 {
            3 + (h % 2) as i8 // 3..=4
        } else if u < CHURN_BEYOND_4 + CHURN_WITHIN_4 + CHURN_WITHIN_2 {
            1 + (h % 2) as i8 // 1..=2
        } else {
            0
        };
        if delta == 0 {
            return Some(base);
        }
        let sign: i8 = if (h >> 32) & 1 == 0 { -1 } else { 1 };
        let mut len = (base.len() as i8 + sign * delta).clamp(8, 24) as u8;
        // Churn stays aligned to the routing aggregate too.
        if let Some(announced) = self.announced_len(addr) {
            len = len.max(announced);
        }
        Some(Prefix::new(addr, len).expect("clamped to <= 24"))
    }

    /// Serves an authoritative answer for `name` with optional ECS.
    ///
    /// The answer's A record is a stable function of the domain (one
    /// virtual IP per service — enough for the pipeline, which never
    /// connects to it).
    pub fn answer(
        &self,
        catalog: &DomainCatalog,
        name: &DomainName,
        ecs: Option<Prefix>,
        t: SimTime,
    ) -> Option<ScopedAnswer> {
        let spec = catalog.get(name)?;
        let vip = 0x60_00_00_00
            | (SeedMixer::new(self.seed)
                .mix_str("vip")
                .mix_str(&spec.name.to_string())
                .finish() as u32
                & 0x00FF_FFFF);
        let records = vec![Record::a(spec.name.clone(), spec.ttl_secs, vip)];
        let scope = match (spec.supports_ecs, ecs) {
            (true, Some(source)) => self.response_scope(spec, source.addr(), t),
            _ => None,
        };
        Some(ScopedAnswer { records, scope })
    }

    /// The TTL for a domain (convenience passthrough).
    pub fn ttl(&self, spec: &DomainSpec) -> u32 {
        spec.ttl_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::DomainCatalog;

    fn setup() -> (Authoritatives, DomainCatalog) {
        (Authoritatives::without_rib(77), DomainCatalog::standard())
    }

    fn google(cat: &DomainCatalog) -> &DomainSpec {
        cat.get(&"www.google.com".parse().unwrap()).unwrap()
    }

    #[test]
    fn base_scope_respects_catalog_range() {
        let (auth, cat) = setup();
        let wiki = cat.get(&"www.wikipedia.org".parse().unwrap()).unwrap();
        let g = google(&cat);
        let mut zero = 0;
        for i in 0..2000u32 {
            let addr = i << 16 | 0x1200;
            let ws = auth.base_scope(wiki, addr).unwrap();
            let gs = auth.base_scope(g, addr).unwrap();
            if ws.is_default() {
                zero += 1;
            } else {
                assert!((16..=18).contains(&ws.len()), "wiki scope {}", ws.len());
            }
            if !gs.is_default() {
                assert!((20..=24).contains(&gs.len()), "google scope {}", gs.len());
            }
        }
        // ~2% scope-0 regions.
        assert!((10..120).contains(&zero), "scope-0 count {zero}");
    }

    #[test]
    fn base_scope_stable_within_region() {
        let (auth, cat) = setup();
        let g = google(&cat);
        let a = auth.base_scope(g, 0x0A01_0200).unwrap();
        let b = auth.base_scope(g, 0x0A01_FF00).unwrap(); // same /16
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn non_ecs_domains_have_no_scope() {
        let (auth, cat) = setup();
        let amazon = cat.get(&"www.amazon.com".parse().unwrap()).unwrap();
        assert!(auth.base_scope(amazon, 0x0A010200).is_none());
    }

    #[test]
    fn churn_matches_table2_magnitudes() {
        let (auth, cat) = setup();
        let g = google(&cat);
        let mut exact = 0u32;
        let mut within2 = 0u32;
        let mut within4 = 0u32;
        let mut total = 0u32;
        for i in 0..4000u32 {
            let addr = (i * 7919) << 8;
            let Some(base) = auth.base_scope(g, addr) else {
                continue;
            };
            if base.is_default() {
                continue;
            }
            // Sample several time buckets.
            for hour in [0u64, 7, 13, 26, 50, 99] {
                let resp = auth
                    .response_scope(g, addr, SimTime::from_hours(hour))
                    .unwrap();
                let d = (i16::from(resp.len()) - i16::from(base.len())).unsigned_abs();
                total += 1;
                if d == 0 {
                    exact += 1;
                }
                if d <= 2 {
                    within2 += 1;
                }
                if d <= 4 {
                    within4 += 1;
                }
            }
        }
        let e = f64::from(exact) / f64::from(total);
        let w2 = f64::from(within2) / f64::from(total);
        let w4 = f64::from(within4) / f64::from(total);
        assert!((0.93..0.97).contains(&e), "exact {e}");
        assert!((0.965..0.995).contains(&w2), "within2 {w2}");
        assert!(w4 > 0.98, "within4 {w4}");
    }

    #[test]
    fn answer_carries_scope_and_ttl() {
        let (auth, cat) = setup();
        let name: DomainName = "www.google.com".parse().unwrap();
        let ecs: Prefix = "9.9.9.0/24".parse().unwrap();
        let ans = auth
            .answer(&cat, &name, Some(ecs), SimTime::ZERO)
            .expect("catalog domain");
        assert_eq!(ans.records[0].ttl, 300);
        let scope = ans.scope.expect("google answers with ECS scope");
        assert!(scope.is_default() || scope.contains(ecs) || ecs.contains(scope));
        // Without ECS in the query, no scope in the answer.
        let plain = auth.answer(&cat, &name, None, SimTime::ZERO).unwrap();
        assert!(plain.scope.is_none());
        // Unknown domains: no answer.
        assert!(auth
            .answer(
                &cat,
                &"nonexistent.example".parse().unwrap(),
                None,
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn answers_deterministic() {
        let (auth, cat) = setup();
        let name: DomainName = "facebook.com".parse().unwrap();
        let ecs: Prefix = "11.22.33.0/24".parse().unwrap();
        let a = auth
            .answer(&cat, &name, Some(ecs), SimTime::from_hours(3))
            .unwrap();
        let b = auth
            .answer(&cat, &name, Some(ecs), SimTime::from_hours(3))
            .unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.scope, b.scope);
    }
}
