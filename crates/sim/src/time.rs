//! Simulated time.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, stored as milliseconds since the start of
/// the measurement epoch. Conversion helpers keep the rest of the code
/// free of unit confusion (rates are per *second*, caches expire in
/// *milliseconds*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> SimTime {
        SimTime(h * 3_600_000)
    }

    /// From fractional seconds (saturating at 0 for negatives).
    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime((s.max(0.0) * 1000.0).round() as u64)
    }

    /// Milliseconds since epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since epoch, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The day index (0-based) this instant falls in.
    pub const fn day(self) -> u64 {
        self.0 / 86_400_000
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / 1000;
        write!(
            f,
            "{:02}:{:02}:{:02}.{:03}",
            s / 3600,
            (s / 60) % 60,
            s % 60,
            self.0 % 1000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_hours(1).as_secs_f64(), 3600.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_hours(25).day(), 1);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!((a - b).as_millis(), 6000);
        assert_eq!((b - a), SimTime::ZERO);
        assert_eq!((a + b).as_millis(), 14_000);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(3_725_042).to_string(), "01:02:05.042");
    }
}
