//! Property tests for the geolocation substrate.

use clientmap_geo::{CountryCode, GeoAccuracyModel, GeoDbBuilder, PrefixKind};
use clientmap_net::{GeoCoord, Prefix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_coord() -> impl Strategy<Value = GeoCoord> {
    (-85.0f64..85.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoCoord::new(lat, lon).unwrap())
}

proptest! {
    /// Haversine is a metric (symmetry + triangle inequality, with
    /// floating-point slack) and destination() is its inverse on range.
    #[test]
    fn distance_metric_properties(a in arb_coord(), b in arb_coord(), c in arb_coord()) {
        let ab = a.distance_km(&b);
        let ba = b.distance_km(&a);
        prop_assert!((ab - ba).abs() < 1e-9);
        let ac = a.distance_km(&c);
        let cb = c.distance_km(&b);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle violated: {ab} > {ac}+{cb}");
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn destination_inverts_distance(start in arb_coord(), bearing in 0.0f64..360.0, d in 0.1f64..5000.0) {
        let dest = start.destination(bearing, d);
        let got = start.distance_km(&dest);
        prop_assert!((got - d).abs() < 1.0, "wanted {d}, got {got}");
    }

    /// The geo DB answers exactly the prefixes it covers, eyeball
    /// entries stay within the model's displacement bound, and the
    /// country survives perturbation for eyeballs.
    #[test]
    fn geodb_lookup_and_eyeball_bounds(
        blocks in prop::collection::vec((any::<u32>(), 16u8..=24, arb_coord()), 1..12),
        probe_addr in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let us: CountryCode = "US".parse().unwrap();
        let mut builder = GeoDbBuilder::new();
        let mut prefixes: Vec<(Prefix, GeoCoord)> = Vec::new();
        for (addr, len, coord) in blocks {
            let p = Prefix::new(addr, len).unwrap();
            // Skip overlapping inserts to keep expectations unambiguous.
            if prefixes.iter().any(|(q, _)| q.overlaps(p)) {
                continue;
            }
            builder.add(p, coord, us, PrefixKind::Eyeball);
            prefixes.push((p, coord));
        }
        let model = GeoAccuracyModel::default();
        let db = builder.build(&model, &mut StdRng::seed_from_u64(seed));
        // Every inserted prefix answers, within the eyeball bound.
        for (p, truth) in &prefixes {
            let e = db.lookup(*p).expect("inserted prefix must answer");
            prop_assert!(
                truth.distance_km(&e.coord) <= model.eyeball_max_err_km + 1e-6,
                "eyeball displaced {} km", truth.distance_km(&e.coord)
            );
            prop_assert_eq!(e.country, us);
            prop_assert!(e.error_radius_km > 0.0);
        }
        // A random address answers iff covered.
        let covered = prefixes.iter().any(|(p, _)| p.contains_addr(probe_addr));
        prop_assert_eq!(db.lookup_addr(probe_addr).is_some(), covered);
    }
}
