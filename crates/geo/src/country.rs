//! ISO-3166-style two-letter country codes.

use std::fmt;
use std::str::FromStr;

/// A two-letter uppercase country code (e.g. `US`, `BR`).
///
/// ```
/// use clientmap_geo::CountryCode;
/// let us: CountryCode = "us".parse().unwrap();
/// assert_eq!(us.to_string(), "US");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Builds a code from two ASCII letters (any case).
    pub const fn new(a: u8, b: u8) -> CountryCode {
        CountryCode([a.to_ascii_uppercase(), b.to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("constructed from ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a country code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadCountryCode(pub String);

impl fmt::Display for BadCountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid country code: {:?}", self.0)
    }
}

impl std::error::Error for BadCountryCode {}

impl FromStr for CountryCode {
    type Err = BadCountryCode;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = s.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return Err(BadCountryCode(s.to_string()));
        }
        Ok(CountryCode::new(bytes[0], bytes[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_uppercase() {
        assert_eq!("br".parse::<CountryCode>().unwrap().as_str(), "BR");
        assert_eq!("US".parse::<CountryCode>().unwrap().as_str(), "US");
    }

    #[test]
    fn rejects_bad() {
        for s in ["", "U", "USA", "U1", "??"] {
            assert!(s.parse::<CountryCode>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn const_constructor() {
        const US: CountryCode = CountryCode::new(b'u', b's');
        assert_eq!(US.as_str(), "US");
    }
}
