//! The geolocation database simulator.
//!
//! [`GeoDbBuilder`] consumes ground-truth prefix locations from the
//! synthetic world and produces a [`GeoDb`] whose entries are perturbed
//! according to a [`GeoAccuracyModel`]: eyeball prefixes get small
//! errors and small reported error radii; infrastructure prefixes get
//! large errors, large radii, and occasionally the wrong country —
//! reproducing the documented asymmetry of commercial geolocation
//! databases that the paper's techniques both exploit (service-radius
//! calibration keeps only error radius < 200 km) and help diagnose
//! (knowing which prefixes host users tells you which geolocations to
//! trust).

use clientmap_net::{GeoCoord, Prefix, PrefixTrie};
use rand::Rng;

use crate::CountryCode;

/// What kind of network a prefix belongs to, for accuracy modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefixKind {
    /// End-user (eyeball) space: located well.
    Eyeball,
    /// Servers, CDN caches, routers, cloud: located poorly.
    Infrastructure,
}

/// One database entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoEntry {
    /// The database's belief about the prefix location.
    pub coord: GeoCoord,
    /// The database's self-reported error radius, km.
    pub error_radius_km: f64,
    /// The database's belief about the country.
    pub country: CountryCode,
}

/// Perturbation parameters for building a [`GeoDb`] from ground truth.
#[derive(Debug, Clone, Copy)]
pub struct GeoAccuracyModel {
    /// Maximum true placement error for eyeball prefixes, km.
    pub eyeball_max_err_km: f64,
    /// Maximum reported error radius for eyeball prefixes, km.
    pub eyeball_max_radius_km: f64,
    /// Maximum true placement error for infrastructure prefixes, km.
    pub infra_max_err_km: f64,
    /// Maximum reported error radius for infrastructure prefixes, km.
    pub infra_max_radius_km: f64,
    /// Probability an infrastructure prefix is assigned a *far* location
    /// (thousands of km off, typically a different country).
    pub infra_gross_error_prob: f64,
    /// Probability an eyeball entry reports a radius that *understates*
    /// the true error (databases are not honest about uncertainty).
    pub radius_understate_prob: f64,
}

impl Default for GeoAccuracyModel {
    fn default() -> Self {
        GeoAccuracyModel {
            eyeball_max_err_km: 60.0,
            eyeball_max_radius_km: 180.0,
            infra_max_err_km: 800.0,
            infra_max_radius_km: 1000.0,
            infra_gross_error_prob: 0.15,
            radius_understate_prob: 0.05,
        }
    }
}

/// Builder accumulating ground-truth locations.
#[derive(Debug, Default)]
pub struct GeoDbBuilder {
    entries: Vec<(Prefix, GeoCoord, CountryCode, PrefixKind)>,
}

impl GeoDbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GeoDbBuilder::default()
    }

    /// Registers the ground truth for a prefix.
    pub fn add(
        &mut self,
        prefix: Prefix,
        true_coord: GeoCoord,
        country: CountryCode,
        kind: PrefixKind,
    ) {
        self.entries.push((prefix, true_coord, country, kind));
    }

    /// Builds the database, perturbing each entry through `model` using
    /// the caller's RNG (deterministic under a seeded RNG).
    pub fn build<R: Rng>(self, model: &GeoAccuracyModel, rng: &mut R) -> GeoDb {
        let mut trie = PrefixTrie::new();
        for (prefix, truth, country, kind) in self.entries {
            let (max_err, max_radius) = match kind {
                PrefixKind::Eyeball => (model.eyeball_max_err_km, model.eyeball_max_radius_km),
                PrefixKind::Infrastructure => (model.infra_max_err_km, model.infra_max_radius_km),
            };
            let gross = kind == PrefixKind::Infrastructure
                && rng.gen_bool(model.infra_gross_error_prob.clamp(0.0, 1.0));
            let err_km = if gross {
                rng.gen_range(2000.0..8000.0)
            } else {
                rng.gen_range(0.0..max_err.max(f64::MIN_POSITIVE))
            };
            let bearing = rng.gen_range(0.0..360.0);
            let coord = truth.destination(bearing, err_km);
            // Reported radius: usually ≥ the actual displacement, with a
            // chance of understating it; gross errors report huge radii.
            let radius = if gross {
                rng.gen_range(1000.0..3000.0)
            } else if rng.gen_bool(model.radius_understate_prob.clamp(0.0, 1.0)) {
                rng.gen_range(1.0..(err_km.max(2.0)))
            } else {
                rng.gen_range(err_km..(err_km + max_radius).max(err_km + 1.0))
            };
            trie.insert(
                prefix,
                GeoEntry {
                    coord,
                    error_radius_km: radius,
                    country,
                },
            );
        }
        GeoDb { trie }
    }
}

/// The built database: longest-prefix-match lookups over entries.
#[derive(Debug)]
pub struct GeoDb {
    trie: PrefixTrie<GeoEntry>,
}

impl GeoDb {
    /// Looks up the entry covering `prefix` (most specific).
    pub fn lookup(&self, prefix: Prefix) -> Option<&GeoEntry> {
        self.trie.longest_match(prefix).map(|(_, e)| e)
    }

    /// Looks up the entry covering an address.
    pub fn lookup_addr(&self, addr: u32) -> Option<&GeoEntry> {
        self.trie.longest_match_addr(addr).map(|(_, e)| e)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Whether a prefix's entry reports an error radius below `km` —
    /// the paper's < 200 km filter for service-radius calibration.
    pub fn radius_below(&self, prefix: Prefix, km: f64) -> bool {
        self.lookup(prefix)
            .map(|e| e.error_radius_km < km)
            .unwrap_or(false)
    }

    /// Registers the database shape under `geodb.` in `m`: entry count
    /// plus a histogram of self-reported error radii (whole km) — the
    /// quantity that gates scope→PoP assignment downstream.
    pub fn register_metrics(&self, m: &clientmap_telemetry::MetricsRegistry) {
        m.counter("geodb.entries").add(self.len() as u64);
        let radii = m.histogram("geodb.error_radius_km");
        for (_, e) in self.trie.iter() {
            radii.record(e.error_radius_km.max(0.0).round() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn us() -> CountryCode {
        "US".parse().unwrap()
    }

    fn build_one(kind: PrefixKind, seed: u64) -> GeoEntry {
        let mut b = GeoDbBuilder::new();
        let truth = GeoCoord::new(40.0, -74.0).unwrap();
        b.add(p("10.1.2.0/24"), truth, us(), kind);
        let mut rng = StdRng::seed_from_u64(seed);
        let db = b.build(&GeoAccuracyModel::default(), &mut rng);
        *db.lookup(p("10.1.2.0/24")).unwrap()
    }

    #[test]
    fn eyeball_entries_stay_close() {
        let truth = GeoCoord::new(40.0, -74.0).unwrap();
        for seed in 0..50 {
            let e = build_one(PrefixKind::Eyeball, seed);
            let d = truth.distance_km(&e.coord);
            assert!(d <= 60.0 + 1e-6, "seed {seed}: eyeball displaced {d} km");
            assert_eq!(e.country, us());
        }
    }

    #[test]
    fn infrastructure_sometimes_grossly_wrong() {
        let truth = GeoCoord::new(40.0, -74.0).unwrap();
        let mut gross = 0;
        for seed in 0..200 {
            let e = build_one(PrefixKind::Infrastructure, seed);
            if truth.distance_km(&e.coord) > 1500.0 {
                gross += 1;
            }
        }
        // ~15% gross error rate; allow a wide band.
        assert!((10..80).contains(&gross), "gross count {gross}");
    }

    #[test]
    fn reported_radius_mostly_covers_truth() {
        let truth = GeoCoord::new(40.0, -74.0).unwrap();
        let mut covered = 0;
        let n = 200;
        for seed in 0..n {
            let e = build_one(PrefixKind::Eyeball, seed);
            if truth.distance_km(&e.coord) <= e.error_radius_km {
                covered += 1;
            }
        }
        assert!(covered as f64 >= 0.85 * n as f64, "covered {covered}/{n}");
    }

    #[test]
    fn lookup_uses_lpm() {
        let mut b = GeoDbBuilder::new();
        let c1 = GeoCoord::new(0.0, 0.0).unwrap();
        let c2 = GeoCoord::new(50.0, 50.0).unwrap();
        b.add(p("10.0.0.0/8"), c1, us(), PrefixKind::Eyeball);
        b.add(
            p("10.1.0.0/16"),
            c2,
            "BR".parse().unwrap(),
            PrefixKind::Eyeball,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let model = GeoAccuracyModel {
            eyeball_max_err_km: 0.001,
            ..GeoAccuracyModel::default()
        };
        let db = b.build(&model, &mut rng);
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.lookup(p("10.1.2.0/24")).unwrap().country,
            "BR".parse().unwrap()
        );
        assert_eq!(db.lookup(p("10.2.2.0/24")).unwrap().country, us());
        assert!(db.lookup(p("11.0.0.0/24")).is_none());
        assert!(db.lookup_addr(0x0A010203).is_some());
    }

    #[test]
    fn radius_filter() {
        let mut b = GeoDbBuilder::new();
        b.add(
            p("10.1.2.0/24"),
            GeoCoord::new(1.0, 1.0).unwrap(),
            us(),
            PrefixKind::Eyeball,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let db = b.build(&GeoAccuracyModel::default(), &mut rng);
        let e = db.lookup(p("10.1.2.0/24")).unwrap();
        assert!(db.radius_below(p("10.1.2.0/24"), e.error_radius_km + 1.0));
        assert!(!db.radius_below(p("10.1.2.0/24"), e.error_radius_km - 1.0));
        assert!(
            !db.radius_below(p("99.0.0.0/24"), 1e9),
            "missing prefix is never below"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let e1 = build_one(PrefixKind::Infrastructure, 42);
        let e2 = build_one(PrefixKind::Infrastructure, 42);
        assert_eq!(e1, e2);
    }

    #[test]
    fn register_metrics_reports_entry_shape() {
        let mut b = GeoDbBuilder::new();
        let c = GeoCoord::new(10.0, 20.0).unwrap();
        b.add(p("10.0.0.0/24"), c, us(), PrefixKind::Eyeball);
        b.add(p("10.0.1.0/24"), c, us(), PrefixKind::Infrastructure);
        let db = b.build(&GeoAccuracyModel::default(), &mut StdRng::seed_from_u64(9));
        let m = clientmap_telemetry::MetricsRegistry::new();
        db.register_metrics(&m);
        let snap = m.snapshot();
        assert_eq!(snap.counter("geodb.entries"), 2);
        assert_eq!(snap.histogram("geodb.error_radius_km").unwrap().count, 2);
    }
}
