//! # clientmap-geo
//!
//! A MaxMind-style IP geolocation database **simulator** and a static
//! catalog of world metro areas.
//!
//! The paper uses MaxMind twice:
//!
//! 1. to map each /24 to a location + **error radius**, keeping only
//!    prefixes with error radius < 200 km when calibrating per-PoP
//!    service radii (§3.1.1);
//! 2. implicitly relying on the fact that geolocation databases are
//!    accurate for *eyeball* prefixes and poor for *infrastructure*
//!    (§1 cites its ref. 16).
//!
//! [`GeoDb`] reproduces both properties: it is built from the synthetic
//! world's ground-truth prefix locations through an explicit
//! [`GeoAccuracyModel`] that perturbs eyeball prefixes a little and
//! infrastructure prefixes a lot (occasionally assigning the wrong
//! country), and it reports a per-entry error radius that bounds the
//! true location — mostly.

#![warn(missing_docs)]

mod country;
mod db;
mod metros;

pub use country::CountryCode;
pub use db::{GeoAccuracyModel, GeoDb, GeoDbBuilder, GeoEntry, PrefixKind};
pub use metros::{world_metros, Metro};
