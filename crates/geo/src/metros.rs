//! A static catalog of world metro areas.
//!
//! The synthetic world scatters eyeball prefixes around these
//! population centres so that geography-dependent results (Figure 1's
//! density map, Figure 2's service-radius CDFs, Figure 3's per-country
//! coverage) have realistic shape. Weights are rough metro populations
//! in millions — only their *relative* sizes matter.
//!
//! South America is deliberately well represented: the paper highlights
//! that cache-probing coverage is worse there (Figure 3), which in our
//! reproduction emerges from sparser PoP/vantage coverage of the region.

use clientmap_net::GeoCoord;

use crate::CountryCode;

/// One metro area.
#[derive(Debug, Clone, Copy)]
pub struct Metro {
    /// Human-readable name.
    pub name: &'static str,
    /// Country.
    pub country: CountryCode,
    /// Centre coordinate.
    pub coord: GeoCoord,
    /// Relative population weight (≈ metro population, millions).
    pub weight: f64,
}

const fn cc(a: u8, b: u8) -> CountryCode {
    CountryCode::new(a, b)
}

macro_rules! metro {
    ($name:literal, $a:literal $b:literal, $lat:literal, $lon:literal, $w:literal) => {
        Metro {
            name: $name,
            country: cc($a, $b),
            coord: GeoCoord {
                lat: $lat,
                lon: $lon,
            },
            weight: $w,
        }
    };
}

/// The catalog. Ordering is stable (tests rely on determinism, not on
/// any particular order).
static METROS: &[Metro] = &[
    // --- North America (US coasts dense, matching Figure 1's remark) ---
    metro!("New York", b'U' b'S', 40.7128, -74.0060, 19.5),
    metro!("Los Angeles", b'U' b'S', 34.0522, -118.2437, 13.2),
    metro!("Chicago", b'U' b'S', 41.8781, -87.6298, 9.5),
    metro!("Dallas", b'U' b'S', 32.7767, -96.7970, 7.6),
    metro!("Houston", b'U' b'S', 29.7604, -95.3698, 7.1),
    metro!("Washington DC", b'U' b'S', 38.9072, -77.0369, 6.3),
    metro!("Miami", b'U' b'S', 25.7617, -80.1918, 6.1),
    metro!("Atlanta", b'U' b'S', 33.7490, -84.3880, 6.0),
    metro!("San Francisco", b'U' b'S', 37.7749, -122.4194, 4.7),
    metro!("Seattle", b'U' b'S', 47.6062, -122.3321, 4.0),
    metro!("Denver", b'U' b'S', 39.7392, -104.9903, 3.0),
    metro!("Charleston SC", b'U' b'S', 32.7765, -79.9311, 0.8),
    metro!("The Dalles OR", b'U' b'S', 45.5946, -121.1787, 0.3),
    metro!("Toronto", b'C' b'A', 43.6532, -79.3832, 6.2),
    metro!("Montreal", b'C' b'A', 45.5017, -73.5673, 4.3),
    metro!("Vancouver", b'C' b'A', 49.2827, -123.1207, 2.6),
    metro!("Mexico City", b'M' b'X', 19.4326, -99.1332, 21.8),
    metro!("Guadalajara", b'M' b'X', 20.6597, -103.3496, 5.3),
    // --- South America ---
    metro!("Sao Paulo", b'B' b'R', -23.5505, -46.6333, 22.4),
    metro!("Rio de Janeiro", b'B' b'R', -22.9068, -43.1729, 13.6),
    metro!("Belo Horizonte", b'B' b'R', -19.9167, -43.9345, 6.0),
    metro!("Fortaleza", b'B' b'R', -3.7319, -38.5267, 4.1),
    metro!("Buenos Aires", b'A' b'R', -34.6037, -58.3816, 15.4),
    metro!("Cordoba", b'A' b'R', -31.4201, -64.1888, 1.6),
    metro!("Lima", b'P' b'E', -12.0464, -77.0428, 10.9),
    metro!("Bogota", b'C' b'O', 4.7110, -74.0721, 11.3),
    metro!("Medellin", b'C' b'O', 6.2476, -75.5658, 4.0),
    metro!("Santiago", b'C' b'L', -33.4489, -70.6693, 6.9),
    metro!("Caracas", b'V' b'E', 10.4806, -66.9036, 2.9),
    metro!("Quito", b'E' b'C', -0.1807, -78.4678, 2.0),
    metro!("Guayaquil", b'E' b'C', -2.1894, -79.8891, 3.1),
    metro!("La Paz", b'B' b'O', -16.4897, -68.1193, 1.9),
    metro!("Santa Cruz", b'B' b'O', -17.7833, -63.1821, 1.8),
    metro!("Asuncion", b'P' b'Y', -25.2637, -57.5759, 2.3),
    metro!("Montevideo", b'U' b'Y', -34.9011, -56.1645, 1.8),
    metro!("Paramaribo", b'S' b'R', 5.8520, -55.2038, 0.3),
    // --- Europe ---
    metro!("London", b'G' b'B', 51.5074, -0.1278, 14.3),
    metro!("Paris", b'F' b'R', 48.8566, 2.3522, 12.9),
    metro!("Berlin", b'D' b'E', 52.5200, 13.4050, 6.1),
    metro!("Frankfurt", b'D' b'E', 50.1109, 8.6821, 2.7),
    metro!("Madrid", b'E' b'S', 40.4168, -3.7038, 6.7),
    metro!("Barcelona", b'E' b'S', 41.3851, 2.1734, 5.6),
    metro!("Rome", b'I' b'T', 41.9028, 12.4964, 4.3),
    metro!("Milan", b'I' b'T', 45.4642, 9.1900, 4.9),
    metro!("Amsterdam", b'N' b'L', 52.3676, 4.9041, 2.9),
    metro!("Groningen", b'N' b'L', 53.2194, 6.5665, 0.4),
    metro!("Warsaw", b'P' b'L', 52.2297, 21.0122, 3.1),
    metro!("Stockholm", b'S' b'E', 59.3293, 18.0686, 2.4),
    metro!("Zurich", b'C' b'H', 47.3769, 8.5417, 1.4),
    metro!("Istanbul", b'T' b'R', 41.0082, 28.9784, 15.8),
    metro!("Moscow", b'R' b'U', 55.7558, 37.6173, 12.5),
    metro!("Kyiv", b'U' b'A', 50.4501, 30.5234, 3.0),
    // --- Africa & Middle East ---
    metro!("Lagos", b'N' b'G', 6.5244, 3.3792, 15.4),
    metro!("Cairo", b'E' b'G', 30.0444, 31.2357, 21.3),
    metro!("Johannesburg", b'Z' b'A', -26.2041, 28.0473, 6.0),
    metro!("Nairobi", b'K' b'E', -1.2921, 36.8219, 4.7),
    metro!("Dubai", b'A' b'E', 25.2048, 55.2708, 3.5),
    metro!("Tel Aviv", b'I' b'L', 32.0853, 34.7818, 4.2),
    // --- Asia ---
    metro!("Tokyo", b'J' b'P', 35.6762, 139.6503, 37.3),
    metro!("Osaka", b'J' b'P', 34.6937, 135.5023, 18.9),
    metro!("Seoul", b'K' b'R', 37.5665, 126.9780, 25.5),
    metro!("Beijing", b'C' b'N', 39.9042, 116.4074, 20.9),
    metro!("Shanghai", b'C' b'N', 31.2304, 121.4737, 27.0),
    metro!("Shenzhen", b'C' b'N', 22.5431, 114.0579, 12.9),
    metro!("Hong Kong", b'H' b'K', 22.3193, 114.1694, 7.5),
    metro!("Taipei", b'T' b'W', 25.0330, 121.5654, 7.0),
    metro!("Singapore", b'S' b'G', 1.3521, 103.8198, 5.9),
    metro!("Jakarta", b'I' b'D', -6.2088, 106.8456, 34.5),
    metro!("Manila", b'P' b'H', 14.5995, 120.9842, 14.2),
    metro!("Bangkok", b'T' b'H', 13.7563, 100.5018, 10.7),
    metro!("Ho Chi Minh City", b'V' b'N', 10.8231, 106.6297, 9.0),
    metro!("Mumbai", b'I' b'N', 19.0760, 72.8777, 20.7),
    metro!("Delhi", b'I' b'N', 28.7041, 77.1025, 31.2),
    metro!("Bangalore", b'I' b'N', 12.9716, 77.5946, 13.2),
    metro!("Chennai", b'I' b'N', 13.0827, 80.2707, 11.2),
    metro!("Karachi", b'P' b'K', 24.8607, 67.0011, 16.5),
    metro!("Dhaka", b'B' b'D', 23.8103, 90.4125, 22.5),
    // --- Oceania ---
    metro!("Sydney", b'A' b'U', -33.8688, 151.2093, 5.4),
    metro!("Melbourne", b'A' b'U', -37.8136, 144.9631, 5.2),
    metro!("Auckland", b'N' b'Z', -36.8509, 174.7645, 1.7),
];

/// The full metro catalog.
pub fn world_metros() -> &'static [Metro] {
    METROS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_valid() {
        let metros = world_metros();
        assert!(metros.len() >= 70);
        for m in metros {
            assert!((-90.0..=90.0).contains(&m.coord.lat), "{}", m.name);
            assert!((-180.0..=180.0).contains(&m.coord.lon), "{}", m.name);
            assert!(m.weight > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn covers_all_continent_groups() {
        let metros = world_metros();
        for code in [
            "US", "BR", "GB", "CN", "IN", "NG", "AU", "SR", "BO", "PY", "UY",
        ] {
            let c: CountryCode = code.parse().unwrap();
            assert!(metros.iter().any(|m| m.country == c), "no metro in {code}");
        }
    }

    #[test]
    fn south_america_well_represented() {
        let metros = world_metros();
        let sa = [
            "BR", "AR", "PE", "CO", "CL", "VE", "EC", "BO", "PY", "UY", "SR",
        ];
        let count = metros
            .iter()
            .filter(|m| sa.contains(&m.country.as_str()))
            .count();
        assert!(count >= 15, "only {count} South American metros");
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = world_metros().iter().map(|m| m.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
