//! # clientmap-fleet
//!
//! Distributed sweep sharding: a driver/worker fleet over TCP.
//!
//! One process (`clientmap driver`) prepares the sweep exactly as a
//! single-process run would — discovery, calibration, assignment, the
//! warm planner — then partitions the planner's live unit list into
//! deterministic contiguous shards and distributes them to N worker
//! processes (`clientmap worker`) over a length-prefixed, checksummed
//! TCP protocol ([`frame`]). Each worker prepares the *same* sweep
//! from the same `(seed, config)` — preparation is a pure function of
//! those — probes its assigned shards with the existing
//! `clientmap-par` executor and batched kernels, and streams back each
//! shard's delta encoded with the `SweepSnapshot` byte codec
//! ([`proto`]).
//!
//! The driver merges deltas in shard order
//! (`clientmap_cacheprobe::merge_shards`), making the merged report,
//! metrics snapshot, and snapshot file **byte-identical** to a
//! single-process run at any ⟨worker, thread⟩ combination. A worker
//! that disconnects or crashes mid-shard has its shard re-queued onto
//! the survivors ([`driver`]); a SIGINT on the driver drains in-flight
//! shards and tells workers to exit cleanly ([`shutdown`]).
//!
//! Fault-injected fleets run a second, driver-coordinated phase:
//! every shard result carries its per-PoP fault book, the driver's
//! merge folds the books into the *global* quarantine decision
//! (identical to a single-process sweep's, because the merged books
//! are), and the planned rescue units go back out to the surviving
//! workers as rescue shards over the same connections. Per-frame
//! socket deadlines bound every transport wait, idle gaps between
//! frames are explicitly healthy ([`frame::FrameRead::Idle`]), and a
//! fleet that loses every worker to deadline expiries reports a typed
//! timeout instead of a generic failure.

#![warn(missing_docs)]

pub mod driver;
pub mod frame;
pub mod proto;
pub mod shutdown;
pub mod worker;

pub use driver::{FleetOptions, FleetSweep};
pub use frame::{
    read_frame, read_frame_deadline, read_frame_opt, write_frame, Frame, FrameError, FrameKind,
    FrameRead, WireKind, MAX_FRAME_PAYLOAD,
};
pub use proto::{
    decode_fault_book, decode_rescue_request, decode_rescue_result, decode_shard_result,
    encode_fault_book, encode_rescue_request, encode_rescue_result, encode_shard_result,
    shard_range, JobAck, JobSpec, PROTOCOL_VERSION,
};
pub use worker::{run_worker, WorkerOptions};
