//! Graceful-shutdown flag for the fleet driver.
//!
//! A SIGINT (ctrl-c) on the driver must not leave workers wedged on a
//! half-written socket: the driver checks [`requested`] between shard
//! dispatches, drains whatever is in flight, sends every live worker a
//! `Shutdown` frame, and exits with the conventional 130. The handler
//! itself only stores a relaxed atomic — the one operation that is
//! async-signal-safe — and everything else happens on the normal
//! control path.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown has been requested (by signal or [`trigger`]).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Requests a shutdown programmatically (tests, or non-unix builds).
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Resets the flag — test isolation only.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
unsafe extern "C" fn on_sigint(_sig: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs the SIGINT handler. Call once, early, on the driver. No-op
/// off unix.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        // std links the platform libc already; declaring `signal`
        // directly avoids a dependency the build image doesn't have.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_flips_the_flag() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
    }
}
