//! Frame payloads: the job handshake and shard partitioning.
//!
//! A job names the sweep by `(scale, seed, probing knobs, prior
//! snapshot)` — the worker rebuilds the *same* world and prep from
//! those (preparation is a pure function of them) rather than
//! shipping the world over the wire. The driver's config digest rides
//! along, and the worker's ack echoes its own digest and unit count,
//! so a version or configuration skew between binaries is caught at
//! the handshake, never as a corrupt merge.

use clientmap_cacheprobe::{PopHealth, ProbeUnit};
use clientmap_core::PipelineConfig;
use clientmap_faults::{FaultConfig, FaultProfile};
use clientmap_net::Prefix;
use clientmap_store::{ByteReader, ByteWriter, CodecError, SweepSnapshot};

/// Bumped whenever the frame layout or payload encodings change; a
/// worker refuses a job from a different protocol version.
/// Version 2 added fault injection to the job spec, per-PoP fault
/// books on shard results, and the rescue request/result frames.
/// Version 3 added the clustered-planner knobs to the job spec —
/// driver and workers must cluster identically or the shard handshake
/// would pass while the planned unit lists silently diverged.
pub const PROTOCOL_VERSION: u32 = 3;

/// driver → worker: everything needed to rebuild the sweep and its
/// prep deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// World scale preset (`tiny`, `small`, `paper`).
    pub scale: String,
    /// World seed.
    pub seed: u64,
    /// Probing-window length in (sim) hours.
    pub duration_hours: f64,
    /// Warm-start expiry budget (fraction of scopes refreshed).
    pub expiry_budget: f64,
    /// Whether the batched probe kernels are enabled.
    pub batched_probing: bool,
    /// Batch arena size for the batched kernels.
    pub batch_size: u64,
    /// Whether the clustered predictive planner is enabled.
    pub clustered_probing: bool,
    /// Greedy clustering radius in feature-distance units.
    pub cluster_epsilon: f64,
    /// Escalation floor on the `0..=1` confidence scale.
    pub cluster_escalate_below: f64,
    /// How many shards the driver partitioned the unit list into.
    pub num_shards: u32,
    /// The driver's config digest, for handshake validation.
    pub config_digest: u64,
    /// Fault-injection profile and seed — workers rebuild the same
    /// fault plan so their shard probes fail exactly where the
    /// single-process sweep's would.
    pub faults: FaultConfig,
    /// Encoded prior [`SweepSnapshot`] for warm fleet sweeps.
    pub prior: Option<Vec<u8>>,
}

impl JobSpec {
    /// Encodes the spec (with trailing checksum) as a Job payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(PROTOCOL_VERSION);
        w.str(&self.scale);
        w.u64(self.seed);
        w.u64(self.duration_hours.to_bits());
        w.u64(self.expiry_budget.to_bits());
        w.u8(u8::from(self.batched_probing));
        w.u64(self.batch_size);
        w.u8(u8::from(self.clustered_probing));
        w.u64(self.cluster_epsilon.to_bits());
        w.u64(self.cluster_escalate_below.to_bits());
        w.u32(self.num_shards);
        w.u64(self.config_digest);
        w.str(self.faults.profile.as_str());
        w.u64(self.faults.fault_seed);
        match &self.prior {
            None => w.u8(0),
            Some(bytes) => {
                w.u8(1);
                w.u32(bytes.len() as u32);
                w.bytes(bytes);
            }
        }
        w.finish()
    }

    /// Decodes a Job payload, verifying the checksum and protocol
    /// version.
    pub fn decode(bytes: &[u8]) -> Result<JobSpec, CodecError> {
        let mut r = ByteReader::verified(bytes)?;
        let version = r.u32()?;
        if version != PROTOCOL_VERSION {
            return Err(CodecError::BadVersion(version as u16));
        }
        let scale = r.str()?;
        let seed = r.u64()?;
        let duration_hours = f64::from_bits(r.u64()?);
        let expiry_budget = f64::from_bits(r.u64()?);
        let batched_probing = r.u8()? != 0;
        let batch_size = r.u64()?;
        let clustered_probing = r.u8()? != 0;
        let cluster_epsilon = f64::from_bits(r.u64()?);
        let cluster_escalate_below = f64::from_bits(r.u64()?);
        let num_shards = r.u32()?;
        let config_digest = r.u64()?;
        let profile: FaultProfile = r
            .str()?
            .parse()
            .map_err(|_| CodecError::Malformed("unknown fault profile"))?;
        let faults = FaultConfig::profile(profile, r.u64()?);
        let prior = match r.u8()? {
            0 => None,
            _ => {
                let len = r.u32()? as usize;
                Some(r.raw(len)?.to_vec())
            }
        };
        r.expect_done()?;
        Ok(JobSpec {
            scale,
            seed,
            duration_hours,
            expiry_budget,
            batched_probing,
            batch_size,
            clustered_probing,
            cluster_epsilon,
            cluster_escalate_below,
            num_shards,
            config_digest,
            faults,
            prior,
        })
    }

    /// The pipeline configuration this job describes — the same
    /// mapping the CLI's `--scale`/`--seed` flags use, with the
    /// probing knobs and fault plan overridden from the spec.
    pub fn config(&self) -> PipelineConfig {
        let mut config = match self.scale.as_str() {
            "paper" => PipelineConfig::paper_scale(self.seed),
            "small" => PipelineConfig::small(self.seed),
            _ => PipelineConfig::tiny(self.seed),
        };
        config.faults = self.faults;
        config.probe.duration_hours = self.duration_hours;
        config.probe.expiry_budget = self.expiry_budget;
        config.probe.batched_probing = self.batched_probing;
        config.probe.batch_size = self.batch_size as usize;
        config.probe.clustered_probing = self.clustered_probing;
        config.probe.cluster_epsilon = self.cluster_epsilon;
        config.probe.cluster_escalate_below = self.cluster_escalate_below;
        config
    }

    /// Decodes the job's prior snapshot, if any.
    pub fn prior_snapshot(&self) -> Result<Option<SweepSnapshot>, CodecError> {
        self.prior.as_deref().map(SweepSnapshot::decode).transpose()
    }
}

/// worker → driver: the worker rebuilt the sweep and is ready for
/// shard requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobAck {
    /// Units in the worker's prepared sweep (must match the driver's).
    pub num_units: u64,
    /// The worker's own config digest (must match the driver's).
    pub config_digest: u64,
    /// The worker's world seed.
    pub world_seed: u64,
    /// Whether the worker's warm plan skipped everything.
    pub warm_full_skip: bool,
}

impl JobAck {
    /// Encodes the ack (with trailing checksum) as a JobAck payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.num_units);
        w.u64(self.config_digest);
        w.u64(self.world_seed);
        w.u8(u8::from(self.warm_full_skip));
        w.finish()
    }

    /// Decodes a JobAck payload.
    pub fn decode(bytes: &[u8]) -> Result<JobAck, CodecError> {
        let mut r = ByteReader::verified(bytes)?;
        let ack = JobAck {
            num_units: r.u64()?,
            config_digest: r.u64()?,
            world_seed: r.u64()?,
            warm_full_skip: r.u8()? != 0,
        };
        r.expect_done()?;
        Ok(ack)
    }
}

/// The deterministic shard partition: contiguous ranges over the unit
/// list, sizes differing by at most one (the remainder spread over the
/// first shards). Every ⟨unit count, shard count⟩ pair yields the same
/// partition in every process — the invariant that lets workers probe
/// shards the driver never sent them explicitly.
pub fn shard_range(num_units: usize, num_shards: u32, shard: u32) -> std::ops::Range<usize> {
    let k = (num_shards as usize).max(1);
    let s = (shard as usize).min(k - 1);
    let base = num_units / k;
    let extra = num_units % k;
    let start = s * base + s.min(extra);
    let len = base + usize::from(s < extra);
    start..(start + len).min(num_units)
}

/// Encodes a shard's per-PoP fault book as a standalone checksummed
/// record: entry count, then `(pop, attempts, drops, tripped)` per
/// entry. Fault-free shards encode an empty book (a fixed 12-byte
/// blob), so the wire cost of the fault machinery is near zero when
/// it's off.
pub fn encode_fault_book(book: &[PopHealth]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(book.len() as u32);
    for h in book {
        w.u32(h.pop as u32);
        w.u64(h.attempts);
        w.u64(h.drops);
        w.u8(u8::from(h.tripped));
    }
    w.finish()
}

/// Decodes a checksummed fault book.
pub fn decode_fault_book(bytes: &[u8]) -> Result<Vec<PopHealth>, CodecError> {
    let mut r = ByteReader::verified(bytes)?;
    let n = r.u32()? as usize;
    let mut book = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        book.push(PopHealth {
            pop: r.u32()? as usize,
            attempts: r.u64()?,
            drops: r.u64()?,
            tripped: r.u8()? != 0,
        });
    }
    r.expect_done()?;
    Ok(book)
}

/// Encodes a ShardResult payload: shard id, the shard's fault book
/// (length-prefixed), then the delta snapshot's own checksummed
/// encoding.
pub fn encode_shard_result(shard: u32, delta: &SweepSnapshot, book: &[PopHealth]) -> Vec<u8> {
    let mut out = shard.to_le_bytes().to_vec();
    let book = encode_fault_book(book);
    out.extend_from_slice(&(book.len() as u32).to_le_bytes());
    out.extend_from_slice(&book);
    out.extend_from_slice(&delta.encode());
    out
}

/// Decodes a ShardResult payload back into `(shard id, delta, fault
/// book)`.
pub fn decode_shard_result(
    payload: &[u8],
) -> Result<(u32, SweepSnapshot, Vec<PopHealth>), CodecError> {
    if payload.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let shard = u32::from_le_bytes(payload[..4].try_into().expect("4-byte shard id"));
    let book_len = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte book len")) as usize;
    let rest = &payload[8..];
    if rest.len() < book_len {
        return Err(CodecError::Truncated);
    }
    let (book, delta) = rest.split_at(book_len);
    Ok((
        shard,
        SweepSnapshot::decode(delta)?,
        decode_fault_book(book)?,
    ))
}

/// Encodes a RescueRequest payload: the rescue shard id and the
/// driver-planned rescue units that shard covers, as one checksummed
/// record.
pub fn encode_rescue_request(shard: u32, units: &[ProbeUnit]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(shard);
    w.u32(units.len() as u32);
    for u in units {
        w.u32(u.bound_idx as u32);
        w.u32(u.domain as u32);
        w.u32(u.scopes.len() as u32);
        for s in &u.scopes {
            w.u32(s.addr());
            w.u8(s.len());
        }
    }
    w.finish()
}

/// Decodes a RescueRequest payload back into `(shard id, units)`.
/// Index validity (vantage and domain in the prep's range) is the
/// *worker's* check — the codec only guarantees well-formed prefixes.
pub fn decode_rescue_request(bytes: &[u8]) -> Result<(u32, Vec<ProbeUnit>), CodecError> {
    let mut r = ByteReader::verified(bytes)?;
    let shard = r.u32()?;
    let n = r.u32()? as usize;
    let mut units = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let bound_idx = r.u32()? as usize;
        let domain = r.u32()? as usize;
        let k = r.u32()? as usize;
        let mut scopes = Vec::with_capacity(k.min(65536));
        for _ in 0..k {
            let addr = r.u32()?;
            let len = r.u8()?;
            scopes.push(Prefix::new(addr, len).map_err(|_| CodecError::Malformed("bad prefix"))?);
        }
        units.push(ProbeUnit {
            bound_idx,
            domain,
            scopes,
        });
    }
    r.expect_done()?;
    Ok((shard, units))
}

/// Encodes a RescueResult payload: rescue shard id, then the delta
/// snapshot's own checksummed encoding (no fault book — the rescue
/// phase runs after quarantine is already decided).
pub fn encode_rescue_result(shard: u32, delta: &SweepSnapshot) -> Vec<u8> {
    let mut out = shard.to_le_bytes().to_vec();
    out.extend_from_slice(&delta.encode());
    out
}

/// Decodes a RescueResult payload back into `(shard id, delta)`.
pub fn decode_rescue_result(payload: &[u8]) -> Result<(u32, SweepSnapshot), CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let (id, rest) = payload.split_at(4);
    let shard = u32::from_le_bytes(id.try_into().expect("4-byte shard id"));
    Ok((shard, SweepSnapshot::decode(rest)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_unit_list() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for k in [1u32, 2, 3, 4, 7, 16] {
                let mut covered = 0;
                let mut expected_start = 0;
                for s in 0..k {
                    let r = shard_range(n, k, s);
                    assert_eq!(r.start, expected_start, "n={n} k={k} s={s}");
                    expected_start = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, n, "n={n} k={k}");
            }
        }
    }
}
