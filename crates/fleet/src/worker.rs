//! The fleet worker: a TCP server that rebuilds a sweep from a
//! [`JobSpec`], then answers shard requests with checksummed deltas.
//!
//! The worker never sees the driver's world over the wire — it
//! regenerates the same world and runs the same preparation from the
//! job's `(scale, seed, probing knobs, prior)`, which is what makes a
//! shard delta mergeable byte-for-byte. The handshake cross-checks the
//! config digest and unit count, so a skewed binary or configuration
//! fails loudly at job time instead of corrupting a merge.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use clientmap_cacheprobe::{prepare_sweep, probe_rescue_shard, probe_shard, SweepPrep};
use clientmap_core::PipelineConfig;
use clientmap_net::Prefix;
use clientmap_sim::Sim;
use clientmap_telemetry::MetricsRegistry;
use clientmap_world::World;

use crate::frame::{read_frame_deadline, write_frame, Frame, FrameKind, FrameRead};
use crate::proto::{
    decode_rescue_request, encode_rescue_result, encode_shard_result, shard_range, JobAck, JobSpec,
};

/// How a worker process runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Address to listen on (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Exit after serving one driver connection (tests, benches).
    pub once: bool,
    /// Deterministic crash injection: serve this many shard requests,
    /// then exit the process without replying to the next one — the
    /// chaos lever for the driver's re-queue path.
    pub fail_after: Option<u32>,
    /// Per-frame socket deadline. A driver that goes silent *between*
    /// frames is fine (it may be merging, or waiting on other
    /// workers); one that stalls *mid-frame* for this long is dropped.
    pub io_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            listen: "127.0.0.1:0".into(),
            once: false,
            fail_after: None,
            io_timeout: Duration::from_secs(600),
        }
    }
}

/// A prepared job: the worker-side sweep, paused before probing.
struct JobState {
    config: PipelineConfig,
    sim: Sim,
    prep: SweepPrep,
    num_shards: u32,
}

fn build_job(spec: &JobSpec) -> Result<JobState, String> {
    let config = spec.config();
    let world = World::generate(config.world.clone());
    let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
    if universe.is_empty() {
        return Err("generated world has no announced blocks to probe".into());
    }
    let metrics = Arc::new(MetricsRegistry::new());
    let mut sim = Sim::with_faults(world, Arc::clone(&metrics), &config.faults);
    let prior = spec
        .prior_snapshot()
        .map_err(|e| format!("prior snapshot unusable: {e}"))?;
    let prep = prepare_sweep(
        &mut sim,
        &config.probe,
        &universe,
        &mut Vec::new(),
        prior.as_ref(),
    );
    if prep.config_digest() != spec.config_digest {
        return Err(format!(
            "config digest mismatch: driver {:#x}, worker {:#x} \
             (binary or configuration skew)",
            spec.config_digest,
            prep.config_digest()
        ));
    }
    if spec.num_shards == 0 {
        return Err("job with zero shards".into());
    }
    Ok(JobState {
        config,
        sim,
        prep,
        num_shards: spec.num_shards,
    })
}

fn serve_connection(stream: TcpStream, opts: &WorkerOptions) -> std::io::Result<()> {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    stream.set_read_timeout(Some(opts.io_timeout)).ok();
    stream.set_write_timeout(Some(opts.io_timeout)).ok();
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut job: Option<JobState> = None;
    let mut served: u32 = 0;

    loop {
        let frame = match read_frame_deadline(&mut reader) {
            Ok(FrameRead::Frame(f)) => f,
            // Clean EOF: the driver hung up (e.g. it was interrupted
            // after draining) — not an error.
            Ok(FrameRead::Eof) => return Ok(()),
            // Idle deadline between frames: the driver is merging or
            // waiting on other workers. Keep listening.
            Ok(FrameRead::Idle) => continue,
            Err(e) => return Err(std::io::Error::other(e.to_string())),
        };
        match frame.kind {
            FrameKind::Job => {
                let reply = JobSpec::decode(&frame.payload)
                    .map_err(|e| format!("bad job payload: {e}"))
                    .and_then(|spec| build_job(&spec));
                match reply {
                    Ok(state) => {
                        let ack = JobAck {
                            num_units: state.prep.num_units() as u64,
                            config_digest: state.prep.config_digest(),
                            world_seed: state.prep.world_seed(),
                            warm_full_skip: state.prep.warm_full_skip(),
                        };
                        eprintln!(
                            "worker: job from {peer} accepted ({} units, {} shards)",
                            state.prep.num_units(),
                            state.num_shards
                        );
                        job = Some(state);
                        write_frame(&mut writer, &Frame::new(FrameKind::JobAck, ack.encode()))?;
                    }
                    Err(reason) => {
                        eprintln!("worker: job from {peer} refused: {reason}");
                        write_frame(
                            &mut writer,
                            &Frame::new(FrameKind::JobErr, reason.into_bytes()),
                        )?;
                    }
                }
            }
            FrameKind::ShardRequest => {
                let Some(state) = job.as_mut() else {
                    write_frame(
                        &mut writer,
                        &Frame::new(FrameKind::JobErr, b"shard request before job".to_vec()),
                    )?;
                    continue;
                };
                if frame.payload.len() != 4 {
                    write_frame(
                        &mut writer,
                        &Frame::new(FrameKind::JobErr, b"bad shard request payload".to_vec()),
                    )?;
                    continue;
                }
                let shard =
                    u32::from_le_bytes(frame.payload[..4].try_into().expect("4-byte shard id"));
                if opts.fail_after.is_some_and(|n| served >= n) {
                    // Chaos lever: die mid-request, leaving the driver
                    // with an in-flight shard to re-queue.
                    eprintln!("worker: injected crash before shard {shard}");
                    std::process::exit(17);
                }
                served += 1;
                let range = shard_range(state.prep.num_units(), state.num_shards, shard);
                eprintln!(
                    "worker: probing shard {shard} (units {}..{})",
                    range.start, range.end
                );
                let (delta, book) = probe_shard(
                    &mut state.sim,
                    &state.config.probe,
                    &state.prep,
                    range,
                    shard,
                );
                write_frame(
                    &mut writer,
                    &Frame::new(
                        FrameKind::ShardResult,
                        encode_shard_result(shard, &delta, &book),
                    ),
                )?;
            }
            FrameKind::RescueRequest => {
                let Some(state) = job.as_mut() else {
                    write_frame(
                        &mut writer,
                        &Frame::new(FrameKind::JobErr, b"rescue request before job".to_vec()),
                    )?;
                    continue;
                };
                if !state.prep.faulted() {
                    write_frame(
                        &mut writer,
                        &Frame::new(
                            FrameKind::JobErr,
                            b"rescue request on a fault-free job".to_vec(),
                        ),
                    )?;
                    continue;
                }
                let (shard, units) = match decode_rescue_request(&frame.payload) {
                    Ok(ok) => ok,
                    Err(e) => {
                        write_frame(
                            &mut writer,
                            &Frame::new(
                                FrameKind::JobErr,
                                format!("bad rescue request: {e}").into_bytes(),
                            ),
                        )?;
                        continue;
                    }
                };
                // Wire-decoded indices must land inside this prep —
                // anything else is a driver/worker skew, refused before
                // it can index out of bounds.
                if units.iter().any(|u| {
                    u.bound_idx >= state.prep.num_bound() || u.domain >= state.prep.num_domains()
                }) {
                    write_frame(
                        &mut writer,
                        &Frame::new(
                            FrameKind::JobErr,
                            b"rescue unit outside prepared sweep".to_vec(),
                        ),
                    )?;
                    continue;
                }
                if opts.fail_after.is_some_and(|n| served >= n) {
                    eprintln!("worker: injected crash before rescue shard {shard}");
                    std::process::exit(17);
                }
                served += 1;
                eprintln!(
                    "worker: probing rescue shard {shard} ({} units)",
                    units.len()
                );
                let delta = probe_rescue_shard(
                    &mut state.sim,
                    &state.config.probe,
                    &state.prep,
                    &units,
                    shard,
                );
                write_frame(
                    &mut writer,
                    &Frame::new(FrameKind::RescueResult, encode_rescue_result(shard, &delta)),
                )?;
            }
            FrameKind::Shutdown => {
                write_frame(&mut writer, &Frame::new(FrameKind::Bye, Vec::new()))?;
                return Ok(());
            }
            other => {
                return Err(std::io::Error::other(format!(
                    "unexpected frame {other:?} from driver"
                )));
            }
        }
    }
}

/// Runs the worker: binds `opts.listen`, announces the bound address
/// on stdout (`clientmap worker listening on <addr>` — scripts parse
/// this to discover ephemeral ports), and serves drivers until killed
/// (or after one connection with `opts.once`).
pub fn run_worker(opts: &WorkerOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.listen)?;
    let local = listener.local_addr()?;
    println!("clientmap worker listening on {local}");
    std::io::stdout().flush()?;

    for stream in listener.incoming() {
        let stream = stream?;
        if let Err(e) = serve_connection(stream, opts) {
            eprintln!("worker: connection failed: {e}");
        }
        if opts.once {
            break;
        }
    }
    Ok(())
}
