//! The fleet worker: a TCP server that rebuilds a sweep from a
//! [`JobSpec`], then answers shard requests with checksummed deltas.
//!
//! The worker never sees the driver's world over the wire — it
//! regenerates the same world and runs the same preparation from the
//! job's `(scale, seed, probing knobs, prior)`, which is what makes a
//! shard delta mergeable byte-for-byte. The handshake cross-checks the
//! config digest and unit count, so a skewed binary or configuration
//! fails loudly at job time instead of corrupting a merge.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use clientmap_cacheprobe::{prepare_sweep, probe_shard, SweepPrep};
use clientmap_core::PipelineConfig;
use clientmap_net::Prefix;
use clientmap_sim::Sim;
use clientmap_telemetry::MetricsRegistry;
use clientmap_world::World;

use crate::frame::{read_frame_opt, write_frame, Frame, FrameKind};
use crate::proto::{encode_shard_result, shard_range, JobAck, JobSpec};

/// How a worker process runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Address to listen on (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Exit after serving one driver connection (tests, benches).
    pub once: bool,
    /// Deterministic crash injection: serve this many shard requests,
    /// then exit the process without replying to the next one — the
    /// chaos lever for the driver's re-queue path.
    pub fail_after: Option<u32>,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            listen: "127.0.0.1:0".into(),
            once: false,
            fail_after: None,
        }
    }
}

/// A prepared job: the worker-side sweep, paused before probing.
struct JobState {
    config: PipelineConfig,
    sim: Sim,
    prep: SweepPrep,
    num_shards: u32,
}

fn build_job(spec: &JobSpec) -> Result<JobState, String> {
    let config = spec.config();
    let world = World::generate(config.world.clone());
    let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
    if universe.is_empty() {
        return Err("generated world has no announced blocks to probe".into());
    }
    let metrics = Arc::new(MetricsRegistry::new());
    let mut sim = Sim::with_faults(world, Arc::clone(&metrics), &config.faults);
    let prior = spec
        .prior_snapshot()
        .map_err(|e| format!("prior snapshot unusable: {e}"))?;
    let prep = prepare_sweep(
        &mut sim,
        &config.probe,
        &universe,
        &mut Vec::new(),
        prior.as_ref(),
    );
    if prep.config_digest() != spec.config_digest {
        return Err(format!(
            "config digest mismatch: driver {:#x}, worker {:#x} \
             (binary or configuration skew)",
            spec.config_digest,
            prep.config_digest()
        ));
    }
    if spec.num_shards == 0 {
        return Err("job with zero shards".into());
    }
    Ok(JobState {
        config,
        sim,
        prep,
        num_shards: spec.num_shards,
    })
}

fn serve_connection(stream: TcpStream, opts: &WorkerOptions) -> std::io::Result<()> {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut job: Option<JobState> = None;
    let mut served: u32 = 0;

    loop {
        let frame = match read_frame_opt(&mut reader) {
            Ok(Some(f)) => f,
            // Clean EOF: the driver hung up (e.g. it was interrupted
            // after draining) — not an error.
            Ok(None) => return Ok(()),
            Err(e) => return Err(std::io::Error::other(e.to_string())),
        };
        match frame.kind {
            FrameKind::Job => {
                let reply = JobSpec::decode(&frame.payload)
                    .map_err(|e| format!("bad job payload: {e}"))
                    .and_then(|spec| build_job(&spec));
                match reply {
                    Ok(state) => {
                        let ack = JobAck {
                            num_units: state.prep.num_units() as u64,
                            config_digest: state.prep.config_digest(),
                            world_seed: state.prep.world_seed(),
                            warm_full_skip: state.prep.warm_full_skip(),
                        };
                        eprintln!(
                            "worker: job from {peer} accepted ({} units, {} shards)",
                            state.prep.num_units(),
                            state.num_shards
                        );
                        job = Some(state);
                        write_frame(&mut writer, &Frame::new(FrameKind::JobAck, ack.encode()))?;
                    }
                    Err(reason) => {
                        eprintln!("worker: job from {peer} refused: {reason}");
                        write_frame(
                            &mut writer,
                            &Frame::new(FrameKind::JobErr, reason.into_bytes()),
                        )?;
                    }
                }
            }
            FrameKind::ShardRequest => {
                let Some(state) = job.as_mut() else {
                    write_frame(
                        &mut writer,
                        &Frame::new(FrameKind::JobErr, b"shard request before job".to_vec()),
                    )?;
                    continue;
                };
                if frame.payload.len() != 4 {
                    write_frame(
                        &mut writer,
                        &Frame::new(FrameKind::JobErr, b"bad shard request payload".to_vec()),
                    )?;
                    continue;
                }
                let shard =
                    u32::from_le_bytes(frame.payload[..4].try_into().expect("4-byte shard id"));
                if opts.fail_after.is_some_and(|n| served >= n) {
                    // Chaos lever: die mid-request, leaving the driver
                    // with an in-flight shard to re-queue.
                    eprintln!("worker: injected crash before shard {shard}");
                    std::process::exit(17);
                }
                served += 1;
                let range = shard_range(state.prep.num_units(), state.num_shards, shard);
                eprintln!(
                    "worker: probing shard {shard} (units {}..{})",
                    range.start, range.end
                );
                let delta = probe_shard(
                    &mut state.sim,
                    &state.config.probe,
                    &state.prep,
                    range,
                    shard,
                );
                write_frame(
                    &mut writer,
                    &Frame::new(FrameKind::ShardResult, encode_shard_result(shard, &delta)),
                )?;
            }
            FrameKind::Shutdown => {
                write_frame(&mut writer, &Frame::new(FrameKind::Bye, Vec::new()))?;
                return Ok(());
            }
            other => {
                return Err(std::io::Error::other(format!(
                    "unexpected frame {other:?} from driver"
                )));
            }
        }
    }
}

/// Runs the worker: binds `opts.listen`, announces the bound address
/// on stdout (`clientmap worker listening on <addr>` — scripts parse
/// this to discover ephemeral ports), and serves drivers until killed
/// (or after one connection with `opts.once`).
pub fn run_worker(opts: &WorkerOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.listen)?;
    let local = listener.local_addr()?;
    println!("clientmap worker listening on {local}");
    std::io::stdout().flush()?;

    for stream in listener.incoming() {
        let stream = stream?;
        if let Err(e) = serve_connection(stream, opts) {
            eprintln!("worker: connection failed: {e}");
        }
        if opts.once {
            break;
        }
    }
    Ok(())
}
