//! The fleet driver: shards a prepared sweep over TCP workers and
//! merges their deltas into byte-identical single-process output.
//!
//! The driver is a [`SweepExecutor`]: the pipeline runs every stage
//! in-process as usual, and only the probing window fans out. Shards
//! live in a shared work queue; each worker connection pulls the next
//! shard, and a worker that disconnects or crashes mid-shard has its
//! in-flight shard pushed back for the survivors — the sweep completes
//! as long as one worker remains. Nothing merges until every shard
//! delta is in, so a failed fleet never ships a partial merge.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use clientmap_cacheprobe::{merge_shards, prepare_sweep, CacheProbeResult, ProbeConfig, SweepPrep};
use clientmap_core::{PipelineError, SweepExecutor};
use clientmap_net::Prefix;
use clientmap_sim::Sim;
use clientmap_store::SweepSnapshot;

use crate::frame::{read_frame, write_frame, Frame, FrameKind};
use crate::proto::{decode_shard_result, JobAck, JobSpec};
use crate::shutdown;

/// How the driver reaches and partitions its fleet.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Worker addresses (`host:port`).
    pub workers: Vec<String>,
    /// Shards to partition the unit list into; `0` picks 4 × workers
    /// (clamped to the unit count) so re-queues stay balanced.
    pub num_shards: u32,
    /// Budget for the initial connect to each worker (retried within).
    pub connect_timeout: Duration,
    /// Per-frame read/write timeout once connected; an expiry counts
    /// as a lost worker and re-queues the in-flight shard.
    pub io_timeout: Duration,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            workers: Vec::new(),
            num_shards: 0,
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(600),
        }
    }
}

/// The fleet [`SweepExecutor`]: prepare locally, probe remotely,
/// merge in shard order.
#[derive(Debug, Clone)]
pub struct FleetSweep {
    /// Fleet topology and timeouts.
    pub opts: FleetOptions,
    /// The scale preset name (`tiny`, `small`, `paper`) workers use to
    /// regenerate the same world.
    pub scale: String,
}

impl FleetSweep {
    /// A driver over `opts` for worlds of the named scale preset.
    pub fn new(opts: FleetOptions, scale: impl Into<String>) -> FleetSweep {
        FleetSweep {
            opts,
            scale: scale.into(),
        }
    }
}

impl SweepExecutor for FleetSweep {
    fn run_sweep(
        &mut self,
        sim: &mut Sim,
        cfg: &ProbeConfig,
        universe: &[Prefix],
        timings: &mut Vec<(String, f64)>,
        prior: Option<&SweepSnapshot>,
    ) -> Result<(CacheProbeResult, SweepSnapshot), PipelineError> {
        if sim.fault_plan().enabled() {
            return Err(PipelineError::Fleet {
                worker: "driver".into(),
                message: "fleet sweeps do not support fault injection \
                          (quarantine/rescue need global cross-shard state)"
                    .into(),
            });
        }
        if self.opts.workers.is_empty() {
            return Err(PipelineError::Fleet {
                worker: "driver".into(),
                message: "no worker addresses given".into(),
            });
        }

        let prep = prepare_sweep(sim, cfg, universe, timings, prior);
        let n = prep.num_units();
        let deltas = if prep.warm_full_skip() || n == 0 {
            // Nothing to probe anywhere: the merge finishes from the
            // prior (or from zero units) without touching the fleet.
            Vec::new()
        } else {
            let auto = 4 * self.opts.workers.len() as u32;
            let shards = if self.opts.num_shards == 0 {
                auto
            } else {
                self.opts.num_shards
            }
            .clamp(1, n as u32);
            let spec = JobSpec {
                scale: self.scale.clone(),
                seed: sim.world().config.seed,
                duration_hours: cfg.duration_hours,
                expiry_budget: cfg.expiry_budget,
                batched_probing: cfg.batched_probing,
                batch_size: cfg.batch_size as u64,
                num_shards: shards,
                config_digest: prep.config_digest(),
                prior: prior.map(SweepSnapshot::encode),
            };
            dispatch(&self.opts, &spec, &prep, shards)?
        };
        merge_shards(sim, cfg, prep, deltas, timings).map_err(|e| PipelineError::Fleet {
            worker: "merge".into(),
            message: e.to_string(),
        })
    }
}

/// Cross-thread dispatch state: the shard queue, the result slots,
/// and the completion count.
struct Shared {
    total: usize,
    queue: Mutex<VecDeque<u32>>,
    results: Mutex<Vec<Option<SweepSnapshot>>>,
    done: AtomicUsize,
}

fn dispatch(
    opts: &FleetOptions,
    spec: &JobSpec,
    prep: &SweepPrep,
    num_shards: u32,
) -> Result<Vec<SweepSnapshot>, PipelineError> {
    let total = num_shards as usize;
    let shared = Shared {
        total,
        queue: Mutex::new((0..num_shards).collect()),
        results: Mutex::new(vec![None; total]),
        done: AtomicUsize::new(0),
    };
    let errors: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    let num_units = prep.num_units() as u64;

    std::thread::scope(|scope| {
        for addr in &opts.workers {
            let shared = &shared;
            let errors = &errors;
            scope.spawn(move || {
                if let Err(e) = serve_worker(addr, opts, spec, num_units, shared) {
                    eprintln!("driver: worker {addr} lost: {e}");
                    errors.lock().expect("errors lock").push((addr.clone(), e));
                }
            });
        }
    });

    let done = shared.done.load(Ordering::SeqCst);
    if done < total {
        if shutdown::requested() {
            return Err(PipelineError::Interrupted {
                completed: done,
                total,
            });
        }
        let errs = errors.into_inner().expect("errors lock");
        let worker = errs
            .last()
            .map(|(a, _)| a.clone())
            .unwrap_or_else(|| "fleet".into());
        let message = if errs.is_empty() {
            format!("{done}/{total} shards completed and no workers remain")
        } else {
            errs.iter()
                .map(|(a, e)| format!("{a}: {e}"))
                .collect::<Vec<_>>()
                .join("; ")
        };
        return Err(PipelineError::Fleet { worker, message });
    }
    Ok(shared
        .results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|slot| slot.expect("all shards complete"))
        .collect())
}

/// One worker connection: handshake, then pull shards until the sweep
/// completes, an interrupt drains, or the worker is lost. Returns
/// `Err` only when the worker itself failed (its in-flight shard, if
/// any, is already back in the queue).
fn serve_worker(
    addr: &str,
    opts: &FleetOptions,
    spec: &JobSpec,
    num_units: u64,
    shared: &Shared,
) -> Result<(), String> {
    let stream = connect_with_retry(addr, opts.connect_timeout)?;
    stream.set_read_timeout(Some(opts.io_timeout)).ok();
    stream.set_write_timeout(Some(opts.io_timeout)).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;

    write_frame(&mut writer, &Frame::new(FrameKind::Job, spec.encode()))
        .map_err(|e| e.to_string())?;
    let reply = read_frame(&mut reader).map_err(|e| e.to_string())?;
    match reply.kind {
        FrameKind::JobAck => {
            let ack = JobAck::decode(&reply.payload).map_err(|e| format!("bad job ack: {e}"))?;
            if ack.num_units != num_units || ack.config_digest != spec.config_digest {
                return Err(format!(
                    "worker prep diverged: {} units / digest {:#x} vs driver {} / {:#x}",
                    ack.num_units, ack.config_digest, num_units, spec.config_digest
                ));
            }
        }
        FrameKind::JobErr => {
            return Err(format!(
                "job refused: {}",
                String::from_utf8_lossy(&reply.payload)
            ));
        }
        other => return Err(format!("unexpected {other:?} reply to job")),
    }

    loop {
        if shutdown::requested() || shared.done.load(Ordering::SeqCst) >= shared.total {
            break;
        }
        let shard = shared.queue.lock().expect("queue lock").pop_front();
        let Some(shard) = shard else {
            // Queue drained but shards are still in flight elsewhere;
            // stay alive in case one gets re-queued.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        match request_shard(&mut reader, &mut writer, shard) {
            Ok(delta) => {
                shared.results.lock().expect("results lock")[shard as usize] = Some(delta);
                let done = shared.done.fetch_add(1, Ordering::SeqCst) + 1;
                eprintln!(
                    "driver: shard {shard} done on {addr} ({done}/{})",
                    shared.total
                );
            }
            Err(e) => {
                // Put the in-flight shard back first, so survivors can
                // pick it up the moment this thread reports the loss.
                shared.queue.lock().expect("queue lock").push_front(shard);
                eprintln!("driver: re-queued shard {shard} after losing {addr}");
                return Err(e);
            }
        }
    }

    // Clean exit (sweep complete or interrupt drained): tell the
    // worker to hang up. Failures here are harmless — the sweep
    // already has every delta it needs from this connection.
    let _ = write_frame(&mut writer, &Frame::new(FrameKind::Shutdown, Vec::new()));
    let _ = read_frame::<FrameKind>(&mut reader);
    Ok(())
}

fn request_shard(
    reader: &mut impl std::io::Read,
    writer: &mut impl std::io::Write,
    shard: u32,
) -> Result<SweepSnapshot, String> {
    write_frame(
        writer,
        &Frame::new(FrameKind::ShardRequest, shard.to_le_bytes().to_vec()),
    )
    .map_err(|e| e.to_string())?;
    let frame: Frame = read_frame(reader).map_err(|e| e.to_string())?;
    if frame.kind != FrameKind::ShardResult {
        return Err(format!(
            "unexpected {:?} reply to shard request",
            frame.kind
        ));
    }
    let (id, delta) =
        decode_shard_result(&frame.payload).map_err(|e| format!("bad shard result: {e}"))?;
    if id != shard {
        return Err(format!("shard id mismatch: asked {shard}, got {id}"));
    }
    Ok(delta)
}

fn connect_with_retry(addr: &str, budget: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + budget;
    let attempt_timeout = Duration::from_secs(2)
        .min(budget)
        .max(Duration::from_millis(100));
    loop {
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {addr}: {e}"))?
            .collect();
        let mut last: Option<std::io::Error> = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, attempt_timeout) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "cannot connect to {addr}: {}",
                last.map(|e| e.to_string())
                    .unwrap_or_else(|| "no addresses resolved".into())
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
