//! The fleet driver: shards a prepared sweep over TCP workers and
//! merges their deltas into byte-identical single-process output.
//!
//! The driver is a [`SweepExecutor`]: the pipeline runs every stage
//! in-process as usual, and only the probing window fans out. Shards
//! live in a shared work queue; each worker connection pulls the next
//! shard, and a worker that disconnects or crashes mid-shard has its
//! in-flight shard pushed back for the survivors — the sweep completes
//! as long as one worker remains. Nothing merges until every shard
//! delta is in, so a failed fleet never ships a partial merge.
//!
//! Fault-injected sweeps add a second, driver-coordinated phase: each
//! shard result carries the shard's per-PoP fault book, the merge
//! folds the books into the global quarantine decision, and the
//! driver dispatches the resulting rescue units back to the (still
//! connected) workers as rescue shards. The two phases ride one
//! persistent connection per worker, so quarantine sees exactly the
//! evidence a single-process sweep would — and produces exactly its
//! bytes.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use clientmap_cacheprobe::resilience::backoff_delay_ms;
use clientmap_cacheprobe::{
    merge_shards, prepare_sweep, CacheProbeResult, PopHealth, ProbeConfig, ProbeUnit,
    ShardMergeError,
};
use clientmap_core::{PipelineError, SweepExecutor};
use clientmap_net::Prefix;
use clientmap_sim::Sim;
use clientmap_store::{checksum, SweepSnapshot};

use crate::frame::{read_frame, write_frame, Frame, FrameError, FrameKind};
use crate::proto::{
    decode_rescue_result, decode_shard_result, encode_rescue_request, shard_range, JobAck, JobSpec,
};
use crate::shutdown;

/// How the driver reaches and partitions its fleet.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Worker addresses (`host:port`).
    pub workers: Vec<String>,
    /// Shards to partition the unit list into; `0` picks 4 × workers
    /// (clamped to the unit count) so re-queues stay balanced.
    pub num_shards: u32,
    /// Budget for the initial connect to each worker (retried within,
    /// under seeded exponential backoff).
    pub connect_timeout: Duration,
    /// Per-frame read/write timeout once connected; an expiry counts
    /// as a lost worker and re-queues the in-flight shard. A fleet
    /// that loses *every* worker to deadline expiries surfaces as
    /// [`PipelineError::Timeout`] instead of a generic fleet failure.
    pub io_timeout: Duration,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            workers: Vec::new(),
            num_shards: 0,
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(600),
        }
    }
}

/// The fleet [`SweepExecutor`]: prepare locally, probe remotely,
/// merge in shard order.
#[derive(Debug, Clone)]
pub struct FleetSweep {
    /// Fleet topology and timeouts.
    pub opts: FleetOptions,
    /// The scale preset name (`tiny`, `small`, `paper`) workers use to
    /// regenerate the same world.
    pub scale: String,
}

impl FleetSweep {
    /// A driver over `opts` for worlds of the named scale preset.
    pub fn new(opts: FleetOptions, scale: impl Into<String>) -> FleetSweep {
        FleetSweep {
            opts,
            scale: scale.into(),
        }
    }
}

fn merge_err(e: ShardMergeError) -> PipelineError {
    PipelineError::Fleet {
        worker: "merge".into(),
        message: e.to_string(),
    }
}

impl SweepExecutor for FleetSweep {
    fn run_sweep(
        &mut self,
        sim: &mut Sim,
        cfg: &ProbeConfig,
        universe: &[Prefix],
        timings: &mut Vec<(String, f64)>,
        prior: Option<&SweepSnapshot>,
    ) -> Result<(CacheProbeResult, SweepSnapshot), PipelineError> {
        if self.opts.workers.is_empty() {
            return Err(PipelineError::Fleet {
                worker: "driver".into(),
                message: "no worker addresses given".into(),
            });
        }

        let prep = prepare_sweep(sim, cfg, universe, timings, prior);
        let n = prep.num_units();
        if prep.warm_full_skip() || n == 0 {
            // Nothing to probe anywhere: the merge finishes from the
            // prior (or from zero units) without touching the fleet.
            return merge_shards(
                sim,
                cfg,
                prep,
                Vec::new(),
                Vec::new(),
                |_| Ok(Vec::new()),
                timings,
            )
            .map_err(merge_err);
        }

        let auto = 4 * self.opts.workers.len() as u32;
        let shards = if self.opts.num_shards == 0 {
            auto
        } else {
            self.opts.num_shards
        }
        .clamp(1, n as u32);
        let spec = JobSpec {
            scale: self.scale.clone(),
            seed: sim.world().config.seed,
            duration_hours: cfg.duration_hours,
            expiry_budget: cfg.expiry_budget,
            batched_probing: cfg.batched_probing,
            batch_size: cfg.batch_size as u64,
            clustered_probing: cfg.clustered_probing,
            cluster_epsilon: cfg.cluster_epsilon,
            cluster_escalate_below: cfg.cluster_escalate_below,
            num_shards: shards,
            config_digest: prep.config_digest(),
            faults: sim.fault_plan().config(),
            prior: prior.map(SweepSnapshot::encode),
        };

        let total = shards as usize;
        let num_workers = self.opts.workers.len();
        let shared = Shared {
            main_total: total,
            cond: Condvar::new(),
            state: Mutex::new(State {
                queue: (0..shards).map(Task::Shard).collect(),
                deltas: vec![None; total],
                books: Vec::new(),
                main_done: 0,
                rescue_units: Arc::new(Vec::new()),
                rescue_shards: 0,
                rescue_deltas: Vec::new(),
                rescue_done: 0,
                rescue_pending: 0,
                shutdown: false,
                alive: num_workers,
                losses: Vec::new(),
            }),
        };
        let opts = &self.opts;
        let num_units = n as u64;

        let out = std::thread::scope(|scope| {
            for addr in &opts.workers {
                let shared = &shared;
                let spec = &spec;
                scope.spawn(move || {
                    let res = serve_worker(addr, opts, spec, num_units, shared);
                    let mut st = shared.state.lock().expect("state lock");
                    st.alive -= 1;
                    if let Err(loss) = res {
                        eprintln!("driver: worker {addr} lost: {}", loss.message);
                        st.losses.push(loss);
                    }
                    drop(st);
                    shared.cond.notify_all();
                });
            }
            let merged = wait_main_phase(&shared).and_then(|()| {
                let (deltas, books) = {
                    let mut st = shared.state.lock().expect("state lock");
                    let deltas = st
                        .deltas
                        .iter_mut()
                        .map(|slot| slot.take().expect("all shards complete"))
                        .collect();
                    (deltas, std::mem::take(&mut st.books))
                };
                merge_shards(
                    sim,
                    cfg,
                    prep,
                    deltas,
                    books,
                    |units| run_rescue(&shared, num_workers, units),
                    timings,
                )
                .map_err(merge_err)
            });
            // Merge done (or failed): release every worker thread so
            // the scope can join them.
            shared.state.lock().expect("state lock").shutdown = true;
            shared.cond.notify_all();
            merged
        });

        // A fleet whose every loss was a deadline expiry failed on
        // time, not on protocol — surface the typed deadline error.
        let losses = shared.state.into_inner().expect("state lock").losses;
        match out {
            Err(PipelineError::Fleet { .. })
                if !losses.is_empty() && losses.iter().all(|l| l.timed_out) =>
            {
                Err(PipelineError::Timeout {
                    peer: losses.last().expect("non-empty losses").addr.clone(),
                    seconds: self.opts.io_timeout.as_secs(),
                })
            }
            other => other,
        }
    }
}

/// A unit of fleet work: a main-phase shard or a rescue-phase shard.
#[derive(Debug, Clone, Copy)]
enum Task {
    Shard(u32),
    Rescue(u32),
}

/// Why a worker connection ended in failure.
struct Loss {
    addr: String,
    message: String,
    /// Whether the loss was a socket-deadline expiry (drives the
    /// all-timeouts → [`PipelineError::Timeout`] upgrade).
    timed_out: bool,
}

/// Cross-thread dispatch state, guarded by one mutex: the task queue,
/// both phases' result slots, and fleet liveness.
struct State {
    queue: VecDeque<Task>,
    deltas: Vec<Option<SweepSnapshot>>,
    books: Vec<PopHealth>,
    main_done: usize,
    rescue_units: Arc<Vec<ProbeUnit>>,
    rescue_shards: u32,
    rescue_deltas: Vec<Option<SweepSnapshot>>,
    rescue_done: usize,
    rescue_pending: usize,
    shutdown: bool,
    alive: usize,
    losses: Vec<Loss>,
}

struct Shared {
    main_total: usize,
    state: Mutex<State>,
    cond: Condvar,
}

/// Blocks until every main-phase shard delta is in, or the fleet is
/// out of workers.
fn wait_main_phase(shared: &Shared) -> Result<(), PipelineError> {
    let total = shared.main_total;
    let mut st = shared.state.lock().expect("state lock");
    loop {
        if st.main_done >= total {
            return Ok(());
        }
        if st.alive == 0 {
            if shutdown::requested() {
                return Err(PipelineError::Interrupted {
                    completed: st.main_done,
                    total,
                });
            }
            return Err(fleet_error(&st.losses, st.main_done, total));
        }
        st = shared
            .cond
            .wait_timeout(st, Duration::from_millis(50))
            .expect("state lock")
            .0;
    }
}

fn fleet_error(losses: &[Loss], done: usize, total: usize) -> PipelineError {
    let worker = losses
        .last()
        .map(|l| l.addr.clone())
        .unwrap_or_else(|| "fleet".into());
    let message = if losses.is_empty() {
        format!("{done}/{total} shards completed and no workers remain")
    } else {
        describe_losses(losses)
    };
    PipelineError::Fleet { worker, message }
}

fn describe_losses(losses: &[Loss]) -> String {
    losses
        .iter()
        .map(|l| format!("{}: {}", l.addr, l.message))
        .collect::<Vec<_>>()
        .join("; ")
}

/// The merge's rescue callback: partitions the planned rescue units
/// over the configured worker count (deterministically — the split
/// never changes the merged bytes, because rescue record keys are
/// disjoint across units), enqueues the rescue shards, and blocks
/// until the surviving workers return every delta.
fn run_rescue(
    shared: &Shared,
    num_workers: usize,
    units: Vec<ProbeUnit>,
) -> Result<Vec<SweepSnapshot>, String> {
    let shards = (num_workers as u32).min(units.len() as u32).max(1);
    {
        let mut st = shared.state.lock().expect("state lock");
        if st.alive == 0 {
            return Err(format!(
                "no workers remain for the rescue phase ({})",
                describe_losses(&st.losses)
            ));
        }
        let units = Arc::new(units);
        st.rescue_deltas = vec![None; shards as usize];
        st.rescue_done = 0;
        let mut queued = 0;
        for s in 0..shards {
            if !shard_range(units.len(), shards, s).is_empty() {
                st.queue.push_back(Task::Rescue(s));
                queued += 1;
            }
        }
        st.rescue_units = units;
        st.rescue_shards = shards;
        st.rescue_pending = queued;
    }
    shared.cond.notify_all();

    let mut st = shared.state.lock().expect("state lock");
    loop {
        if st.rescue_done >= st.rescue_pending {
            return Ok(st
                .rescue_deltas
                .iter_mut()
                .filter_map(Option::take)
                .collect());
        }
        if shutdown::requested() {
            return Err("interrupted during the rescue phase".into());
        }
        if st.alive == 0 {
            return Err(format!(
                "every worker was lost during the rescue phase ({})",
                describe_losses(&st.losses)
            ));
        }
        st = shared
            .cond
            .wait_timeout(st, Duration::from_millis(50))
            .expect("state lock")
            .0;
    }
}

/// Pulls the next task off the shared queue, waiting through quiet
/// stretches (merge in progress, shards in flight elsewhere) until the
/// driver flags shutdown.
fn next_task(shared: &Shared) -> Option<Task> {
    let mut st = shared.state.lock().expect("state lock");
    loop {
        if st.shutdown || shutdown::requested() {
            return None;
        }
        if let Some(task) = st.queue.pop_front() {
            return Some(task);
        }
        st = shared
            .cond
            .wait_timeout(st, Duration::from_millis(50))
            .expect("state lock")
            .0;
    }
}

/// One worker connection: handshake, then pull tasks (main shards,
/// then any rescue shards) until the driver flags shutdown or the
/// worker is lost. Returns `Err` only when the worker itself failed
/// (its in-flight task, if any, is already back in the queue).
fn serve_worker(
    addr: &str,
    opts: &FleetOptions,
    spec: &JobSpec,
    num_units: u64,
    shared: &Shared,
) -> Result<(), Loss> {
    let loss = |message: String, timed_out: bool| Loss {
        addr: addr.to_string(),
        message,
        timed_out,
    };
    let stream = connect_with_retry(addr, opts.connect_timeout).map_err(|e| loss(e, false))?;
    stream.set_read_timeout(Some(opts.io_timeout)).ok();
    stream.set_write_timeout(Some(opts.io_timeout)).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| loss(e.to_string(), false))?);
    let mut writer = stream;

    write_frame(&mut writer, &Frame::new(FrameKind::Job, spec.encode())).map_err(|e| {
        let e = FrameError::from(e);
        let timed_out = matches!(e, FrameError::TimedOut);
        loss(format!("sending job: {e}"), timed_out)
    })?;
    let reply = read_frame(&mut reader).map_err(|e| {
        let timed_out = matches!(e, FrameError::TimedOut);
        loss(format!("awaiting job ack: {e}"), timed_out)
    })?;
    match reply.kind {
        FrameKind::JobAck => {
            let ack = JobAck::decode(&reply.payload)
                .map_err(|e| loss(format!("bad job ack: {e}"), false))?;
            if ack.num_units != num_units || ack.config_digest != spec.config_digest {
                return Err(loss(
                    format!(
                        "worker prep diverged: {} units / digest {:#x} vs driver {} / {:#x}",
                        ack.num_units, ack.config_digest, num_units, spec.config_digest
                    ),
                    false,
                ));
            }
        }
        FrameKind::JobErr => {
            return Err(loss(
                format!("job refused: {}", String::from_utf8_lossy(&reply.payload)),
                false,
            ));
        }
        other => return Err(loss(format!("unexpected {other:?} reply to job"), false)),
    }

    while let Some(task) = next_task(shared) {
        match task {
            Task::Shard(shard) => match request_shard(&mut reader, &mut writer, shard) {
                Ok((delta, book)) => {
                    let mut st = shared.state.lock().expect("state lock");
                    st.deltas[shard as usize] = Some(delta);
                    st.books.extend(book);
                    st.main_done += 1;
                    let done = st.main_done;
                    drop(st);
                    shared.cond.notify_all();
                    eprintln!(
                        "driver: shard {shard} done on {addr} ({done}/{})",
                        shared.main_total
                    );
                }
                Err((message, timed_out)) => {
                    // Put the in-flight shard back first, so survivors
                    // can pick it up the moment this thread reports
                    // the loss.
                    let mut st = shared.state.lock().expect("state lock");
                    st.queue.push_front(Task::Shard(shard));
                    drop(st);
                    shared.cond.notify_all();
                    eprintln!("driver: re-queued shard {shard} after losing {addr}");
                    return Err(loss(message, timed_out));
                }
            },
            Task::Rescue(shard) => {
                let (units, range) = {
                    let st = shared.state.lock().expect("state lock");
                    let units = Arc::clone(&st.rescue_units);
                    let range = shard_range(units.len(), st.rescue_shards, shard);
                    (units, range)
                };
                match request_rescue(&mut reader, &mut writer, shard, &units[range]) {
                    Ok(delta) => {
                        let mut st = shared.state.lock().expect("state lock");
                        st.rescue_deltas[shard as usize] = Some(delta);
                        st.rescue_done += 1;
                        let done = st.rescue_done;
                        let pending = st.rescue_pending;
                        drop(st);
                        shared.cond.notify_all();
                        eprintln!("driver: rescue shard {shard} done on {addr} ({done}/{pending})");
                    }
                    Err((message, timed_out)) => {
                        let mut st = shared.state.lock().expect("state lock");
                        st.queue.push_front(Task::Rescue(shard));
                        drop(st);
                        shared.cond.notify_all();
                        eprintln!("driver: re-queued rescue shard {shard} after losing {addr}");
                        return Err(loss(message, timed_out));
                    }
                }
            }
        }
    }

    // Clean exit (sweep complete or interrupt drained): tell the
    // worker to hang up. Failures here are harmless — the sweep
    // already has every delta it needs from this connection.
    let _ = write_frame(&mut writer, &Frame::new(FrameKind::Shutdown, Vec::new()));
    let _ = read_frame::<FrameKind>(&mut reader);
    Ok(())
}

fn wire_err(ctx: &str, e: FrameError) -> (String, bool) {
    let timed_out = matches!(e, FrameError::TimedOut);
    (format!("{ctx}: {e}"), timed_out)
}

fn request_shard(
    reader: &mut impl std::io::Read,
    writer: &mut impl std::io::Write,
    shard: u32,
) -> Result<(SweepSnapshot, Vec<PopHealth>), (String, bool)> {
    write_frame(
        writer,
        &Frame::new(FrameKind::ShardRequest, shard.to_le_bytes().to_vec()),
    )
    .map_err(|e| wire_err("sending shard request", e.into()))?;
    let frame: Frame = read_frame(reader).map_err(|e| wire_err("awaiting shard result", e))?;
    match frame.kind {
        FrameKind::ShardResult => {
            let (id, delta, book) = decode_shard_result(&frame.payload)
                .map_err(|e| (format!("bad shard result: {e}"), false))?;
            if id != shard {
                return Err((format!("shard id mismatch: asked {shard}, got {id}"), false));
            }
            Ok((delta, book))
        }
        FrameKind::JobErr => Err((
            format!(
                "shard request refused: {}",
                String::from_utf8_lossy(&frame.payload)
            ),
            false,
        )),
        other => Err((
            format!("unexpected {other:?} reply to shard request"),
            false,
        )),
    }
}

fn request_rescue(
    reader: &mut impl std::io::Read,
    writer: &mut impl std::io::Write,
    shard: u32,
    units: &[ProbeUnit],
) -> Result<SweepSnapshot, (String, bool)> {
    write_frame(
        writer,
        &Frame::new(
            FrameKind::RescueRequest,
            encode_rescue_request(shard, units),
        ),
    )
    .map_err(|e| wire_err("sending rescue request", e.into()))?;
    let frame: Frame = read_frame(reader).map_err(|e| wire_err("awaiting rescue result", e))?;
    match frame.kind {
        FrameKind::RescueResult => {
            let (id, delta) = decode_rescue_result(&frame.payload)
                .map_err(|e| (format!("bad rescue result: {e}"), false))?;
            if id != shard {
                return Err((
                    format!("rescue shard id mismatch: asked {shard}, got {id}"),
                    false,
                ));
            }
            Ok(delta)
        }
        FrameKind::JobErr => Err((
            format!(
                "rescue refused: {}",
                String::from_utf8_lossy(&frame.payload)
            ),
            false,
        )),
        other => Err((
            format!("unexpected {other:?} reply to rescue request"),
            false,
        )),
    }
}

/// Connects within `budget`, sleeping between attempts under the same
/// seeded exponential-backoff discipline the probe retries use — the
/// address seeds the jitter, so a fleet of drivers hammering one
/// recovering worker spreads its retries deterministically.
fn connect_with_retry(addr: &str, budget: Duration) -> Result<TcpStream, String> {
    let start = Instant::now();
    let deadline = start + budget;
    let attempt_timeout = Duration::from_secs(2)
        .min(budget)
        .max(Duration::from_millis(100));
    let seed = checksum(addr.as_bytes());
    let mut retry: u32 = 0;
    loop {
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {addr}: {e}"))?
            .collect();
        let mut last: Option<std::io::Error> = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, attempt_timeout) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "cannot connect to {addr}: {}",
                last.map(|e| e.to_string())
                    .unwrap_or_else(|| "no addresses resolved".into())
            ));
        }
        retry += 1;
        let delay =
            backoff_delay_ms(seed, start.elapsed().as_millis() as u64, retry.min(6), 25).min(2_000);
        std::thread::sleep(Duration::from_millis(delay));
    }
}
