//! The fleet's wire framing: length-prefixed, checksummed frames over
//! a TCP stream.
//!
//! ```text
//! ┌───────┬──────┬─────────┬────────────┬────────────┐
//! │ magic │ kind │ len u32 │ payload    │ sum u64 LE │
//! │ CMFR  │ u8   │ LE      │ len bytes  │ splitmix64 │
//! └───────┴──────┴─────────┴────────────┴────────────┘
//! ```
//!
//! The trailing checksum is `clientmap_store::codec::checksum` over
//! `kind ‖ len ‖ payload` — the same seeded splitmix64 fold the
//! snapshot codec uses — so truncations, reorderings, and bit flips on
//! the wire are all rejected before a payload is interpreted. Frames
//! larger than [`MAX_FRAME_PAYLOAD`] are refused *before* any payload
//! allocation, so a corrupt length prefix cannot balloon memory.
//!
//! The framing is generic over its kind byte via [`WireKind`]: the
//! fleet protocol's [`FrameKind`] is the default, and other `CMFR`
//! speakers (the serve query protocol) define their own kind enums
//! while sharing the exact same framing, checksum, and error
//! discipline — one wire format, audited once.

use std::io::{Read, Write};

use clientmap_store::checksum;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"CMFR";

/// Hard ceiling on a frame payload (256 MiB) — far above any real
/// shard delta, far below a corrupt length prefix.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 28;

/// A frame-kind vocabulary: one byte on the wire, one enum in code.
/// Implementors get the whole `CMFR` framing stack
/// ([`write_frame`]/[`read_frame`]/[`read_frame_opt`]) for free.
pub trait WireKind: Copy {
    /// The wire encoding of this kind.
    fn to_byte(self) -> u8;
    /// Decodes a kind byte, `None` for bytes outside the vocabulary
    /// (surfaced as [`FrameError::UnknownKind`]).
    fn from_byte(b: u8) -> Option<Self>;
}

/// What a fleet frame means. The numeric values are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// driver → worker: sweep job description ([`crate::proto::JobSpec`]).
    Job = 1,
    /// worker → driver: job accepted; payload is a
    /// [`crate::proto::JobAck`].
    JobAck = 2,
    /// worker → driver: job refused; payload is a UTF-8 reason.
    JobErr = 3,
    /// driver → worker: probe one shard; payload is the shard id (u32
    /// LE).
    ShardRequest = 4,
    /// worker → driver: a shard's delta; payload is shard id (u32 LE)
    /// followed by `SweepSnapshot::encode` bytes.
    ShardResult = 5,
    /// driver → worker: sweep complete (or aborted) — exit cleanly.
    Shutdown = 6,
    /// worker → driver: acknowledged shutdown, closing.
    Bye = 7,
    /// driver → worker: probe a rescue shard; payload is a
    /// [`crate::proto`] rescue request (shard id + rescue units).
    RescueRequest = 8,
    /// worker → driver: a rescue shard's delta; payload is shard id
    /// (u32 LE) followed by `SweepSnapshot::encode` bytes.
    RescueResult = 9,
}

impl WireKind for FrameKind {
    fn to_byte(self) -> u8 {
        self as u8
    }

    fn from_byte(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Job,
            2 => FrameKind::JobAck,
            3 => FrameKind::JobErr,
            4 => FrameKind::ShardRequest,
            5 => FrameKind::ShardResult,
            6 => FrameKind::Shutdown,
            7 => FrameKind::Bye,
            8 => FrameKind::RescueRequest,
            9 => FrameKind::RescueResult,
            _ => return None,
        })
    }
}

/// One decoded frame (of the fleet vocabulary by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<K = FrameKind> {
    /// What the frame means.
    pub kind: K,
    /// The frame's payload (interpretation depends on `kind`).
    pub payload: Vec<u8>,
}

impl<K: WireKind> Frame<K> {
    /// A frame of `kind` carrying `payload`.
    pub fn new(kind: K, payload: Vec<u8>) -> Frame<K> {
        Frame { kind, payload }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The stream ended mid-frame (a clean EOF *between* frames is
    /// reported as `Io` with `UnexpectedEof` by `read_frame_opt`'s
    /// `None` instead).
    ShortRead,
    /// The first four bytes were not the frame magic.
    BadMagic([u8; 4]),
    /// The kind byte was outside the protocol's [`WireKind`] vocabulary.
    UnknownKind(u8),
    /// The length prefix exceeded [`MAX_FRAME_PAYLOAD`].
    Oversized(usize),
    /// The trailing checksum did not match the frame body.
    BadChecksum,
    /// A socket deadline expired while a frame was in flight — the
    /// peer stalled mid-frame past the configured `--io-timeout`.
    /// (A deadline expiring *between* frames is not an error; see
    /// [`read_frame_deadline`].)
    TimedOut,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::ShortRead => write!(f, "stream ended mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::TimedOut => write!(f, "i/o deadline expired mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether an i/o error is a socket-deadline expiry. Unix surfaces
/// these as `WouldBlock`, Windows as `TimedOut`.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::ShortRead
        } else if is_timeout(&e) {
            FrameError::TimedOut
        } else {
            FrameError::Io(e)
        }
    }
}

/// The bytes the checksum covers: kind, length prefix, payload.
fn body_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut body = Vec::with_capacity(5 + payload.len());
    body.push(kind);
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    checksum(&body)
}

/// Writes one frame to `w` (buffered by the caller's stream; a frame
/// is a single `write_all`).
pub fn write_frame<K: WireKind>(w: &mut impl Write, frame: &Frame<K>) -> std::io::Result<()> {
    let kind = frame.kind.to_byte();
    let mut buf = Vec::with_capacity(17 + frame.payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(kind);
    buf.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame.payload);
    buf.extend_from_slice(&body_checksum(kind, &frame.payload).to_le_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame from `r`, validating magic, kind, size, and
/// checksum.
pub fn read_frame<K: WireKind>(r: &mut impl Read) -> Result<Frame<K>, FrameError> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    read_frame_after_header(r, header)
}

/// Reads one frame, returning `Ok(None)` on a clean EOF at a frame
/// boundary — how a server distinguishes "peer hung up" from a
/// corrupt stream.
pub fn read_frame_opt<K: WireKind>(r: &mut impl Read) -> Result<Option<Frame<K>>, FrameError> {
    let mut header = [0u8; 9];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::ShortRead),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    read_frame_after_header(r, header).map(Some)
}

/// What a deadline-aware read produced.
#[derive(Debug)]
pub enum FrameRead<K = FrameKind> {
    /// A complete, validated frame.
    Frame(Frame<K>),
    /// Clean EOF at a frame boundary — the peer hung up.
    Eof,
    /// The socket deadline expired with *no* frame in flight. Idle is
    /// not an error: servers use it to poll a stop flag (or simply
    /// keep waiting) between frames, while a deadline expiring
    /// mid-frame still fails hard as [`FrameError::TimedOut`].
    Idle,
}

/// Reads one frame from a socket with a read deadline set,
/// distinguishing the three healthy outcomes (frame, EOF, idle
/// deadline) from transport failure. A deadline expiring after the
/// frame header started arriving means the peer stalled mid-frame and
/// is reported as [`FrameError::TimedOut`].
pub fn read_frame_deadline<K: WireKind>(r: &mut impl Read) -> Result<FrameRead<K>, FrameError> {
    let mut header = [0u8; 9];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(FrameRead::Eof),
            Ok(0) => return Err(FrameError::ShortRead),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && got == 0 => return Ok(FrameRead::Idle),
            Err(e) => return Err(e.into()),
        }
    }
    read_frame_after_header(r, header).map(FrameRead::Frame)
}

fn read_frame_after_header<K: WireKind>(
    r: &mut impl Read,
    header: [u8; 9],
) -> Result<Frame<K>, FrameError> {
    let magic: [u8; 4] = header[..4].try_into().expect("4-byte magic");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let kind_byte = header[4];
    let kind = K::from_byte(kind_byte).ok_or(FrameError::UnknownKind(kind_byte))?;
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4-byte len")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if u64::from_le_bytes(sum) != body_checksum(kind_byte, &payload) {
        return Err(FrameError::BadChecksum);
    }
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: FrameKind, payload: Vec<u8>) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(kind, payload)).unwrap();
        read_frame(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        for (kind, payload) in [
            (FrameKind::Job, vec![]),
            (FrameKind::ShardRequest, 7u32.to_le_bytes().to_vec()),
            (FrameKind::ShardResult, vec![0xAB; 4096]),
            (FrameKind::Bye, vec![1, 2, 3]),
        ] {
            let f = roundtrip(kind, payload.clone());
            assert_eq!(f.kind, kind);
            assert_eq!(f.payload, payload);
        }
    }

    #[test]
    fn clean_eof_is_none_midframe_is_error() {
        assert!(read_frame_opt::<FrameKind>(&mut [].as_slice())
            .unwrap()
            .is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(FrameKind::Job, vec![9; 100])).unwrap();
        for cut in [1, 5, 9, 30, buf.len() - 1] {
            let err = read_frame_opt::<FrameKind>(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::ShortRead),
                "cut at {cut}: {err:?}"
            );
        }
    }
}
