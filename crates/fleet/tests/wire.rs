//! Wire-protocol tests for the fleet frame codec and job protocol:
//! round-trip properties over randomized frames and job specs, and the
//! rejection paths a hostile or truncated byte stream must hit
//! (short reads, oversized frames, corrupted checksums, bad magic,
//! unknown kinds) — each surfaced as its own typed [`FrameError`], so
//! the driver can tell a lost worker from a protocol bug.

use std::io::Cursor;

use clientmap_cacheprobe::{merge_fault_books, PopHealth, ProbeUnit};
use clientmap_faults::{FaultConfig, FaultProfile};
use clientmap_fleet::{
    decode_fault_book, decode_rescue_request, decode_rescue_result, decode_shard_result,
    encode_fault_book, encode_rescue_request, read_frame, shard_range, write_frame, Frame,
    FrameError, FrameKind, JobAck, JobSpec, MAX_FRAME_PAYLOAD,
};
use clientmap_net::Prefix;
use proptest::prelude::*;

fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame).expect("in-memory write");
    buf
}

fn kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Job),
        Just(FrameKind::JobAck),
        Just(FrameKind::JobErr),
        Just(FrameKind::ShardRequest),
        Just(FrameKind::ShardResult),
        Just(FrameKind::Shutdown),
        Just(FrameKind::Bye),
        Just(FrameKind::RescueRequest),
        Just(FrameKind::RescueResult),
    ]
}

fn profile_strategy() -> impl Strategy<Value = FaultProfile> {
    prop_oneof![
        Just(FaultProfile::Off),
        Just(FaultProfile::Light),
        Just(FaultProfile::Lossy),
        Just(FaultProfile::PopChurn),
    ]
}

fn health_strategy() -> impl Strategy<Value = PopHealth> {
    // Attempt/drop counts stay well under u64::MAX so summing any
    // number of generated books cannot overflow — as in a real fleet.
    (0usize..32, 0u64..1 << 40, 0u64..1 << 40, any::<bool>()).prop_map(
        |(pop, attempts, drops, tripped)| PopHealth {
            pop,
            attempts,
            drops,
            tripped,
        },
    )
}

fn book_strategy() -> impl Strategy<Value = Vec<PopHealth>> {
    proptest::collection::vec(health_strategy(), 0..24)
}

fn unit_strategy() -> impl Strategy<Value = ProbeUnit> {
    (
        0usize..64,
        0usize..8,
        proptest::collection::vec((any::<u32>(), 0u8..=32), 1..12),
    )
        .prop_map(|(bound_idx, domain, scopes)| ProbeUnit {
            bound_idx,
            domain,
            scopes: scopes
                .into_iter()
                .map(|(addr, len)| Prefix::new(addr, len).expect("len <= 32"))
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame survives an encode/decode round trip, and back-to-back
    /// frames on one stream decode in order.
    #[test]
    fn frames_roundtrip_any_payload(
        kind in kind_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        kind2 in kind_strategy(),
        payload2 in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let a = Frame::new(kind, payload);
        let b = Frame::new(kind2, payload2);
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        let mut cur = Cursor::new(buf);
        let got_a = read_frame::<FrameKind>(&mut cur).expect("first frame");
        let got_b = read_frame::<FrameKind>(&mut cur).expect("second frame");
        prop_assert_eq!(got_a.kind, a.kind);
        prop_assert_eq!(got_a.payload, a.payload);
        prop_assert_eq!(got_b.kind, b.kind);
        prop_assert_eq!(got_b.payload, b.payload);
    }

    /// Truncating an encoded frame anywhere short of its full length
    /// yields `ShortRead` — never a bogus frame, never a hang.
    #[test]
    fn any_truncation_is_a_short_read(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        cut_frac in 0.0..1.0f64,
    ) {
        let buf = encode_frame(&Frame::new(FrameKind::ShardResult, payload));
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let mut cur = Cursor::new(buf[..cut].to_vec());
        match read_frame::<FrameKind>(&mut cur) {
            Err(FrameError::ShortRead) => {}
            other => prop_assert!(false, "expected ShortRead, got {other:?}"),
        }
    }

    /// Flipping any single bit of an encoded frame never yields the
    /// original frame back: either a typed error, or (when the flip
    /// lands in the length field in a way that still parses) a frame
    /// whose content differs.
    #[test]
    fn any_single_bitflip_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let frame = Frame::new(FrameKind::Job, payload);
        let mut buf = encode_frame(&frame);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        let mut cur = Cursor::new(buf);
        match read_frame::<FrameKind>(&mut cur) {
            Err(_) => {}
            Ok(got) => prop_assert!(
                got.kind != frame.kind || got.payload != frame.payload,
                "bitflip at byte {pos} bit {bit} went unnoticed"
            ),
        }
    }

    /// `shard_range` partitions `0..num_units` exactly: contiguous,
    /// disjoint, covering, and balanced to within one unit.
    #[test]
    fn shard_ranges_are_a_balanced_partition(num_units in 0usize..5000, num_shards in 1u32..64) {
        let mut next = 0usize;
        let (mut min_len, mut max_len) = (usize::MAX, 0usize);
        for shard in 0..num_shards {
            let r = shard_range(num_units, num_shards, shard);
            prop_assert_eq!(r.start, next, "shard {} not contiguous", shard);
            next = r.end;
            min_len = min_len.min(r.len());
            max_len = max_len.max(r.len());
        }
        prop_assert_eq!(next, num_units);
        prop_assert!(max_len - min_len <= 1, "unbalanced: {min_len}..{max_len}");
    }

    /// `JobSpec` and `JobAck` survive their codec round trip for any
    /// field values, including an embedded prior-snapshot byte blob.
    #[test]
    fn job_messages_roundtrip(
        seed in any::<u64>(),
        duration in 0.0..100.0f64,
        budget in 0.0..1.0f64,
        batched in any::<bool>(),
        batch_size in 1u64..10_000,
        clustered in any::<bool>(),
        epsilon in 0.0..1.0f64,
        escalate in 0.0..1.0f64,
        num_shards in 1u32..256,
        digest in any::<u64>(),
        profile in profile_strategy(),
        fault_seed in any::<u64>(),
        prior in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..128)),
        num_units in any::<u64>(),
        world_seed in any::<u64>(),
        warm in any::<bool>(),
    ) {
        let spec = JobSpec {
            scale: "small".into(),
            seed,
            duration_hours: duration,
            expiry_budget: budget,
            batched_probing: batched,
            batch_size,
            clustered_probing: clustered,
            cluster_epsilon: epsilon,
            cluster_escalate_below: escalate,
            num_shards,
            config_digest: digest,
            faults: FaultConfig::profile(profile, fault_seed),
            prior,
        };
        let got = JobSpec::decode(&spec.encode()).expect("spec round trip");
        prop_assert_eq!(got, spec);

        let ack = JobAck {
            num_units,
            config_digest: digest,
            world_seed,
            warm_full_skip: warm,
        };
        let got = JobAck::decode(&ack.encode()).expect("ack round trip");
        prop_assert_eq!(got, ack);
    }

    /// Fault books survive their codec round trip for any contents,
    /// and any single bit flip in the encoding is rejected — the book
    /// record is checksummed end to end.
    #[test]
    fn fault_books_roundtrip_and_reject_bitflips(
        book in book_strategy(),
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let clean = encode_fault_book(&book);
        prop_assert_eq!(decode_fault_book(&clean).expect("book round trip"), book);

        let mut bad = clean.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert!(
            decode_fault_book(&bad).is_err(),
            "bitflip at byte {} bit {} went unnoticed", pos, bit
        );
        prop_assert!(decode_fault_book(&clean[..clean.len() - 2]).is_err());
    }

    /// Rescue requests survive their codec round trip (the prefixes
    /// come back exactly, already masked by construction), and any
    /// single bit flip is rejected by the trailing checksum.
    #[test]
    fn rescue_requests_roundtrip_and_reject_bitflips(
        shard in any::<u32>(),
        units in proptest::collection::vec(unit_strategy(), 0..6),
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let clean = encode_rescue_request(shard, &units);
        let (got_shard, got_units) =
            decode_rescue_request(&clean).expect("rescue request round trip");
        prop_assert_eq!(got_shard, shard);
        prop_assert_eq!(got_units, units);

        let mut bad = clean.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert!(
            decode_rescue_request(&bad).is_err(),
            "bitflip at byte {} bit {} went unnoticed", pos, bit
        );
        prop_assert!(decode_rescue_request(&clean[..clean.len() - 1]).is_err());
    }

    /// Folding fleet fault books is associative and shard-order
    /// invariant up to the canonical (sorted, one-entry-per-PoP) form:
    /// however the driver interleaves worker completions, the merged
    /// book — and therefore the quarantine decision — is the same.
    #[test]
    fn fault_book_merge_is_associative_and_order_invariant(
        a in book_strategy(),
        b in book_strategy(),
        c in book_strategy(),
    ) {
        let concat: Vec<PopHealth> =
            a.iter().chain(&b).chain(&c).copied().collect();
        let canonical = merge_fault_books(&concat);

        // Shard-order invariance: any permutation of shard books (and
        // of entries within) folds to the same canonical book.
        let reversed: Vec<PopHealth> =
            c.iter().chain(&b).chain(&a).rev().copied().collect();
        prop_assert_eq!(merge_fault_books(&reversed), canonical.clone());

        // Associativity: folding partial folds equals folding once.
        let ab = merge_fault_books(&a.iter().chain(&b).copied().collect::<Vec<_>>());
        let partial: Vec<PopHealth> = ab.iter().chain(&merge_fault_books(&c)).copied().collect();
        prop_assert_eq!(merge_fault_books(&partial), canonical.clone());

        // The canonical form is a fixed point.
        prop_assert_eq!(merge_fault_books(&canonical), canonical);
    }
}

#[test]
fn shard_and_rescue_results_roundtrip() {
    use clientmap_store::SweepSnapshot;

    let mut delta = SweepSnapshot::new(42, 0xFEED);
    delta.epoch = 7;
    delta.gpdns = [1, 2, 3, 4, 5, 6];
    let book = vec![
        PopHealth {
            pop: 3,
            attempts: 40,
            drops: 21,
            tripped: false,
        },
        PopHealth {
            pop: 9,
            attempts: 8,
            drops: 0,
            tripped: true,
        },
    ];
    let payload = clientmap_fleet::encode_shard_result(7, &delta, &book);
    let (shard, got_delta, got_book) = decode_shard_result(&payload).expect("shard result");
    assert_eq!(shard, 7);
    assert_eq!(got_delta, delta);
    assert_eq!(got_book, book);
    assert!(decode_shard_result(&payload[..6]).is_err());

    let payload = clientmap_fleet::encode_rescue_result(9, &delta);
    let (shard, got_delta) = decode_rescue_result(&payload).expect("rescue result");
    assert_eq!(shard, 9);
    assert_eq!(got_delta, delta);
    assert!(decode_rescue_result(&payload[..3]).is_err());
}

#[test]
fn oversized_frames_are_rejected_before_allocation() {
    // Hand-build a header claiming a payload just past the cap; the
    // reader must fail on the length field without trying to read (or
    // allocate) the body.
    let mut buf = Vec::new();
    buf.extend_from_slice(b"CMFR");
    buf.push(FrameKind::ShardResult as u8);
    buf.extend_from_slice(&((MAX_FRAME_PAYLOAD + 1) as u32).to_le_bytes());
    match read_frame::<FrameKind>(&mut Cursor::new(buf)) {
        Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME_PAYLOAD + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn corrupted_checksum_is_rejected() {
    let mut buf = encode_frame(&Frame::new(FrameKind::JobAck, vec![1, 2, 3]));
    let last = buf.len() - 1;
    buf[last] ^= 0x40; // flip a checksum bit only
    match read_frame::<FrameKind>(&mut Cursor::new(buf)) {
        Err(FrameError::BadChecksum) => {}
        other => panic!("expected BadChecksum, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_unknown_kind_are_rejected() {
    let mut buf = encode_frame(&Frame::new(FrameKind::Shutdown, Vec::new()));
    buf[0] = b'X';
    match read_frame::<FrameKind>(&mut Cursor::new(buf.clone())) {
        Err(FrameError::BadMagic(m)) => assert_eq!(&m, b"XMFR"),
        other => panic!("expected BadMagic, got {other:?}"),
    }

    let mut buf = encode_frame(&Frame::new(FrameKind::Shutdown, Vec::new()));
    buf[4] = 0xEE; // kind byte — checked before the checksum
    match read_frame::<FrameKind>(&mut Cursor::new(buf)) {
        Err(FrameError::UnknownKind(0xEE)) => {}
        other => panic!("expected UnknownKind, got {other:?}"),
    }
}

#[test]
fn payload_bitflips_hit_the_checksum() {
    // Deterministic complement of the proptest: every single-bit flip
    // in the payload region specifically lands on BadChecksum.
    let frame = Frame::new(FrameKind::ShardResult, (0u8..32).collect::<Vec<u8>>());
    let clean = encode_frame(&frame);
    let payload_start = 4 + 1 + 4;
    let payload_end = payload_start + frame.payload.len();
    for pos in payload_start..payload_end {
        for bit in 0..8 {
            let mut buf = clean.clone();
            buf[pos] ^= 1 << bit;
            match read_frame::<FrameKind>(&mut Cursor::new(buf)) {
                Err(FrameError::BadChecksum) => {}
                other => panic!("flip at {pos}/{bit}: expected BadChecksum, got {other:?}"),
            }
        }
    }
}

#[test]
fn job_spec_rejects_truncation_and_checksum_damage() {
    let spec = JobSpec {
        scale: "tiny".into(),
        seed: 7,
        duration_hours: 4.0,
        expiry_budget: 0.0,
        batched_probing: true,
        batch_size: 64,
        clustered_probing: false,
        cluster_epsilon: 0.25,
        cluster_escalate_below: 0.5,
        num_shards: 8,
        config_digest: 0xDEAD_BEEF,
        faults: FaultConfig::profile(FaultProfile::Lossy, 3),
        prior: Some(vec![9; 40]),
    };
    let clean = spec.encode();
    assert!(JobSpec::decode(&clean[..clean.len() - 3]).is_err());
    let mut bad = clean.clone();
    bad[10] ^= 1;
    assert!(JobSpec::decode(&bad).is_err());
}
