//! Validates the DITL sampling correction: on a world small enough to
//! capture *complete* root traces (sample rate 1.0, like the paper's
//! actual DITL inputs), a heavily sampled capture crawled with the
//! rate-corrected classifier must reproduce (a) the same noise
//! rejection and (b) per-resolver totals within statistical tolerance.

use clientmap_chromium::{crawl, ChromiumClassifier};
use clientmap_sim::{Sim, SimTime};
use clientmap_world::{World, WorldConfig};

/// A micro world where a full (unsampled) two-day capture is tractable.
fn micro_world(seed: u64) -> World {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.total_users = 5.0e4;
    cfg.num_ases = 60;
    cfg.target_routed_slash24s = 1_500;
    World::generate(cfg)
}

#[test]
fn sampled_crawl_estimates_full_crawl() {
    let sim = Sim::new(micro_world(171));
    let classifier = ChromiumClassifier::default();

    let full_traces = sim.capture_root_traces(SimTime::ZERO, 2, 1.0);
    let full = crawl(&full_traces, &classifier);
    assert!(
        full.total_probes() > 10_000.0,
        "full capture too small to compare: {}",
        full.total_probes()
    );

    let sampled_traces = sim.capture_root_traces(SimTime::ZERO, 2, 0.05);
    let sampled = crawl(&sampled_traces, &classifier);

    // (a) Totals: the corrected estimate matches the full count within
    // sampling noise (5% of N probes → relative error ~ 1/√(0.05·N)).
    let ratio = sampled.total_probes() / full.total_probes();
    assert!(
        (0.85..1.15).contains(&ratio),
        "sampling correction off: full {} vs corrected {} (ratio {ratio:.3})",
        full.total_probes(),
        sampled.total_probes()
    );

    // (b) Noise: the junk names rejected in the full capture are also
    // rejected when sampled (the floor-at-2 threshold holds).
    assert!(full.rejected_noise_records > 0);
    assert!(
        sampled.rejected_noise_records > 0,
        "sampled crawl let all noise through"
    );

    // (c) Resolver ranking: the busiest resolvers of the full crawl
    // dominate the sampled crawl too (top-5 sets mostly overlap).
    let top = |r: &clientmap_chromium::DnsLogsResult| -> Vec<u32> {
        r.resolvers
            .iter()
            .take(5)
            .map(|x| x.resolver_addr)
            .collect()
    };
    let full_top = top(&full);
    let sampled_top = top(&sampled);
    let overlap = full_top.iter().filter(|a| sampled_top.contains(a)).count();
    assert!(
        overlap >= 3,
        "top resolvers diverge: full {full_top:?} vs sampled {sampled_top:?}"
    );

    // (d) Per-resolver estimates for the big resolvers are unbiased
    // within tolerance.
    let mut checked = 0;
    for r in full.resolvers.iter().take(10) {
        if r.probes < 2_000.0 {
            continue;
        }
        let est = sampled.probes_for(r.resolver_addr);
        let rel = (est - r.probes).abs() / r.probes;
        assert!(
            rel < 0.35,
            "resolver {:#x}: full {} vs corrected {est}",
            r.resolver_addr,
            r.probes
        );
        checked += 1;
    }
    assert!(checked >= 2, "no large resolvers to validate against");
}

#[test]
fn full_capture_needs_no_correction() {
    // At rate 1.0 the effective threshold is the paper's 7/day and the
    // counts are exact: crawling twice is identical.
    let sim = Sim::new(micro_world(172));
    let traces = sim.capture_root_traces(SimTime::ZERO, 2, 1.0);
    let classifier = ChromiumClassifier::default();
    assert_eq!(classifier.effective_threshold(1.0), 7);
    let a = crawl(&traces, &classifier);
    let b = crawl(&traces, &classifier);
    assert_eq!(a.resolvers.len(), b.resolvers.len());
    assert_eq!(a.total_probes(), b.total_probes());
}
