//! The two-part Chromium probe signature.

use clientmap_dns::DomainName;
use clientmap_sim::roots::TraceRecord;

/// Classifies root-trace queries as Chromium interception probes.
///
/// ```
/// use clientmap_chromium::ChromiumClassifier;
/// let c = ChromiumClassifier::default();
/// assert!(c.matches_shape(&"sdhfjssf".parse().unwrap()));
/// assert!(!c.matches_shape(&"columbia.edu".parse().unwrap())); // has a TLD
/// assert!(!c.matches_shape(&"abc".parse().unwrap())); // too short
/// assert!(!c.matches_shape(&"ab3defgh".parse().unwrap())); // digit
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ChromiumClassifier {
    /// Minimum label length (Chromium uses 7).
    pub min_len: usize,
    /// Maximum label length (Chromium uses 15).
    pub max_len: usize,
    /// A shape-matching name repeated at least this many times in any
    /// single day is rejected as noise (paper: 7/day at 99% confidence).
    pub daily_collision_threshold: u32,
}

impl Default for ChromiumClassifier {
    fn default() -> Self {
        ChromiumClassifier {
            min_len: 7,
            max_len: 15,
            daily_collision_threshold: 7,
        }
    }
}

impl ChromiumClassifier {
    /// Whether a name has the Chromium probe *shape*: one label of
    /// `min_len..=max_len` lowercase ASCII letters.
    pub fn matches_shape(&self, name: &DomainName) -> bool {
        if !name.is_single_label() {
            return false;
        }
        let label = name.first_label().expect("single label");
        (self.min_len..=self.max_len).contains(&label.len()) && label.is_all_lowercase_alpha()
    }

    /// The rarity threshold applied to **raw** counts of a capture
    /// sampled at `sample_rate`.
    ///
    /// On a complete trace (`rate = 1`) this is the paper's 7/day. On a
    /// sampled trace, a name with true daily count `T` appears ≈ `T·r`
    /// times, so the scaled cutoff is `⌈7·r⌉` — floored at 2 because a
    /// single sampled occurrence is indistinguishable from a genuinely
    /// unique label. (The floor can admit noise names whose true count
    /// is below `2/r`; that residue is what the threshold's 99%
    /// confidence already budgets for.)
    pub fn effective_threshold(&self, sample_rate: f64) -> u32 {
        let rate = sample_rate.clamp(f64::MIN_POSITIVE, 1.0);
        if rate >= 1.0 {
            self.daily_collision_threshold
        } else {
            ((f64::from(self.daily_collision_threshold) * rate).ceil() as u32).max(2)
        }
    }

    /// Whether a record's own counts stay below the (sample-adjusted)
    /// threshold every day. Note the full technique applies the
    /// threshold to **global** per-name counts across all roots (see
    /// [`crate::crawl`]); this per-record check is a building block.
    pub fn below_collision_threshold(&self, record: &TraceRecord, sample_rate: f64) -> bool {
        let threshold = self.effective_threshold(sample_rate);
        record.count_by_day.iter().all(|c| *c < threshold)
    }

    /// Full classification of one aggregated record in isolation.
    pub fn is_chromium_probe(&self, record: &TraceRecord, sample_rate: f64) -> bool {
        self.matches_shape(&record.qname) && self.below_collision_threshold(record, sample_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, counts: &[u32]) -> TraceRecord {
        TraceRecord {
            resolver_addr: 0x01020304,
            qname: name.parse().unwrap(),
            count_by_day: counts.to_vec(),
        }
    }

    #[test]
    fn shape_boundaries() {
        let c = ChromiumClassifier::default();
        assert!(c.matches_shape(&"abcdefg".parse().unwrap())); // 7
        assert!(c.matches_shape(&"abcdefghijklmno".parse().unwrap())); // 15
        assert!(!c.matches_shape(&"abcdef".parse().unwrap())); // 6
        assert!(!c.matches_shape(&"abcdefghijklmnop".parse().unwrap())); // 16
        assert!(!c.matches_shape(&"abc-defg".parse().unwrap())); // hyphen
    }

    #[test]
    fn uppercase_is_normalised_by_dns_semantics() {
        // The previous assertion in shape_boundaries is subtle: spell it out.
        let c = ChromiumClassifier::default();
        let n: DomainName = "QWERTYU".parse().unwrap();
        assert!(c.matches_shape(&n), "names are compared case-insensitively");
    }

    #[test]
    fn collision_threshold_per_day_not_total() {
        let c = ChromiumClassifier::default();
        // 6+6 over two days: fine (each day below 7).
        assert!(c.below_collision_threshold(&record("abcdefgh", &[6, 6]), 1.0));
        // 7 on one day: rejected.
        assert!(!c.below_collision_threshold(&record("abcdefgh", &[7, 0]), 1.0));
        assert!(!c.below_collision_threshold(&record("abcdefgh", &[0, 7]), 1.0));
    }

    #[test]
    fn sampling_scales_the_threshold() {
        let c = ChromiumClassifier::default();
        assert_eq!(c.effective_threshold(1.0), 7);
        // Heavily sampled captures floor at 2: one occurrence stays a
        // probe, repeats are noise.
        assert_eq!(c.effective_threshold(0.01), 2);
        assert!(c.below_collision_threshold(&record("abcdefgh", &[1]), 0.01));
        assert!(!c.below_collision_threshold(&record("abcdefgh", &[2]), 0.01));
        // Mild sampling scales proportionally: 7 × 0.5 → 4.
        assert_eq!(c.effective_threshold(0.5), 4);
    }

    #[test]
    fn full_classification() {
        let c = ChromiumClassifier::default();
        assert!(c.is_chromium_probe(&record("qwertyuasdf", &[1, 0]), 1.0));
        // Junk names that match the shape but repeat heavily.
        assert!(!c.is_chromium_probe(&record("localdomain", &[500, 480]), 1.0));
        assert!(!c.is_chromium_probe(&record("wwwgooglecom", &[120, 130]), 1.0));
        // Wrong shape entirely.
        assert!(!c.is_chromium_probe(&record("a.root-servers.example", &[1]), 1.0));
    }
}
