//! Crawling root traces for Chromium probes.

use std::collections::HashMap;

use clientmap_net::{Asn, Rib};
use clientmap_sim::roots::RootTraceSet;
use clientmap_telemetry::MetricsRegistry;

use crate::ChromiumClassifier;

/// Per-resolver Chromium activity.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolverActivity {
    /// Resolver source address.
    pub resolver_addr: u32,
    /// Estimated Chromium probe queries over the capture window
    /// (sample-rate corrected).
    pub probes: f64,
}

/// The output of the DNS-logs technique.
#[derive(Debug, Default)]
pub struct DnsLogsResult {
    /// Per-resolver activity, sorted descending by probe count.
    pub resolvers: Vec<ResolverActivity>,
    /// Shape-matching records rejected by the collision threshold.
    pub rejected_noise_records: usize,
    /// Total records examined in public traces.
    pub records_examined: usize,
}

impl DnsLogsResult {
    /// Activity lookup by resolver address.
    pub fn probes_for(&self, addr: u32) -> f64 {
        self.resolvers
            .iter()
            .find(|r| r.resolver_addr == addr)
            .map(|r| r.probes)
            .unwrap_or(0.0)
    }

    /// Aggregates per-resolver activity to ASes through a RIB (the
    /// public Routeviews-style mapping). Resolvers outside any
    /// announced prefix are dropped, as in the paper.
    pub fn by_as(&self, rib: &Rib) -> HashMap<Asn, f64> {
        let mut out: HashMap<Asn, f64> = HashMap::new();
        for r in &self.resolvers {
            if let Some(asn) = rib.origin_of_addr(r.resolver_addr) {
                *out.entry(asn).or_insert(0.0) += r.probes;
            }
        }
        out
    }

    /// Total estimated probes.
    pub fn total_probes(&self) -> f64 {
        self.resolvers.iter().map(|r| r.probes).sum()
    }
}

/// Runs the DNS-logs technique over a trace set.
///
/// Two passes, matching the paper's method: (1) aggregate per-name
/// daily counts **across all public roots** — the collision threshold
/// is a property of the name, not of one (resolver, root) pair; (2)
/// attribute the surviving shape-matching queries to their source
/// resolvers, scaled by the capture's sampling rate.
///
/// Both passes fan each root's trace out as one work unit on
/// [`clientmap_par::par_map`] and merge the per-trace partials in trace
/// order — the ordered reduction keeps the floating-point attribution
/// sums (and therefore the resolver ranking) byte-identical at any
/// thread count.
pub fn crawl(traces: &RootTraceSet, classifier: &ChromiumClassifier) -> DnsLogsResult {
    crawl_with_metrics(traces, classifier, &MetricsRegistry::new())
}

/// [`crawl`], reporting its funnel under `dnslogs.` in `metrics`.
///
/// The counters form their own conservation law, checked end to end:
/// `records_examined == shape_mismatch + rejected_noise + attributed`.
pub fn crawl_with_metrics(
    traces: &RootTraceSet,
    classifier: &ChromiumClassifier,
    metrics: &MetricsRegistry,
) -> DnsLogsResult {
    let rate = traces.sample_rate.clamp(f64::MIN_POSITIVE, 1.0);
    let threshold = classifier.effective_threshold(rate);
    let public: Vec<&clientmap_sim::roots::RootTrace> = traces.public_traces().collect();

    // Pass 1: global per-name daily counts (shape-matching names only),
    // one partial map per root trace, merged in trace order.
    let partials: Vec<HashMap<&clientmap_dns::DomainName, Vec<u64>>> =
        clientmap_par::par_map(&public, |_, trace| {
            let mut local: HashMap<&clientmap_dns::DomainName, Vec<u64>> = HashMap::new();
            for record in &trace.records {
                if !classifier.matches_shape(&record.qname) {
                    continue;
                }
                let days = local
                    .entry(&record.qname)
                    .or_insert_with(|| vec![0; traces.days as usize]);
                for (d, c) in record.count_by_day.iter().enumerate() {
                    if d < days.len() {
                        days[d] += u64::from(*c);
                    }
                }
            }
            local
        });
    let mut global: HashMap<&clientmap_dns::DomainName, Vec<u64>> = HashMap::new();
    for partial in partials {
        for (name, days) in partial {
            match global.entry(name) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(days);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (acc, d) in e.get_mut().iter_mut().zip(days) {
                        *acc += d;
                    }
                }
            }
        }
    }
    let noisy: std::collections::HashSet<&clientmap_dns::DomainName> = global
        .iter()
        .filter(|(_, days)| days.iter().any(|c| *c >= u64::from(threshold)))
        .map(|(name, _)| *name)
        .collect();

    // Pass 2: per-resolver attribution of surviving probes. Partial
    // attribution sums are f64, so the trace-order merge below is what
    // pins the result down (float addition does not commute with
    // reordering).
    struct TraceTally {
        per_resolver: HashMap<u32, f64>,
        rejected: usize,
        examined: usize,
        shape_mismatch: u64,
        attributed: u64,
    }
    let tallies: Vec<TraceTally> = clientmap_par::par_map(&public, |_, trace| {
        let mut tally = TraceTally {
            per_resolver: HashMap::new(),
            rejected: 0,
            examined: 0,
            shape_mismatch: 0,
            attributed: 0,
        };
        for record in &trace.records {
            tally.examined += 1;
            if !classifier.matches_shape(&record.qname) {
                tally.shape_mismatch += 1;
                continue;
            }
            if noisy.contains(&record.qname) {
                tally.rejected += 1;
                continue;
            }
            tally.attributed += 1;
            *tally
                .per_resolver
                .entry(record.resolver_addr)
                .or_insert(0.0) += record.total() as f64 / rate;
        }
        tally
    });
    let mut per_resolver: HashMap<u32, f64> = HashMap::new();
    let mut rejected = 0usize;
    let mut examined = 0usize;
    let mut shape_mismatch = 0u64;
    let mut attributed = 0u64;
    for tally in tallies {
        rejected += tally.rejected;
        examined += tally.examined;
        shape_mismatch += tally.shape_mismatch;
        attributed += tally.attributed;
        for (addr, probes) in tally.per_resolver {
            *per_resolver.entry(addr).or_insert(0.0) += probes;
        }
    }
    let mut resolvers: Vec<ResolverActivity> = per_resolver
        .into_iter()
        .map(|(resolver_addr, probes)| ResolverActivity {
            resolver_addr,
            probes,
        })
        .collect();
    resolvers.sort_by(|a, b| {
        b.probes
            .total_cmp(&a.probes)
            .then(a.resolver_addr.cmp(&b.resolver_addr))
    });
    metrics
        .counter("dnslogs.records_examined")
        .add(examined as u64);
    metrics
        .counter("dnslogs.shape_mismatch")
        .add(shape_mismatch);
    metrics
        .counter("dnslogs.rejected_noise")
        .add(rejected as u64);
    metrics.counter("dnslogs.attributed").add(attributed);
    metrics
        .counter("dnslogs.noisy_names")
        .add(noisy.len() as u64);
    metrics
        .counter("dnslogs.resolvers_detected")
        .add(resolvers.len() as u64);
    DnsLogsResult {
        resolvers,
        rejected_noise_records: rejected,
        records_examined: examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_sim::{Sim, SimTime};
    use clientmap_world::{World, WorldConfig};

    fn run(seed: u64, sample_rate: f64) -> (Sim, DnsLogsResult) {
        let sim = Sim::new(World::generate(WorldConfig::tiny(seed)));
        let traces = sim.capture_root_traces(SimTime::ZERO, 2, sample_rate);
        let result = crawl(&traces, &ChromiumClassifier::default());
        (sim, result)
    }

    #[test]
    fn finds_resolvers_and_rejects_noise() {
        let (_, result) = run(61, 0.01);
        assert!(!result.resolvers.is_empty(), "no resolvers detected");
        assert!(
            result.rejected_noise_records > 0,
            "noise population must trip the threshold"
        );
        assert!(result.records_examined > result.resolvers.len());
    }

    #[test]
    fn detected_resolvers_serve_users() {
        let (sim, result) = run(62, 0.01);
        let w = sim.world();
        // Every detected resolver must be a real resolver (or Google
        // egress) that some user population points at.
        for r in result.resolvers.iter().take(50) {
            let known = w.resolvers.iter().any(|x| x.addr == r.resolver_addr)
                || sim.gpdns().pop_of_egress(r.resolver_addr).is_some();
            assert!(known, "phantom resolver {:#x}", r.resolver_addr);
            assert!(r.probes > 0.0);
        }
    }

    #[test]
    fn counts_scale_with_users() {
        let (sim, result) = run(63, 0.02);
        let w = sim.world();
        // Google egress resolvers aggregate many ASes ⇒ should rank
        // high; compare total google-egress probes vs the smallest
        // detected ISP resolver.
        let google_total: f64 = result
            .resolvers
            .iter()
            .filter(|r| sim.gpdns().pop_of_egress(r.resolver_addr).is_some())
            .map(|r| r.probes)
            .sum();
        assert!(google_total > 0.0, "google egress absent from roots");
        // Per-AS aggregation attributes google probes to the Google AS.
        let by_as = result.by_as(&w.rib);
        let google_asn = w.ases[w.google_as].asn;
        assert!(by_as.get(&google_asn).copied().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn sample_rate_correction_roughly_invariant() {
        let (_, lo) = run(64, 0.005);
        let (_, hi) = run(64, 0.05);
        let lo_total = lo.total_probes();
        let hi_total = hi.total_probes();
        let ratio = lo_total / hi_total.max(1e-9);
        assert!(
            (0.5..2.0).contains(&ratio),
            "correction broken: {lo_total} vs {hi_total}"
        );
    }

    #[test]
    fn metrics_funnel_conserves_records() {
        let sim = Sim::new(World::generate(WorldConfig::tiny(65)));
        let traces = sim.capture_root_traces(SimTime::ZERO, 2, 0.01);
        let m = clientmap_telemetry::MetricsRegistry::new();
        let result = crawl_with_metrics(&traces, &ChromiumClassifier::default(), &m);
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("dnslogs.records_examined"),
            result.records_examined as u64
        );
        assert_eq!(
            snap.counter("dnslogs.shape_mismatch")
                + snap.counter("dnslogs.rejected_noise")
                + snap.counter("dnslogs.attributed"),
            snap.counter("dnslogs.records_examined")
        );
        assert_eq!(
            snap.counter("dnslogs.resolvers_detected"),
            result.resolvers.len() as u64
        );
    }

    #[test]
    fn by_as_drops_unrouted() {
        let result = DnsLogsResult {
            resolvers: vec![ResolverActivity {
                resolver_addr: 0xDEAD_BEEF,
                probes: 5.0,
            }],
            rejected_noise_records: 0,
            records_examined: 1,
        };
        let rib = Rib::new();
        assert!(result.by_as(&rib).is_empty());
        assert_eq!(result.probes_for(0xDEAD_BEEF), 5.0);
        assert_eq!(result.probes_for(1), 0.0);
    }
}
