//! Collision analysis for random Chromium labels.
//!
//! The paper (§3.2): *"Using empirical simulations, we found Chromium
//! queries would collide fewer than 7 times per day across all roots
//! with 99% probability."* This module reproduces that analysis two
//! ways:
//!
//! - [`expected_max_multiplicity`] — analytic: with `n` labels/day
//!   drawn uniformly (length uniform in 7–15, letters uniform), the
//!   collision pressure is completely dominated by the length-7 bucket
//!   (26⁷ ≈ 8·10⁹ names); per-name multiplicities are Poisson with mean
//!   `n/(9·26⁷)`, giving a closed-form tail for "some name reaches
//!   multiplicity m".
//! - [`simulate_max_multiplicity`] — the empirical simulation, drawing
//!   labels and counting the worst per-day repeat.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct labels of length `l` (26^l as f64).
fn space(l: u32) -> f64 {
    26f64.powi(l as i32)
}

/// Analytic estimate of `P(max multiplicity ≥ m)` when `n` labels are
/// drawn per day (length uniform 7–15).
///
/// Per length bucket `l`, each of the `26^l` names receives
/// `Poisson(n_l / 26^l)` draws with `n_l = n/9`; the chance any name
/// reaches `m` is `≈ 26^l · P(Poisson(μ_l) ≥ m)`, summed over buckets
/// (union bound — tight because the events are rare).
pub fn prob_any_name_reaches(n_per_day: f64, m: u32) -> f64 {
    let mut total: f64 = 0.0;
    for l in 7..=15u32 {
        let s = space(l);
        let mu = (n_per_day / 9.0) / s;
        // P(Poisson(mu) >= m) ≈ mu^m / m!  for small mu.
        let mut term = 1.0;
        for k in 1..=m {
            term *= mu / f64::from(k);
        }
        total += s * term;
    }
    total.min(1.0)
}

/// The smallest threshold `m` such that, with probability ≥ `confidence`,
/// no label repeats `m` or more times in a day.
pub fn expected_max_multiplicity(n_per_day: f64, confidence: f64) -> u32 {
    let alpha = 1.0 - confidence;
    for m in 2..64 {
        if prob_any_name_reaches(n_per_day, m) <= alpha {
            return m;
        }
    }
    64
}

/// Empirical simulation: draws `n` labels (uniform length 7–15) and
/// returns the maximum multiplicity observed.
///
/// To keep memory bounded the simulation only tracks the length-7
/// bucket — longer labels never collide at realistic volumes (26⁸ is
/// 200 billion), which the analytic model confirms.
pub fn simulate_max_multiplicity(n: u64, seed: u64) -> u32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let mut max = 0u32;
    let space7 = 26u64.pow(7);
    for _ in 0..n {
        let len = rng.gen_range(7..=15u32);
        if len != 7 {
            // Longer labels: collision probability negligible; count as
            // singletons.
            max = max.max(1);
            continue;
        }
        let name = rng.gen_range(0..space7);
        let c = counts.entry(name).or_insert(0);
        *c += 1;
        max = max.max(*c);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_threshold_is_about_seven() {
        // Chromium-era root traffic: ~1e9 probe queries/day hit the roots.
        let m = expected_max_multiplicity(1.0e9, 0.99);
        assert!((5..=9).contains(&m), "threshold {m} not near the paper's 7");
    }

    #[test]
    fn probability_monotone_in_m_and_n() {
        let n = 1.0e9;
        assert!(prob_any_name_reaches(n, 2) >= prob_any_name_reaches(n, 3));
        assert!(prob_any_name_reaches(n, 3) >= prob_any_name_reaches(n, 6));
        assert!(prob_any_name_reaches(1.0e9, 4) >= prob_any_name_reaches(1.0e8, 4));
    }

    #[test]
    fn small_volumes_never_collide() {
        assert_eq!(expected_max_multiplicity(1.0e4, 0.99), 2);
        assert!(prob_any_name_reaches(1.0e4, 2) < 1e-3);
    }

    #[test]
    fn simulation_agrees_with_analytics_at_moderate_scale() {
        // At 2e6 draws/day the analytic model says multiplicity 2 happens
        // sometimes (len-7 bucket ≈ 222k draws over 8e9 names → expected
        // pairs ≈ 3), but 4 is essentially impossible.
        let p2 = prob_any_name_reaches(2.0e6, 2);
        assert!(p2 > 0.5, "p2 {p2}");
        let mut saw2 = false;
        for seed in 0..5 {
            let m = simulate_max_multiplicity(2_000_000, seed);
            assert!(m <= 3, "simulated max {m}");
            if m >= 2 {
                saw2 = true;
            }
        }
        assert!(saw2, "expected at least one 2-collision across runs");
    }

    #[test]
    fn simulation_deterministic() {
        assert_eq!(
            simulate_max_multiplicity(500_000, 9),
            simulate_max_multiplicity(500_000, 9)
        );
    }
}
