//! # clientmap-chromium
//!
//! The paper's second technique, **DNS logs** (§3.2): crawl DITL-style
//! root DNS traces for queries matching the signature of the Chromium
//! browser's DNS-interception probes, and count them per recursive
//! resolver as a proxy for client activity.
//!
//! The signature has two parts:
//!
//! 1. **shape** — a single label (no valid TLD) of 7–15 lowercase
//!    letters, the exact form Chromium generates;
//! 2. **rarity** — genuinely random labels almost never repeat; the
//!    paper's empirical simulation found Chromium labels collide fewer
//!    than 7 times per day across all roots with 99% probability, so any
//!    shape-matching name seen ≥ 7 times in a day is noise
//!    (misconfiguration leaks, dropped-dot typos), not Chromium.
//!
//! [`collisions`] reproduces that simulation; [`ChromiumClassifier`]
//! applies the two-part signature; [`crawl`] runs the full technique
//! over a [`clientmap_sim::roots::RootTraceSet`] and yields per-resolver
//! activity counts.

#![warn(missing_docs)]

pub mod collisions;

mod classifier;
mod crawler;

pub use classifier::ChromiumClassifier;
pub use crawler::{crawl, crawl_with_metrics, DnsLogsResult, ResolverActivity};
