//! Generation invariants across seeds (DESIGN.md §6).

use clientmap_geo::PrefixKind;
use clientmap_world::{World, WorldConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Core structural invariants hold for any seed.
    #[test]
    fn world_invariants(seed in 0u64..1_000_000) {
        let w = World::generate(WorldConfig::tiny(seed));

        // 1. Blocks are pairwise disjoint.
        let mut blocks: Vec<_> = w.blocks.iter().map(|b| b.prefix).collect();
        blocks.sort();
        for pair in blocks.windows(2) {
            prop_assert!(!pair[0].overlaps(pair[1]), "{} overlaps {}", pair[0], pair[1]);
        }

        // 2. Every routed /24 resolves to its owner through the RIB.
        for s in w.slash24s.iter().step_by(11) {
            let asn = w.rib.origin_of_prefix(s.prefix);
            prop_assert_eq!(asn.and_then(|a| w.as_id(a)), Some(s.as_id));
        }

        // 3. Per-AS user totals match the /24 spread.
        let mut per_as = vec![0.0f64; w.ases.len()];
        for s in &w.slash24s {
            per_as[s.as_id] += s.users;
        }
        for (i, a) in w.ases.iter().enumerate() {
            prop_assert!(
                (per_as[i] - a.users).abs() <= 1e-6 * a.users.max(1.0),
                "AS {}: {} vs {}", a.asn, per_as[i], a.users
            );
        }

        // 4. Active prefixes have normalised resolver mixes.
        for s in w.active_slash24s() {
            let total = s.resolver_mix.isp + s.resolver_mix.google + s.resolver_mix.other;
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        // 5. User mass lives overwhelmingly in eyeball space.
        let (eyeball, infra): (f64, f64) = w.slash24s.iter().fold((0.0, 0.0), |(e, i), s| {
            match s.kind {
                PrefixKind::Eyeball => (e + s.users, i),
                PrefixKind::Infrastructure => (e, i + s.users),
            }
        });
        prop_assert!(eyeball > 5.0 * infra, "eyeball {eyeball} infra {infra}");

        // 6. The population total lands near the configured target.
        let total = w.total_users();
        prop_assert!(
            total > 0.7 * w.config.total_users && total < 1.2 * w.config.total_users,
            "total {total}"
        );
    }
}
