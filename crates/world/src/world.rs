//! The assembled [`World`] and its query helpers.

use std::collections::HashMap;

use clientmap_geo::{CountryCode, GeoDb, Metro};
use clientmap_net::{Asn, Prefix, Rib};

use crate::types::{AsId, AsInfo, BlockInfo, ResolverId, ResolverInfo, Slash24Info};
use crate::{DomainCatalog, WorldConfig};

/// The synthetic Internet: structure, population, and ground truth.
///
/// ```
/// use clientmap_world::{World, WorldConfig};
/// let world = World::generate(WorldConfig::tiny(42));
/// assert!(world.ases.len() >= 120);
/// assert!(world.total_users() > 1.9e6);
/// // Deterministic under the seed:
/// let again = World::generate(WorldConfig::tiny(42));
/// assert_eq!(world.slash24s.len(), again.slash24s.len());
/// ```
#[derive(Debug)]
pub struct World {
    /// The generating configuration.
    pub config: WorldConfig,
    /// All ASes; index is [`AsId`].
    pub ases: Vec<AsInfo>,
    /// All allocated blocks.
    pub blocks: Vec<BlockInfo>,
    /// Every **routed** /24 with its ground truth.
    pub slash24s: Vec<Slash24Info>,
    /// All recursive resolvers; index is [`ResolverId`].
    pub resolvers: Vec<ResolverInfo>,
    /// The routing table (routed blocks only).
    pub rib: Rib,
    /// The (imperfect) geolocation database.
    pub geodb: GeoDb,
    /// The domain catalog.
    pub domains: DomainCatalog,
    /// The Google AS (operates Google Public DNS).
    pub google_as: AsId,
    /// The Microsoft AS (operates the CDN + Traffic Manager).
    pub microsoft_as: AsId,
    /// Other public resolver ids.
    pub other_public_resolvers: Vec<ResolverId>,

    asn_to_id: HashMap<Asn, AsId>,
    slash24_index: HashMap<u32, usize>,
}

impl World {
    /// Generates a world from the configuration (see the `gen` module).
    pub fn generate(config: WorldConfig) -> World {
        crate::gen::generate(config)
    }

    /// Registers the world's shape under `world.` in `m` — run-constant
    /// gauges (expressed as counters set once) that make a metrics
    /// snapshot self-describing: a diff between two runs immediately
    /// shows whether the *input* universe changed, not just the
    /// technique's behaviour. Delegates geolocation-side gauges to
    /// [`GeoDb::register_metrics`].
    pub fn register_metrics(&self, m: &clientmap_telemetry::MetricsRegistry) {
        m.counter("world.ases").add(self.ases.len() as u64);
        m.counter("world.blocks").add(self.blocks.len() as u64);
        m.counter("world.slash24s.routed")
            .add(self.slash24s.len() as u64);
        m.counter("world.slash24s.active")
            .add(self.active_slash24s().count() as u64);
        m.counter("world.resolvers")
            .add(self.resolvers.len() as u64);
        m.counter("world.domains")
            .add(self.domains.specs().len() as u64);
        m.counter("world.rib.prefixes").add(self.rib.len() as u64);
        m.counter("world.rib.announced_slash24s")
            .add(self.rib.total_announced_slash24s());
        self.geodb.register_metrics(m);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        config: WorldConfig,
        ases: Vec<AsInfo>,
        blocks: Vec<BlockInfo>,
        slash24s: Vec<Slash24Info>,
        resolvers: Vec<ResolverInfo>,
        rib: Rib,
        geodb: GeoDb,
        domains: DomainCatalog,
        google_as: AsId,
        microsoft_as: AsId,
        other_public_resolvers: Vec<ResolverId>,
    ) -> World {
        let asn_to_id = ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
        let slash24_index = slash24s
            .iter()
            .enumerate()
            .map(|(i, s)| (s.prefix.addr() >> 8, i))
            .collect();
        World {
            config,
            ases,
            blocks,
            slash24s,
            resolvers,
            rib,
            geodb,
            domains,
            google_as,
            microsoft_as,
            other_public_resolvers,
            asn_to_id,
            slash24_index,
        }
    }

    /// The world metro catalog.
    pub fn metros(&self) -> &'static [Metro] {
        clientmap_geo::world_metros()
    }

    /// Total human users.
    pub fn total_users(&self) -> f64 {
        self.ases.iter().map(|a| a.users).sum()
    }

    /// AS id for an ASN.
    pub fn as_id(&self, asn: Asn) -> Option<AsId> {
        self.asn_to_id.get(&asn).copied()
    }

    /// The AS originating `prefix` per the RIB.
    pub fn as_of_prefix(&self, prefix: Prefix) -> Option<AsId> {
        self.rib
            .origin_of_prefix(prefix)
            .and_then(|asn| self.as_id(asn))
    }

    /// The AS originating the route covering `addr`.
    pub fn as_of_addr(&self, addr: u32) -> Option<AsId> {
        self.rib
            .origin_of_addr(addr)
            .and_then(|asn| self.as_id(asn))
    }

    /// Ground-truth record for a routed /24 (exact match on the /24
    /// containing `prefix`).
    pub fn slash24(&self, prefix: Prefix) -> Option<&Slash24Info> {
        self.slash24_index
            .get(&(prefix.addr() >> 8))
            .map(|i| &self.slash24s[*i])
    }

    /// All routed /24s with any clients.
    pub fn active_slash24s(&self) -> impl Iterator<Item = &Slash24Info> {
        self.slash24s.iter().filter(|s| s.is_active())
    }

    /// Per-country human user totals.
    pub fn users_by_country(&self) -> HashMap<CountryCode, f64> {
        let mut out: HashMap<CountryCode, f64> = HashMap::new();
        for a in &self.ases {
            *out.entry(a.country).or_insert(0.0) += a.users;
        }
        out
    }

    /// The Google Public DNS resolver entry.
    pub fn google_resolver(&self) -> &ResolverInfo {
        let id = self.ases[self.google_as]
            .local_resolver
            .expect("generator installs the Google resolver");
        &self.resolvers[id]
    }

    /// Total routed /24 count (should be near the config target).
    pub fn routed_slash24s(&self) -> u64 {
        self.slash24s.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ResolverKind;
    use crate::AsCategory;
    use clientmap_geo::PrefixKind;

    fn tiny() -> World {
        World::generate(WorldConfig::tiny(7))
    }

    #[test]
    fn user_total_matches_config() {
        let w = tiny();
        let total = w.total_users();
        // The per-AS cap may shave a little off the normalised total.
        assert!(
            total > 0.8 * w.config.total_users && total <= 1.01 * w.config.total_users,
            "total {total}"
        );
    }

    #[test]
    fn routed_space_near_target() {
        let w = tiny();
        let routed = w.routed_slash24s();
        let target = w.config.target_routed_slash24s;
        assert!(
            routed as f64 > 0.7 * target as f64 && (routed as f64) < 1.4 * target as f64,
            "routed {routed}, target {target}"
        );
    }

    #[test]
    fn rib_agrees_with_slash24_table() {
        let w = tiny();
        for s in w.slash24s.iter().step_by(17) {
            let asn = w
                .rib
                .origin_of_prefix(s.prefix)
                .expect("routed /24 must resolve");
            assert_eq!(w.as_id(asn), Some(s.as_id), "prefix {}", s.prefix);
        }
    }

    #[test]
    fn geodb_covers_routed_space() {
        let w = tiny();
        for s in w.slash24s.iter().step_by(13) {
            assert!(
                w.geodb.lookup(s.prefix).is_some(),
                "no geo for {}",
                s.prefix
            );
        }
    }

    #[test]
    fn active_users_live_in_eyeball_space_mostly() {
        let w = tiny();
        let mut eyeball_users = 0.0;
        let mut infra_users = 0.0;
        for s in &w.slash24s {
            match s.kind {
                PrefixKind::Eyeball => eyeball_users += s.users,
                PrefixKind::Infrastructure => infra_users += s.users,
            }
        }
        assert!(
            eyeball_users > 10.0 * infra_users,
            "eyeball {eyeball_users} vs infra {infra_users}"
        );
    }

    #[test]
    fn per_as_users_sum_to_as_totals() {
        let w = tiny();
        let mut per_as: Vec<f64> = vec![0.0; w.ases.len()];
        for s in &w.slash24s {
            per_as[s.as_id] += s.users;
        }
        for (i, a) in w.ases.iter().enumerate() {
            assert!(
                (per_as[i] - a.users).abs() < 1e-6 * a.users.max(1.0),
                "AS {} ({:?}): spread {} != total {}",
                a.asn,
                a.category,
                per_as[i],
                a.users
            );
        }
    }

    #[test]
    fn resolver_mix_normalised_for_active_prefixes() {
        let w = tiny();
        let mut google_free = 0usize;
        let mut total_active = 0usize;
        for s in w.active_slash24s() {
            let m = s.resolver_mix;
            let total = m.isp + m.google + m.other;
            assert!((total - 1.0).abs() < 1e-9, "mix sums to {total}");
            assert!(m.google >= 0.0);
            total_active += 1;
            if m.google < 0.02 {
                google_free += 1;
            }
            // Prefixes in ASes without a local resolver put no weight there.
            if w.ases[s.as_id].local_resolver.is_none() {
                assert_eq!(m.isp, 0.0);
            }
        }
        // The Google-free population must exist but not dominate.
        assert!(google_free > 0, "no Google-free networks generated");
        assert!(
            google_free * 2 < total_active,
            "too many Google-free prefixes"
        );
    }

    #[test]
    fn special_ases_present() {
        let w = tiny();
        assert_eq!(w.google_resolver().kind, ResolverKind::GooglePublic);
        assert!(w.ases[w.microsoft_as].machines > 0.0);
        assert_eq!(
            w.other_public_resolvers.len(),
            w.config.num_other_public_resolvers
        );
        for &r in &w.other_public_resolvers {
            assert_eq!(w.resolvers[r].kind, ResolverKind::OtherPublic);
        }
    }

    #[test]
    fn unrouted_blocks_exist_and_are_not_in_rib() {
        let w = tiny();
        let unrouted: Vec<&BlockInfo> = w.blocks.iter().filter(|b| !b.routed).collect();
        assert!(!unrouted.is_empty(), "expected some unrouted allocations");
        for b in unrouted.iter().take(20) {
            assert!(w.rib.lookup(b.prefix).is_none(), "{} is routed", b.prefix);
        }
    }

    #[test]
    fn category_mix_reasonable() {
        let w = World::generate(WorldConfig::small(3));
        let isps = w
            .ases
            .iter()
            .filter(|a| a.category == AsCategory::Isp)
            .count();
        let frac = isps as f64 / w.ases.len() as f64;
        assert!((0.3..0.5).contains(&frac), "ISP fraction {frac}");
    }

    #[test]
    fn deterministic_generation() {
        let a = World::generate(WorldConfig::tiny(99));
        let b = World::generate(WorldConfig::tiny(99));
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.slash24s.len(), b.slash24s.len());
        for (x, y) in a.slash24s.iter().zip(&b.slash24s).step_by(7) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.users, y.users);
        }
        let c = World::generate(WorldConfig::tiny(100));
        // Different seed ⇒ different world (user spread almost surely).
        let diff = a
            .slash24s
            .iter()
            .zip(&c.slash24s)
            .any(|(x, y)| x.prefix != y.prefix || (x.users - y.users).abs() > 1e-9);
        assert!(diff);
    }

    #[test]
    fn lookups_roundtrip() {
        let w = tiny();
        let s = w.slash24s.iter().find(|s| s.is_active()).unwrap();
        assert_eq!(w.slash24(s.prefix).unwrap().prefix, s.prefix);
        assert_eq!(w.as_of_prefix(s.prefix), Some(s.as_id));
        assert_eq!(w.as_of_addr(s.prefix.addr() | 5), Some(s.as_id));
    }
}
