//! ASdb-style AS categories.
//!
//! The paper classifies the 29,973 ASes its techniques found but APNIC
//! missed using ASdb [38]: 39.5% ISPs, 17.4% hosting/cloud, 6.2%
//! education, remainder other categories. The generator samples
//! categories from comparable weights so that breakdown is reproducible.

use rand::Rng;

/// The category of an AS, following ASdb's top-level buckets (reduced
/// to the ones the paper's analysis distinguishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsCategory {
    /// Internet service provider with (human) subscribers.
    Isp,
    /// Hosting / cloud provider — machine clients, few humans.
    HostingCloud,
    /// Universities and schools — human users.
    Education,
    /// Enterprises running their own AS — some human users.
    Enterprise,
    /// Content / media networks (CDNs, streaming).
    ContentMedia,
    /// Government / public sector.
    Government,
    /// Pure transit / backbone — effectively no clients.
    Transit,
    /// Everything else.
    Other,
}

impl AsCategory {
    /// All categories, in a stable order.
    pub const ALL: [AsCategory; 8] = [
        AsCategory::Isp,
        AsCategory::HostingCloud,
        AsCategory::Education,
        AsCategory::Enterprise,
        AsCategory::ContentMedia,
        AsCategory::Government,
        AsCategory::Transit,
        AsCategory::Other,
    ];

    /// Sampling weight (≈ share of ASes in this category).
    pub fn weight(self) -> f64 {
        match self {
            AsCategory::Isp => 0.40,
            AsCategory::HostingCloud => 0.17,
            AsCategory::Education => 0.07,
            AsCategory::Enterprise => 0.14,
            AsCategory::ContentMedia => 0.05,
            AsCategory::Government => 0.05,
            AsCategory::Transit => 0.04,
            AsCategory::Other => 0.08,
        }
    }

    /// Whether the category hosts human eyeballs at all.
    pub fn hosts_users(self) -> bool {
        matches!(
            self,
            AsCategory::Isp
                | AsCategory::Education
                | AsCategory::Enterprise
                | AsCategory::Government
                | AsCategory::Other
        )
    }

    /// Whether the category hosts machine web clients (bots, crawlers,
    /// cloud workloads) that query DNS and CDNs without being human.
    pub fn hosts_machines(self) -> bool {
        matches!(self, AsCategory::HostingCloud | AsCategory::ContentMedia)
    }

    /// Samples a category from the weights.
    pub fn sample<R: Rng>(rng: &mut R) -> AsCategory {
        let total: f64 = Self::ALL.iter().map(|c| c.weight()).sum();
        let mut x = rng.gen_range(0.0..total);
        for c in Self::ALL {
            x -= c.weight();
            if x <= 0.0 {
                return c;
            }
        }
        AsCategory::Other
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AsCategory::Isp => "ISP",
            AsCategory::HostingCloud => "hosting/cloud",
            AsCategory::Education => "education",
            AsCategory::Enterprise => "enterprise",
            AsCategory::ContentMedia => "content/media",
            AsCategory::Government => "government",
            AsCategory::Transit => "transit",
            AsCategory::Other => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_normalised() {
        let total: f64 = AsCategory::ALL.iter().map(|c| c.weight()).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn sampling_matches_weights_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(AsCategory::sample(&mut rng)).or_insert(0usize) += 1;
        }
        for c in AsCategory::ALL {
            let got = counts.get(&c).copied().unwrap_or(0) as f64 / n as f64;
            assert!(
                (got - c.weight()).abs() < 0.02,
                "{c:?}: got {got}, want {}",
                c.weight()
            );
        }
    }

    #[test]
    fn user_and_machine_flags_disjoint_for_core_cases() {
        assert!(AsCategory::Isp.hosts_users());
        assert!(!AsCategory::Isp.hosts_machines());
        assert!(AsCategory::HostingCloud.hosts_machines());
        assert!(!AsCategory::HostingCloud.hosts_users());
        assert!(!AsCategory::Transit.hosts_users());
        assert!(!AsCategory::Transit.hosts_machines());
    }
}
