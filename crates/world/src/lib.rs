//! # clientmap-world
//!
//! A seeded, synthetic model of the Internet's *structure* and
//! *client activity*, standing in for the real Internet the paper
//! measures (its ground truth is proprietary — see DESIGN.md §2).
//!
//! [`World::generate`] builds, from a single seed:
//!
//! - **ASes** with ASdb-style categories (ISP, hosting/cloud,
//!   education, …), countries, and heavy-tailed user populations;
//! - **address allocations** (a Routeviews-style [`clientmap_net::Rib`]
//!   plus allocated-but-unrouted space), with per-AS utilisation drawn
//!   from a mixture so that some ASes use most of their space and some
//!   barely any (the spread behind the paper's Figure 4);
//! - a **geolocation database** ([`clientmap_geo::GeoDb`]) derived from
//!   the ground-truth locations through an explicit error model;
//! - **recursive resolvers** and a resolver market (ISP-local
//!   resolvers, Google Public DNS, other public anycast resolvers);
//! - a **domain catalog** with Alexa-style ranks, ECS support flags,
//!   TTLs, and authoritative scope policies;
//! - an **activity model** giving per-/24, per-domain DNS and HTTP
//!   rates with a longitude-aware diurnal cycle.
//!
//! Everything downstream — the simulated Google Public DNS, the CDN
//! logs used as validation ground truth, the root-server traces — is a
//! *view* of this one world, which is what lets the reproduction
//! compare techniques against a consistent truth.

#![warn(missing_docs)]

pub mod activity;
mod alloc;
mod category;
mod config;
mod domains;
mod gen;
mod types;
mod world;

pub use category::AsCategory;
pub use config::WorldConfig;
pub use domains::{DomainCatalog, DomainSpec, Provider};
pub use types::{
    AsId, AsInfo, PrefixId, ResolverId, ResolverInfo, ResolverKind, ResolverMix, Slash24Info,
};
pub use world::World;
