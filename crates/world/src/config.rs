//! World-generation configuration.

/// All dials of the synthetic Internet. Every distributional assumption
/// of the reproduction is an explicit field here (DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Root seed; the entire world (and every downstream simulation
    /// that derives sub-seeds from it) is a pure function of this.
    pub seed: u64,
    /// Number of ASes to generate.
    pub num_ases: usize,
    /// Total human Internet users in the world.
    pub total_users: f64,
    /// Target number of *routed* /24 equivalents across all ASes.
    pub target_routed_slash24s: u64,
    /// Fraction of allocated space that is announced nowhere
    /// (public-but-unrouted, ≈ (15.5M − 12M)/15.5M in the paper).
    pub unrouted_alloc_fraction: f64,

    // --- Resolver market ---
    /// Fraction of users whose stub points at Google Public DNS.
    pub google_dns_share: f64,
    /// Fraction of users using their ISP's resolver.
    pub isp_dns_share: f64,
    /// Remainder uses "other public DNS" (Cloudflare/Quad9-style).
    /// (Computed: 1 − google − isp.)
    /// Per-AS jitter applied to the Google share (absolute, ±).
    pub google_share_jitter: f64,
    /// Number of distinct other-public-resolver operators.
    pub num_other_public_resolvers: usize,

    // --- Browser market & Chromium probes (paper §3.2) ---
    /// Fraction of web users on Chromium-based browsers.
    pub chromium_share: f64,
    /// Mean browser launches (or network changes) per user per day —
    /// each emits interception probes.
    pub browser_launches_per_user_per_day: f64,
    /// Random-label probes emitted per launch (Chromium sends 3).
    pub probes_per_launch: u32,

    // --- Web activity ---
    /// Mean DNS queries a user's device sends its resolver per day
    /// (after OS-level caching), across all domains.
    pub dns_queries_per_user_per_day: f64,
    /// Mean HTTP(S) requests to the Microsoft CDN per user per day.
    pub cdn_requests_per_user_per_day: f64,
    /// Machine clients (bots/crawlers) per hosting-AS /24, as a mean.
    pub machines_per_hosting_slash24: f64,
    /// Diurnal amplitude `A` in `1 + A·sin(…)`, 0 = flat.
    pub diurnal_amplitude: f64,

    // --- Per-AS utilisation mixture (Figure 4's spread) ---
    /// Probability an AS is "mostly dark" (tiny active fraction).
    pub sparse_as_prob: f64,
    /// Active-/24 fraction range for sparse ASes.
    pub sparse_util_range: (f64, f64),
    /// Active-/24 fraction range for normal ASes.
    pub normal_util_range: (f64, f64),

    // --- Heavy tails ---
    /// Pareto shape for AS user populations (smaller = heavier tail).
    pub as_users_pareto_alpha: f64,
}

impl WorldConfig {
    /// A tiny world for unit tests: fast to generate and simulate.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            num_ases: 120,
            total_users: 2.0e6,
            target_routed_slash24s: 4_000,
            ..WorldConfig::default_with_seed(seed)
        }
    }

    /// A small world for integration tests and quick benches.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            num_ases: 700,
            total_users: 2.0e7,
            target_routed_slash24s: 30_000,
            ..WorldConfig::default_with_seed(seed)
        }
    }

    /// The full evaluation scale used by the `repro` harness
    /// (scaled-down Internet: ≈3k ASes, ≈250k routed /24s).
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            num_ases: 3_000,
            total_users: 2.0e8,
            target_routed_slash24s: 250_000,
            ..WorldConfig::default_with_seed(seed)
        }
    }

    /// Defaults shared by all presets.
    pub fn default_with_seed(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_ases: 1_000,
            total_users: 5.0e7,
            target_routed_slash24s: 60_000,
            unrouted_alloc_fraction: 0.22,
            google_dns_share: 0.30,
            isp_dns_share: 0.55,
            google_share_jitter: 0.15,
            num_other_public_resolvers: 4,
            chromium_share: 0.70,
            browser_launches_per_user_per_day: 2.5,
            probes_per_launch: 3,
            dns_queries_per_user_per_day: 120.0,
            cdn_requests_per_user_per_day: 30.0,
            machines_per_hosting_slash24: 6.0,
            diurnal_amplitude: 0.8,
            sparse_as_prob: 0.20,
            sparse_util_range: (0.01, 0.25),
            normal_util_range: (0.30, 1.0),
            as_users_pareto_alpha: 1.16,
        }
    }

    /// The "other public DNS" share implied by the two explicit shares.
    pub fn other_dns_share(&self) -> f64 {
        (1.0 - self.google_dns_share - self.isp_dns_share).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let t = WorldConfig::tiny(1);
        let s = WorldConfig::small(1);
        let p = WorldConfig::paper_scale(1);
        assert!(t.num_ases < s.num_ases && s.num_ases < p.num_ases);
        assert!(t.target_routed_slash24s < s.target_routed_slash24s);
        assert!(s.target_routed_slash24s < p.target_routed_slash24s);
    }

    #[test]
    fn resolver_shares_sum_to_one() {
        let c = WorldConfig::default_with_seed(0);
        let total = c.google_dns_share + c.isp_dns_share + c.other_dns_share();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn other_share_clamps() {
        let mut c = WorldConfig::default_with_seed(0);
        c.google_dns_share = 0.7;
        c.isp_dns_share = 0.7;
        assert_eq!(c.other_dns_share(), 0.0);
    }
}
