//! The domain catalog: Alexa-style ranks, ECS support, TTLs, scope
//! policies, and query popularity.
//!
//! The paper probes the four most popular domains that (a) support ECS
//! and (b) have TTL > 60 s — `www.google.com` (rank 1),
//! `www.youtube.com` (rank 2), `facebook.com` (rank 7, ECS only
//! *without* `www`), `www.wikipedia.org` (rank 13, coarse /16–/18
//! scopes) — plus one Microsoft CDN domain used for validation. The
//! catalog reproduces those properties and surrounds them with popular
//! non-qualifying domains so the *selection logic* is actually
//! exercised (a domain can fail the filter by lacking ECS or by a
//! too-short TTL).

use clientmap_dns::DomainName;
use rand::Rng;

/// Who operates a domain's authoritative servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// Google properties.
    Google,
    /// Meta properties.
    Meta,
    /// Wikimedia.
    Wikimedia,
    /// Microsoft (the CDN / Traffic Manager domain used for validation).
    Microsoft,
    /// Anyone else.
    Other,
}

/// One domain's static properties.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// The name.
    pub name: DomainName,
    /// Alexa-style global popularity rank (1 = most popular).
    pub rank: u32,
    /// Whether the authoritative supports ECS *for this exact name*.
    pub supports_ecs: bool,
    /// Authoritative record TTL, seconds.
    pub ttl_secs: u32,
    /// Range of ECS response scope lengths the authoritative assigns
    /// (inclusive); e.g. Wikipedia answers /16–/18, Google /20–/24.
    pub scope_len_range: (u8, u8),
    /// Fraction of the world's web DNS queries that target this domain.
    pub popularity_weight: f64,
    /// Operator.
    pub provider: Provider,
}

impl DomainSpec {
    /// Whether the domain passes the paper's probing filter:
    /// supports ECS and TTL > 60 s.
    pub fn probeable(&self) -> bool {
        self.supports_ecs && self.ttl_secs > 60
    }
}

/// The catalog.
#[derive(Debug, Clone)]
pub struct DomainCatalog {
    specs: Vec<DomainSpec>,
}

fn spec(
    name: &str,
    rank: u32,
    supports_ecs: bool,
    ttl_secs: u32,
    scope_len_range: (u8, u8),
    provider: Provider,
) -> DomainSpec {
    DomainSpec {
        name: name.parse().expect("static catalog names are valid"),
        rank,
        supports_ecs,
        ttl_secs,
        scope_len_range,
        // Zipf-ish popularity from rank; normalised in `new`.
        popularity_weight: 1.0 / f64::from(rank).powf(0.9),
        provider,
    }
}

impl DomainCatalog {
    /// Builds the standard catalog.
    pub fn standard() -> Self {
        let mut specs = vec![
            // The four probeable Alexa leaders (paper §3.1.1 / B.4).
            spec("www.google.com", 1, true, 300, (20, 24), Provider::Google),
            spec("www.youtube.com", 2, true, 300, (20, 24), Provider::Google),
            // Facebook's quirk: ECS only without `www`; the `www` variant
            // is *more* queried by real users but unusable for probing.
            spec("www.facebook.com", 6, false, 300, (24, 24), Provider::Meta),
            spec("facebook.com", 7, true, 300, (20, 24), Provider::Meta),
            spec(
                "www.wikipedia.org",
                13,
                true,
                600,
                (16, 18),
                Provider::Wikimedia,
            ),
            // Popular domains that FAIL the filter, so selection logic is
            // non-trivial: no ECS, or TTL ≤ 60.
            spec("www.amazon.com", 3, false, 60, (24, 24), Provider::Other),
            spec("www.baidu.com", 4, false, 300, (24, 24), Provider::Other),
            spec("twitter.com", 5, true, 30, (20, 24), Provider::Other),
            spec("www.instagram.com", 8, false, 300, (24, 24), Provider::Meta),
            spec("www.netflix.com", 9, false, 60, (24, 24), Provider::Other),
            spec("www.tiktok.com", 10, true, 60, (20, 24), Provider::Other),
            spec("www.reddit.com", 11, false, 300, (24, 24), Provider::Other),
            spec(
                "www.office.com",
                12,
                false,
                300,
                (24, 24),
                Provider::Microsoft,
            ),
            spec("www.bing.com", 14, true, 30, (20, 24), Provider::Microsoft),
            spec("www.yahoo.com", 15, false, 60, (24, 24), Provider::Other),
            // The Microsoft CDN validation domain: ECS, 5-minute TTL,
            // served by Azure Traffic Manager (paper §3.1.1).
            spec(
                "cdn.msvalidation.example",
                18,
                true,
                300,
                (20, 24),
                Provider::Microsoft,
            ),
            // A long tail of other destinations aggregated into buckets.
            spec(
                "tail-bucket-a.example",
                50,
                false,
                120,
                (24, 24),
                Provider::Other,
            ),
            spec(
                "tail-bucket-b.example",
                80,
                false,
                120,
                (24, 24),
                Provider::Other,
            ),
            spec(
                "tail-bucket-c.example",
                120,
                false,
                120,
                (24, 24),
                Provider::Other,
            ),
        ];
        // Normalise popularity to sum 1.
        let total: f64 = specs.iter().map(|s| s.popularity_weight).sum();
        for s in &mut specs {
            s.popularity_weight /= total;
        }
        DomainCatalog { specs }
    }

    /// All specs, rank order not guaranteed.
    pub fn specs(&self) -> &[DomainSpec] {
        &self.specs
    }

    /// Looks a domain up by name.
    pub fn get(&self, name: &DomainName) -> Option<&DomainSpec> {
        self.specs.iter().find(|s| &s.name == name)
    }

    /// The paper's probing set: the `n` most popular domains passing
    /// the filter (ECS + TTL > 60), by rank.
    pub fn top_probeable(&self, n: usize) -> Vec<&DomainSpec> {
        let mut v: Vec<&DomainSpec> = self.specs.iter().filter(|s| s.probeable()).collect();
        v.sort_by_key(|s| s.rank);
        v.truncate(n);
        v
    }

    /// The Microsoft CDN validation domain.
    pub fn microsoft_cdn(&self) -> &DomainSpec {
        self.specs
            .iter()
            .find(|s| s.provider == Provider::Microsoft && s.supports_ecs && s.ttl_secs > 60)
            .expect("catalog contains the validation domain")
    }

    /// Samples a domain according to query popularity.
    pub fn sample_by_popularity<R: Rng>(&self, rng: &mut R) -> &DomainSpec {
        let mut x = rng.gen_range(0.0..1.0);
        for s in &self.specs {
            x -= s.popularity_weight;
            if x <= 0.0 {
                return s;
            }
        }
        self.specs.last().expect("catalog non-empty")
    }
}

impl Default for DomainCatalog {
    fn default() -> Self {
        DomainCatalog::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probing_set_matches_paper() {
        let cat = DomainCatalog::standard();
        let top: Vec<String> = cat
            .top_probeable(4)
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        assert_eq!(
            top,
            vec![
                "www.google.com",
                "www.youtube.com",
                "facebook.com",
                "www.wikipedia.org"
            ]
        );
    }

    #[test]
    fn filter_excludes_for_the_right_reasons() {
        let cat = DomainCatalog::standard();
        // twitter has ECS but a 30s TTL.
        let tw = cat.get(&"twitter.com".parse().unwrap()).unwrap();
        assert!(tw.supports_ecs && !tw.probeable());
        // amazon has a fine rank but no ECS.
        let am = cat.get(&"www.amazon.com".parse().unwrap()).unwrap();
        assert!(!am.supports_ecs);
        // www.facebook.com (rank 6) fails, facebook.com (rank 7) passes.
        assert!(!cat
            .get(&"www.facebook.com".parse().unwrap())
            .unwrap()
            .probeable());
        assert!(cat
            .get(&"facebook.com".parse().unwrap())
            .unwrap()
            .probeable());
    }

    #[test]
    fn wikipedia_scopes_are_coarse() {
        let cat = DomainCatalog::standard();
        let w = cat.get(&"www.wikipedia.org".parse().unwrap()).unwrap();
        assert_eq!(w.scope_len_range, (16, 18));
        let g = cat.get(&"www.google.com".parse().unwrap()).unwrap();
        assert!(g.scope_len_range.0 >= 20);
    }

    #[test]
    fn popularity_normalised_and_rank_decreasing() {
        let cat = DomainCatalog::standard();
        let total: f64 = cat.specs().iter().map(|s| s.popularity_weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let g = cat.get(&"www.google.com".parse().unwrap()).unwrap();
        let w = cat.get(&"www.wikipedia.org".parse().unwrap()).unwrap();
        assert!(g.popularity_weight > w.popularity_weight);
    }

    #[test]
    fn microsoft_cdn_domain_present() {
        let cat = DomainCatalog::standard();
        let ms = cat.microsoft_cdn();
        assert_eq!(ms.ttl_secs, 300);
        assert!(ms.supports_ecs);
        assert_eq!(ms.provider, Provider::Microsoft);
    }

    #[test]
    fn sampling_prefers_popular() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cat = DomainCatalog::standard();
        let mut rng = StdRng::seed_from_u64(1);
        let mut google = 0;
        let mut wiki = 0;
        for _ in 0..10_000 {
            let s = cat.sample_by_popularity(&mut rng);
            if s.name.to_string() == "www.google.com" {
                google += 1;
            } else if s.name.to_string() == "www.wikipedia.org" {
                wiki += 1;
            }
        }
        assert!(google > wiki * 2, "google {google}, wiki {wiki}");
    }
}
