//! Sequential address-block allocator over public IPv4 space.
//!
//! Hands out aligned CIDR blocks, skipping reserved/special-use ranges
//! (RFC 1918, loopback, multicast, …) the way an RIR effectively does.
//! Allocation order is deterministic, which keeps worlds reproducible.

use clientmap_net::Prefix;

/// Ranges that are never allocated (special-use IPv4, RFC 6890 subset).
const RESERVED: &[(&str, &str)] = &[
    ("0.0.0.0/8", "this network"),
    ("10.0.0.0/8", "private"),
    ("100.64.0.0/10", "CGN shared"),
    ("127.0.0.0/8", "loopback"),
    ("169.254.0.0/16", "link local"),
    ("172.16.0.0/12", "private"),
    ("192.0.0.0/24", "IETF protocol"),
    ("192.0.2.0/24", "TEST-NET-1"),
    ("192.88.99.0/24", "6to4 relay"),
    ("192.168.0.0/16", "private"),
    ("198.18.0.0/15", "benchmarking"),
    ("198.51.100.0/24", "TEST-NET-2"),
    ("203.0.113.0/24", "TEST-NET-3"),
    ("224.0.0.0/3", "multicast + future"),
];

/// Deterministic sequential allocator.
#[derive(Debug)]
pub struct BlockAllocator {
    /// Next candidate address.
    cursor: u64,
    reserved: Vec<Prefix>,
}

impl BlockAllocator {
    /// Starts allocating at `1.0.0.0`.
    pub fn new() -> Self {
        BlockAllocator {
            cursor: 0x0100_0000,
            reserved: RESERVED
                .iter()
                .map(|(s, _)| s.parse().expect("static table is valid"))
                .collect(),
        }
    }

    /// Allocates the next available block of the given prefix length.
    /// Returns `None` when public space is exhausted.
    pub fn alloc(&mut self, len: u8) -> Option<Prefix> {
        assert!((8..=24).contains(&len), "allocator serves /8../24 blocks");
        let size = 1u64 << (32 - len);
        loop {
            // Align the cursor up to the block size.
            let aligned = (self.cursor + size - 1) & !(size - 1);
            if aligned + size > (1u64 << 32) {
                return None;
            }
            let candidate =
                Prefix::new(aligned as u32, len).expect("aligned address with valid length");
            // Skip past any reserved range we overlap.
            if let Some(r) = self.reserved.iter().find(|r| r.overlaps(candidate)) {
                let skip_to = u64::from(r.last_addr()) + 1;
                self.cursor = skip_to.max(aligned + 1);
                continue;
            }
            self.cursor = aligned + size;
            return Some(candidate);
        }
    }
}

impl Default for BlockAllocator {
    fn default() -> Self {
        BlockAllocator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_disjoint_and_aligned() {
        let mut a = BlockAllocator::new();
        let mut blocks = Vec::new();
        for len in [16u8, 20, 24, 16, 22, 24, 18] {
            let b = a.alloc(len).unwrap();
            assert_eq!(b.len(), len);
            assert_eq!(b.addr() % (1u32 << (32 - len)), 0, "unaligned {b}");
            blocks.push(b);
        }
        for i in 0..blocks.len() {
            for j in 0..i {
                assert!(
                    !blocks[i].overlaps(blocks[j]),
                    "{} vs {}",
                    blocks[i],
                    blocks[j]
                );
            }
        }
    }

    #[test]
    fn skips_reserved_ranges() {
        let mut a = BlockAllocator::new();
        // Exhaustively allocate /16s and confirm none land in reserved space.
        let reserved: Vec<Prefix> = RESERVED.iter().map(|(s, _)| s.parse().unwrap()).collect();
        let mut count = 0;
        while let Some(b) = a.alloc(16) {
            for r in &reserved {
                assert!(!b.overlaps(*r), "{b} overlaps reserved {r}");
            }
            count += 1;
            if count > 70_000 {
                panic!("allocator failed to terminate");
            }
        }
        // Public space below 224.0.0.0 minus reserved is close to
        // (223-1+1)*256 /16s minus reserved /16 equivalents; sanity band:
        assert!(count > 50_000, "only {count} /16s allocated");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = BlockAllocator::new();
        while a.alloc(8).is_some() {}
        assert!(a.alloc(24).is_none(), "after /8 exhaustion nothing remains");
    }

    #[test]
    fn deterministic() {
        let seq1: Vec<Prefix> = {
            let mut a = BlockAllocator::new();
            (0..50)
                .map(|i| a.alloc(if i % 2 == 0 { 20 } else { 24 }).unwrap())
                .collect()
        };
        let seq2: Vec<Prefix> = {
            let mut a = BlockAllocator::new();
            (0..50)
                .map(|i| a.alloc(if i % 2 == 0 { 20 } else { 24 }).unwrap())
                .collect()
        };
        assert_eq!(seq1, seq2);
    }
}
