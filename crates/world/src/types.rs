//! Core world entities: ASes, /24s, resolvers.

use clientmap_geo::{CountryCode, PrefixKind};
use clientmap_net::{Asn, GeoCoord, Prefix};

use crate::AsCategory;

/// Index into [`crate::World::ases`].
pub type AsId = usize;
/// Index into the world's allocated prefix blocks.
pub type PrefixId = usize;
/// Index into [`crate::World::resolvers`].
pub type ResolverId = usize;

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// ASdb-style category.
    pub category: AsCategory,
    /// Registration country.
    pub country: CountryCode,
    /// Index of the AS's home metro in the world metro catalog.
    pub home_metro: usize,
    /// Total human users across the AS's space.
    pub users: f64,
    /// Total machine web clients (bots/crawlers/cloud workloads).
    pub machines: f64,
    /// Allocated blocks (ids into the world's block table).
    pub blocks: Vec<PrefixId>,
    /// This AS's own recursive resolver, if it runs one.
    pub local_resolver: Option<ResolverId>,
    /// /24 equivalents announced (routed); mirrors the RIB.
    pub routed_slash24s: u64,
}

/// One allocated address block (what the RIR handed out; announced as a
/// whole or left unrouted).
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// The block.
    pub prefix: Prefix,
    /// Owning AS.
    pub as_id: AsId,
    /// Whether the block is announced in the RIB.
    pub routed: bool,
}

/// How the users of a /24 split across resolver kinds. Fractions sum
/// to 1 for prefixes with users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolverMix {
    /// Share using the AS's own resolver.
    pub isp: f64,
    /// Share using Google Public DNS.
    pub google: f64,
    /// Share using another public resolver.
    pub other: f64,
}

impl ResolverMix {
    /// A mix with everything zero (dark prefix).
    pub const DARK: ResolverMix = ResolverMix {
        isp: 0.0,
        google: 0.0,
        other: 0.0,
    };
}

/// One routed /24 and its ground truth.
#[derive(Debug, Clone)]
pub struct Slash24Info {
    /// The /24.
    pub prefix: Prefix,
    /// Owning AS.
    pub as_id: AsId,
    /// True location.
    pub coord: GeoCoord,
    /// Eyeball vs infrastructure (drives geo DB accuracy).
    pub kind: PrefixKind,
    /// Human users inside (0 for dark or infra space).
    pub users: f64,
    /// Machine web clients inside.
    pub machines: f64,
    /// Resolver split for this prefix's clients.
    pub resolver_mix: ResolverMix,
    /// The "other public" resolver this prefix's `other` share uses.
    pub other_resolver: ResolverId,
}

impl Slash24Info {
    /// Total web clients (human + machine).
    pub fn clients(&self) -> f64 {
        self.users + self.machines
    }

    /// Whether anything in the prefix generates traffic.
    pub fn is_active(&self) -> bool {
        self.clients() > 0.0
    }
}

/// What kind of recursive resolver this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolverKind {
    /// An ISP-operated resolver serving its own AS.
    IspLocal,
    /// Google Public DNS (one logical resolver; per-PoP egress addresses
    /// are handled by the simulator).
    GooglePublic,
    /// Cloudflare/Quad9-style other public anycast resolver.
    OtherPublic,
}

/// One recursive resolver.
#[derive(Debug, Clone)]
pub struct ResolverInfo {
    /// The resolver's (egress) IP address as seen by authoritatives.
    pub addr: u32,
    /// AS hosting the resolver.
    pub as_id: AsId,
    /// Kind.
    pub kind: ResolverKind,
    /// Location (for IspLocal: the AS home metro; public: operator HQ).
    pub coord: GeoCoord,
}
