//! World generation: from a [`WorldConfig`] to a fully populated
//! [`World`]. Deterministic given the seed.

use clientmap_geo::{GeoAccuracyModel, GeoDbBuilder, PrefixKind};
use clientmap_net::{Asn, Rib, SeedMixer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alloc::BlockAllocator;
use crate::types::{AsInfo, BlockInfo, ResolverInfo, ResolverKind, ResolverMix, Slash24Info};
use crate::{AsCategory, DomainCatalog, World, WorldConfig};

/// User-population scale factor per category (relative to ISP draws).
fn user_scale(cat: AsCategory) -> f64 {
    match cat {
        AsCategory::Isp => 1.0,
        AsCategory::Education => 0.04,
        AsCategory::Enterprise => 0.02,
        AsCategory::Government => 0.02,
        AsCategory::Other => 0.015,
        _ => 0.0,
    }
}

/// Machine-population scale per category.
fn machine_scale(cat: AsCategory) -> f64 {
    match cat {
        AsCategory::HostingCloud => 1.0,
        AsCategory::ContentMedia => 0.4,
        _ => 0.0,
    }
}

/// Fraction of an AS's routed space that is eyeball (vs infrastructure).
fn eyeball_space_fraction(cat: AsCategory) -> f64 {
    match cat {
        AsCategory::Isp => 0.90,
        AsCategory::Education => 0.80,
        AsCategory::Enterprise => 0.70,
        AsCategory::Government => 0.70,
        AsCategory::Other => 0.60,
        AsCategory::ContentMedia => 0.05,
        AsCategory::HostingCloud => 0.0,
        AsCategory::Transit => 0.0,
    }
}

/// A lognormal draw with median 1 and the given log-space σ.
fn lognormal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

/// Splits `total_24s` /24 equivalents into aligned block sizes
/// (/16, /18, /20, /22, /24), largest first.
fn block_lengths(total_24s: u64) -> Vec<u8> {
    let mut remaining = total_24s;
    let mut out = Vec::new();
    for (len, size) in [(16u8, 256u64), (18, 64), (20, 16), (22, 4), (24, 1)] {
        while remaining >= size {
            out.push(len);
            remaining -= size;
        }
    }
    out
}

pub(crate) fn generate(config: WorldConfig) -> World {
    let mut rng = StdRng::seed_from_u64(SeedMixer::new(config.seed).mix_str("worldgen").finish());
    let metros = clientmap_geo::world_metros();
    let metro_weight_total: f64 = metros.iter().map(|m| m.weight).sum();

    let mut ases: Vec<AsInfo> = Vec::with_capacity(config.num_ases + 8);
    let mut blocks: Vec<BlockInfo> = Vec::new();
    let mut resolvers: Vec<ResolverInfo> = Vec::new();
    let mut allocator = BlockAllocator::new();
    let mut rib = Rib::new();
    let mut geodb_builder = GeoDbBuilder::new();
    let mut next_asn = 100u32;

    // Helper: pick a metro index by population weight.
    let sample_metro = |rng: &mut StdRng| -> usize {
        let mut x = rng.gen_range(0.0..metro_weight_total);
        for (i, m) in metros.iter().enumerate() {
            x -= m.weight;
            if x <= 0.0 {
                return i;
            }
        }
        metros.len() - 1
    };

    // --- 1. Special operator ASes -------------------------------------
    // Google: hosts Google Public DNS and Google authoritatives.
    let google_as = ases.len();
    {
        let metro = metros
            .iter()
            .position(|m| m.name == "San Francisco")
            .unwrap_or(0);
        let asn = Asn(next_asn);
        next_asn += 1;
        let block = allocator.alloc(16).expect("space available");
        rib.announce(block, asn);
        blocks.push(BlockInfo {
            prefix: block,
            as_id: google_as,
            routed: true,
        });
        let coord = metros[metro].coord;
        geodb_builder.add(
            block,
            coord,
            metros[metro].country,
            PrefixKind::Infrastructure,
        );
        resolvers.push(ResolverInfo {
            addr: block.addr() | 0x0808, // the "8.8" suffix, a wink
            as_id: google_as,
            kind: ResolverKind::GooglePublic,
            coord,
        });
        ases.push(AsInfo {
            asn,
            category: AsCategory::ContentMedia,
            country: metros[metro].country,
            home_metro: metro,
            users: 0.0,
            machines: 200.0,
            blocks: vec![0],
            local_resolver: Some(0),
            routed_slash24s: block.num_slash24s(),
        });
    }

    // Microsoft: hosts the CDN and Traffic Manager authoritative.
    let microsoft_as = ases.len();
    {
        let metro = metros.iter().position(|m| m.name == "Seattle").unwrap_or(0);
        let asn = Asn(next_asn);
        next_asn += 1;
        let block = allocator.alloc(16).expect("space available");
        rib.announce(block, asn);
        let block_id = blocks.len();
        blocks.push(BlockInfo {
            prefix: block,
            as_id: microsoft_as,
            routed: true,
        });
        let coord = metros[metro].coord;
        geodb_builder.add(
            block,
            coord,
            metros[metro].country,
            PrefixKind::Infrastructure,
        );
        ases.push(AsInfo {
            asn,
            category: AsCategory::ContentMedia,
            country: metros[metro].country,
            home_metro: metro,
            users: 0.0,
            machines: 150.0,
            blocks: vec![block_id],
            local_resolver: None,
            routed_slash24s: block.num_slash24s(),
        });
    }

    // Other public resolver operators (Cloudflare/Quad9-style).
    let mut other_public_resolvers: Vec<usize> = Vec::new();
    for i in 0..config.num_other_public_resolvers {
        let as_id = ases.len();
        let metro = sample_metro(&mut rng);
        let asn = Asn(next_asn);
        next_asn += 1;
        let block = allocator.alloc(20).expect("space available");
        rib.announce(block, asn);
        let block_id = blocks.len();
        blocks.push(BlockInfo {
            prefix: block,
            as_id,
            routed: true,
        });
        let coord = metros[metro].coord;
        geodb_builder.add(
            block,
            coord,
            metros[metro].country,
            PrefixKind::Infrastructure,
        );
        let resolver_id = resolvers.len();
        resolvers.push(ResolverInfo {
            addr: block.addr() | (i as u32 + 1),
            as_id,
            kind: ResolverKind::OtherPublic,
            coord,
        });
        other_public_resolvers.push(resolver_id);
        ases.push(AsInfo {
            asn,
            category: AsCategory::ContentMedia,
            country: metros[metro].country,
            home_metro: metro,
            users: 0.0,
            machines: 20.0,
            blocks: vec![block_id],
            local_resolver: Some(resolver_id),
            routed_slash24s: block.num_slash24s(),
        });
    }

    // --- 2. Regular ASes ----------------------------------------------
    struct Draft {
        category: AsCategory,
        metro: usize,
        raw_users: f64,
        raw_machines: f64,
    }
    let mut drafts: Vec<Draft> = Vec::with_capacity(config.num_ases);
    let user_cap = 0.05 * config.total_users; // no AS above 5% of the world
                                              // Users per AS follow a lognormal: its heavy tail gives a few huge
                                              // ISPs, and its *soft minimum* gives a long tail of ASes with only
                                              // tens of users — the population APNIC's ad sampling and the
                                              // probing techniques genuinely miss (the paper's coverage-gap
                                              // structure depends on these existing). σ is derived from the
                                              // configured Pareto shape so the dial stays a single number:
                                              // smaller alpha ⇒ heavier tail ⇒ larger σ.
    let user_sigma = 3.0 / config.as_users_pareto_alpha.max(0.5);
    for _ in 0..config.num_ases {
        let category = AsCategory::sample(&mut rng);
        let metro = sample_metro(&mut rng);
        let raw_users = if category.hosts_users() {
            lognormal(&mut rng, user_sigma) * user_scale(category)
        } else {
            0.0
        };
        let raw_machines = if category.hosts_machines() {
            lognormal(&mut rng, 2.0) * machine_scale(category)
        } else {
            0.0
        };
        drafts.push(Draft {
            category,
            metro,
            raw_users,
            raw_machines,
        });
    }
    // Water-filling normalisation: scale draws to hit the target total
    // while capping any single AS at `user_cap`, redistributing the
    // excess over the uncapped ASes until it converges.
    let mut user_targets: Vec<f64> = drafts.iter().map(|d| d.raw_users).collect();
    {
        let mut capped = vec![false; user_targets.len()];
        for _ in 0..32 {
            let fixed: f64 = user_targets
                .iter()
                .zip(&capped)
                .filter(|(_, c)| **c)
                .map(|(u, _)| *u)
                .sum();
            let free_raw: f64 = drafts
                .iter()
                .zip(&capped)
                .filter(|(_, c)| !**c)
                .map(|(d, _)| d.raw_users)
                .sum();
            if free_raw <= 0.0 {
                break;
            }
            let scale = (config.total_users - fixed).max(0.0) / free_raw;
            let mut newly_capped = false;
            for (i, d) in drafts.iter().enumerate() {
                if capped[i] {
                    continue;
                }
                let v = d.raw_users * scale;
                if v > user_cap {
                    user_targets[i] = user_cap;
                    capped[i] = true;
                    newly_capped = true;
                } else {
                    user_targets[i] = v;
                }
            }
            if !newly_capped {
                break;
            }
        }
    }
    let machine_norm = {
        let raw: f64 = drafts.iter().map(|d| d.raw_machines).sum();
        if raw > 0.0 {
            // Machines globally ≈ 1.5% of the human population.
            (config.total_users * 0.015) / raw
        } else {
            0.0
        }
    };

    for (i, d) in drafts.iter().enumerate() {
        let as_id = ases.len();
        let asn = Asn(next_asn);
        next_asn += 1;
        let users = user_targets[i];
        let machines = d.raw_machines * machine_norm;
        ases.push(AsInfo {
            asn,
            category: d.category,
            country: metros[d.metro].country,
            home_metro: d.metro,
            users,
            machines,
            blocks: Vec::new(),
            local_resolver: None,
            routed_slash24s: 0,
        });
        let _ = as_id;
    }

    // --- 3. Address allocation -----------------------------------------
    // Space weight: users and machines drive space, with lognormal-ish
    // over-allocation jitter and a floor so tiny ASes still get a /24.
    let first_regular = 2 + config.num_other_public_resolvers;
    let mut space_weights: Vec<f64> = Vec::with_capacity(ases.len());
    for info in ases.iter().skip(first_regular) {
        let demand = info.users / 180.0 + info.machines / 40.0 + 1.0;
        let jitter = (rng.gen_range(-1.0f64..1.0) * 0.9).exp();
        space_weights.push(demand * jitter);
    }
    let weight_total: f64 = space_weights.iter().sum();
    let already_routed: u64 = ases
        .iter()
        .take(first_regular)
        .map(|a| a.routed_slash24s)
        .sum();
    let budget = config.target_routed_slash24s.saturating_sub(already_routed) as f64;

    for (offset, w) in space_weights.iter().enumerate() {
        let as_id = first_regular + offset;
        let routed_24s = ((w / weight_total) * budget).round().max(1.0) as u64;
        // Total allocation includes a never-routed share.
        let alloc_24s =
            (routed_24s as f64 / (1.0 - config.unrouted_alloc_fraction).max(0.1)).round() as u64;
        let lengths = block_lengths(alloc_24s.max(1));
        let mut routed_so_far = 0u64;
        for (bi, len) in lengths.iter().enumerate() {
            let Some(block) = allocator.alloc(*len) else {
                break; // address space exhausted; AS keeps what it has
            };
            // Route blocks until the routed quota is met; the first block
            // is always routed so active ASes are reachable.
            let routed = bi == 0 || routed_so_far < routed_24s;
            let block_id = blocks.len();
            blocks.push(BlockInfo {
                prefix: block,
                as_id,
                routed,
            });
            ases[as_id].blocks.push(block_id);
            if routed {
                rib.announce(block, ases[as_id].asn);
                routed_so_far += block.num_slash24s();
                ases[as_id].routed_slash24s += block.num_slash24s();
            }
        }
    }

    // --- 4. Per-/24 population ------------------------------------------
    // For each AS: choose a utilisation fraction from the mixture, mark
    // that share of eyeball /24s active, and split users among them.
    //
    // Every AS draws from its own seed-derived RNG stream, which makes
    // ASes independent work units for the deterministic executor; the
    // merge below replays each unit's output (slash24 table entries and
    // geolocation adds) in AS order, so the generated world is
    // byte-identical at any thread count.
    let mut slash24s: Vec<Slash24Info> = Vec::new();
    let mut slash24_by_addr: std::collections::HashMap<u32, usize> =
        std::collections::HashMap::new();

    // Country → metro indices, for scattering blocks within the country.
    let country_metros = |cc: clientmap_geo::CountryCode| -> Vec<usize> {
        metros
            .iter()
            .enumerate()
            .filter(|(_, m)| m.country == cc)
            .map(|(i, _)| i)
            .collect()
    };

    /// One AS's population result, replayed in AS order by the merge.
    struct AsPopulation {
        /// The AS's routed /24 entries, in address order.
        subs: Vec<Slash24Info>,
        /// Geolocation entries, in the order the sequential code added
        /// them (unrouted blocks at block granularity, routed per /24).
        geo_adds: Vec<(
            clientmap_net::Prefix,
            clientmap_net::GeoCoord,
            clientmap_geo::CountryCode,
            PrefixKind,
        )>,
    }

    let as_ids: Vec<usize> = (first_regular..ases.len()).collect();
    let populations: Vec<AsPopulation> = clientmap_par::par_map(&as_ids, |_, &as_id| {
        let mut rng = StdRng::seed_from_u64(
            SeedMixer::new(config.seed)
                .mix_str("as-pop")
                .mix(as_id as u64)
                .finish(),
        );
        let info = &ases[as_id];
        let sparse = rng.gen_bool(config.sparse_as_prob.clamp(0.0, 1.0));
        let (lo, hi) = if sparse {
            config.sparse_util_range
        } else {
            config.normal_util_range
        };
        let utilisation = rng.gen_range(lo..hi.max(lo + 1e-9));
        let eyeball_frac = eyeball_space_fraction(info.category);
        let in_country = country_metros(info.country);
        let mut out = AsPopulation {
            subs: Vec::new(),
            geo_adds: Vec::new(),
        };

        // First pass: create entries, collecting active indices + weights
        // (indices are local to this AS's `subs`).
        let mut active_user_slots: Vec<(usize, f64)> = Vec::new();
        let mut active_machine_slots: Vec<(usize, f64)> = Vec::new();
        for &block_id in &info.blocks {
            let block = &blocks[block_id];
            if !block.routed {
                // Unrouted space still gets a geolocation entry (MaxMind
                // covers allocated space), at block granularity.
                let metro = metros[info.home_metro];
                out.geo_adds.push((
                    block.prefix,
                    metro.coord,
                    info.country,
                    PrefixKind::Infrastructure,
                ));
                continue;
            }
            // Scatter the block around one in-country metro.
            let metro_idx = if in_country.is_empty() {
                info.home_metro
            } else {
                in_country[rng.gen_range(0..in_country.len())]
            };
            let metro = metros[metro_idx];
            let block_coord = metro
                .coord
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..60.0));
            for sub in block.prefix.slash24s() {
                let kind = if rng.gen_bool(eyeball_frac) {
                    PrefixKind::Eyeball
                } else {
                    PrefixKind::Infrastructure
                };
                let coord =
                    block_coord.destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..40.0));
                let idx = out.subs.len();
                let active = rng.gen_bool(utilisation);
                if active {
                    match kind {
                        PrefixKind::Eyeball => {
                            active_user_slots.push((idx, rng.gen_range(0.05f64..1.0)));
                        }
                        PrefixKind::Infrastructure => {
                            active_machine_slots.push((idx, rng.gen_range(0.05f64..1.0)));
                        }
                    }
                }
                out.subs.push(Slash24Info {
                    prefix: sub,
                    as_id,
                    coord,
                    kind,
                    users: 0.0,
                    machines: 0.0,
                    resolver_mix: ResolverMix::DARK,
                    other_resolver: 0,
                });
                out.geo_adds.push((sub, coord, info.country, kind));
            }
        }

        // Guarantee at least one active slot when there is population.
        if info.users > 0.0 && active_user_slots.is_empty() {
            // Prefer an eyeball /24; fall back to any routed /24.
            let pick = (0..out.subs.len())
                .find(|i| out.subs[*i].kind == PrefixKind::Eyeball)
                .or(if out.subs.is_empty() { None } else { Some(0) });
            if let Some(i) = pick {
                active_user_slots.push((i, 1.0));
            }
        }
        if info.machines > 0.0 && active_machine_slots.is_empty() && !out.subs.is_empty() {
            let pick = (0..out.subs.len())
                .find(|i| out.subs[*i].kind == PrefixKind::Infrastructure)
                .unwrap_or(0);
            active_machine_slots.push((pick, 1.0));
        }

        // Distribute users/machines across the active slots.
        let user_weight: f64 = active_user_slots.iter().map(|(_, w)| w).sum();
        for (idx, w) in &active_user_slots {
            out.subs[*idx].users = info.users * w / user_weight.max(f64::MIN_POSITIVE);
        }
        let machine_weight: f64 = active_machine_slots.iter().map(|(_, w)| w).sum();
        for (idx, w) in &active_machine_slots {
            out.subs[*idx].machines = info.machines * w / machine_weight.max(f64::MIN_POSITIVE);
        }
        out
    });

    // Ordered reduction: replay per-AS output in AS order.
    for pop in populations {
        for (prefix, coord, country, kind) in pop.geo_adds {
            geodb_builder.add(prefix, coord, country, kind);
        }
        for s in pop.subs {
            let idx = slash24s.len();
            slash24_by_addr.insert(s.prefix.addr() >> 8, idx);
            slash24s.push(s);
        }
    }

    // --- 5. Resolvers & per-prefix resolver mixes ------------------------
    for as_id in first_regular..ases.len() {
        // ISPs and most non-trivial user ASes run their own resolver;
        // tiny networks point their stubs at public DNS instead.
        let runs_resolver = ases[as_id].users > 50.0
            || (ases[as_id].category == AsCategory::Isp && ases[as_id].users > 0.0);
        if runs_resolver {
            if let Some(&first_block) = ases[as_id].blocks.first() {
                let block = &blocks[first_block];
                if block.routed {
                    let resolver_id = resolvers.len();
                    resolvers.push(ResolverInfo {
                        addr: block.prefix.addr() | 53,
                        as_id,
                        kind: ResolverKind::IspLocal,
                        coord: metros[ases[as_id].home_metro].coord,
                    });
                    ases[as_id].local_resolver = Some(resolver_id);
                    // The resolver's /24 is a server segment: it co-hosts
                    // machines (monitoring, mail, update fetchers) that a
                    // CDN sees — which is why resolver prefixes observed
                    // in root traces almost always also appear in CDN
                    // client logs (paper Table 1: 95.5% precision).
                    let r24 = block.prefix.addr() >> 8;
                    if let Some(&idx) = slash24_by_addr.get(&r24) {
                        if slash24s[idx].machines < 1.0 {
                            slash24s[idx].machines += 2.0 + (r24 % 5) as f64;
                            ases[as_id].machines += slash24s[idx].machines;
                        }
                    }
                }
            }
        }
    }

    // Per-AS resolver shares with jitter; per-prefix "other" assignment.
    //
    // Small networks are frequently *Google-free*: an enterprise or a
    // small ISP pins every stub to its own (or one contracted) resolver,
    // or intercepts port 53 outright. Such ASes are invisible to cache
    // probing of Google Public DNS while remaining plainly visible to a
    // CDN — the mechanism behind the paper's finding that its probing
    // covers only ~56% of the ASes Microsoft sees while still covering
    // ~95% of the *volume* (large ASes always have some 8.8.8.8 users).
    let google_free_prob = |cat: AsCategory| -> f64 {
        match cat {
            AsCategory::Isp => 0.30,
            AsCategory::Education => 0.45,
            AsCategory::Enterprise => 0.65,
            AsCategory::Government => 0.60,
            AsCategory::Other => 0.55,
            AsCategory::HostingCloud => 0.30,
            AsCategory::ContentMedia => 0.30,
            AsCategory::Transit => 0.50,
        }
    };
    // Above this many users an AS always has some Google DNS adopters.
    const ALWAYS_MIXED_USERS: f64 = 3_000.0;
    let mut as_mix: Vec<ResolverMix> = Vec::with_capacity(ases.len());
    for info in ases.iter() {
        let small = info.users < ALWAYS_MIXED_USERS;
        let google_free = small && rng.gen_bool(google_free_prob(info.category));
        let jitter = rng.gen_range(-config.google_share_jitter..=config.google_share_jitter);
        let mut google = if google_free {
            rng.gen_range(0.0..0.01)
        } else {
            (config.google_dns_share + jitter).clamp(0.02, 0.95)
        };
        let mut isp = config.isp_dns_share;
        let mut other = config.other_dns_share();
        if info.local_resolver.is_none() {
            // No local resolver: its share flows to the public ones.
            let spill = isp;
            isp = 0.0;
            let denom = (google + other).max(f64::MIN_POSITIVE);
            google += spill * google / denom;
            other += spill * other / denom;
        }
        let total = (google + isp + other).max(f64::MIN_POSITIVE);
        as_mix.push(ResolverMix {
            isp: isp / total,
            google: google / total,
            other: other / total,
        });
    }
    for s in &mut slash24s {
        if s.is_active() {
            s.resolver_mix = as_mix[s.as_id];
            s.other_resolver = if other_public_resolvers.is_empty() {
                0
            } else {
                other_public_resolvers[SeedMixer::new(config.seed)
                    .mix_str("other-resolver")
                    .mix(u64::from(s.prefix.addr()))
                    .finish() as usize
                    % other_public_resolvers.len()]
            };
        }
    }

    // --- 6. Geolocation database -----------------------------------------
    let geodb = geodb_builder.build(&GeoAccuracyModel::default(), &mut rng);

    World::assemble(
        config,
        ases,
        blocks,
        slash24s,
        resolvers,
        rib,
        geodb,
        DomainCatalog::standard(),
        google_as,
        microsoft_as,
        other_public_resolvers,
    )
}
