//! The client-activity rate model.
//!
//! All traffic in the simulation — DNS queries reaching resolvers, CDN
//! requests, Chromium interception probes — derives from per-/24 Poisson
//! rates computed here. Rates vary over the day with a longitude-aware
//! diurnal cycle, so time-of-day effects (one of the paper's motivating
//! use cases) are reproducible.
//!
//! Rates are *expected events per second*. Downstream simulators either
//! draw Poisson counts over an interval or use the closed-form
//! probability that at least one event fell in a trailing window
//! (exactly the "is there a live cache entry" question; see
//! `clientmap-sim`).

use clientmap_net::GeoCoord;

use crate::types::Slash24Info;
use crate::{DomainSpec, World, WorldConfig};

/// Seconds per day.
pub const DAY_SECS: f64 = 86_400.0;

/// The diurnal multiplier at UTC time `t_secs` for longitude `lon`:
/// `1 + A·sin(2π·(h_local − 10)/24)` clamped at 0, which peaks around
/// 16:00 local and bottoms out around 04:00. Mean over a day is 1 for
/// `A ≤ 1`.
pub fn diurnal_multiplier(t_secs: f64, lon: f64, amplitude: f64) -> f64 {
    let local_hours = (t_secs / 3600.0 + lon / 15.0).rem_euclid(24.0);
    let phase = 2.0 * std::f64::consts::PI * (local_hours - 10.0) / 24.0;
    (1.0 + amplitude * phase.sin()).max(0.0)
}

/// Which resolver population a rate is asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolverChoice {
    /// The AS-local resolver.
    IspLocal,
    /// Google Public DNS.
    Google,
    /// The prefix's assigned other public resolver.
    OtherPublic,
    /// All resolvers combined.
    All,
}

/// Rate-model view over a [`World`].
#[derive(Debug, Clone, Copy)]
pub struct ActivityModel<'w> {
    world: &'w World,
}

impl World {
    /// The activity model for this world.
    pub fn activity(&self) -> ActivityModel<'_> {
        ActivityModel { world: self }
    }
}

impl<'w> ActivityModel<'w> {
    fn cfg(&self) -> &WorldConfig {
        &self.world.config
    }

    /// The diurnal multiplier for a prefix at time `t_secs`.
    pub fn diurnal(&self, coord: GeoCoord, t_secs: f64) -> f64 {
        diurnal_multiplier(t_secs, coord.lon, self.cfg().diurnal_amplitude)
    }

    /// The share of a prefix's clients using `choice`.
    fn resolver_share(&self, s: &Slash24Info, choice: ResolverChoice) -> f64 {
        match choice {
            ResolverChoice::IspLocal => s.resolver_mix.isp,
            ResolverChoice::Google => s.resolver_mix.google,
            ResolverChoice::OtherPublic => s.resolver_mix.other,
            ResolverChoice::All => {
                s.resolver_mix.isp + s.resolver_mix.google + s.resolver_mix.other
            }
        }
    }

    /// Mean DNS queries per second from `s` for `domain`, arriving at
    /// the given resolver population, at time `t_secs`.
    ///
    /// Machines query DNS too (they fetch web resources), at a flat
    /// per-machine rate folded into the same per-day constant.
    pub fn dns_rate(
        &self,
        s: &Slash24Info,
        domain: &DomainSpec,
        choice: ResolverChoice,
        t_secs: f64,
    ) -> f64 {
        let per_client_day = self.cfg().dns_queries_per_user_per_day * domain.popularity_weight;
        let clients = s.users + s.machines;
        clients * per_client_day / DAY_SECS
            * self.resolver_share(s, choice)
            * self.diurnal(s.coord, t_secs)
    }

    /// Mean DNS queries per second from `s` across *all* catalog
    /// domains, to the given resolver population.
    pub fn dns_rate_all_domains(
        &self,
        s: &Slash24Info,
        choice: ResolverChoice,
        t_secs: f64,
    ) -> f64 {
        // Popularity weights sum to 1, so this is the total query rate.
        let clients = s.users + s.machines;
        clients * self.cfg().dns_queries_per_user_per_day / DAY_SECS
            * self.resolver_share(s, choice)
            * self.diurnal(s.coord, t_secs)
    }

    /// Mean HTTP(S) requests per second from `s` to the Microsoft CDN.
    pub fn cdn_rate(&self, s: &Slash24Info, t_secs: f64) -> f64 {
        // Machines hit CDNs disproportionately (crawlers, mirrors).
        let demand = s.users * self.cfg().cdn_requests_per_user_per_day
            + s.machines * self.cfg().cdn_requests_per_user_per_day * 3.0;
        demand / DAY_SECS * self.diurnal(s.coord, t_secs)
    }

    /// Mean Chromium interception probes per second emitted by `s`
    /// (each browser launch emits `probes_per_launch` random names).
    /// Only humans launch browsers.
    pub fn chromium_probe_rate(&self, s: &Slash24Info, t_secs: f64) -> f64 {
        s.users
            * self.cfg().chromium_share
            * self.cfg().browser_launches_per_user_per_day
            * f64::from(self.cfg().probes_per_launch)
            / DAY_SECS
            * self.diurnal(s.coord, t_secs)
    }

    /// Expected events in `[t0, t1]` for a time-varying rate, by
    /// midpoint integration over hourly steps (the diurnal cycle is
    /// smooth at that scale).
    pub fn expected_events(&self, rate_at: impl Fn(f64) -> f64, t0_secs: f64, t1_secs: f64) -> f64 {
        debug_assert!(t1_secs >= t0_secs);
        let span = t1_secs - t0_secs;
        let steps = ((span / 3600.0).ceil() as usize).max(1);
        let dt = span / steps as f64;
        (0..steps)
            .map(|i| rate_at(t0_secs + (i as f64 + 0.5) * dt) * dt)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    #[test]
    fn diurnal_mean_is_one() {
        let mut acc = 0.0;
        let n = 24 * 60;
        for i in 0..n {
            acc += diurnal_multiplier(i as f64 * 60.0, 0.0, 0.8);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean {mean}");
    }

    #[test]
    fn diurnal_peaks_in_local_afternoon() {
        // 16:00 local at lon 0 is t = 16h.
        let peak = diurnal_multiplier(16.0 * 3600.0, 0.0, 0.8);
        let trough = diurnal_multiplier(4.0 * 3600.0, 0.0, 0.8);
        assert!(peak > 1.7 && trough < 0.3, "peak {peak}, trough {trough}");
        // Longitude shifts the cycle: 16:00 UTC at lon -90 is 10:00 local.
        let shifted = diurnal_multiplier(16.0 * 3600.0, -90.0, 0.8);
        assert!(shifted < peak);
    }

    #[test]
    fn diurnal_never_negative() {
        for lon in [-180.0, -90.0, 0.0, 90.0, 179.0] {
            for h in 0..24 {
                let m = diurnal_multiplier(h as f64 * 3600.0, lon, 1.5);
                assert!(m >= 0.0);
            }
        }
    }

    #[test]
    fn rates_scale_with_population_and_popularity() {
        let w = crate::World::generate(WorldConfig::tiny(5));
        let act = w.activity();
        let s = w
            .slash24s
            .iter()
            .filter(|s| s.users > 10.0)
            .max_by(|a, b| a.users.total_cmp(&b.users))
            .expect("active prefix exists");
        let google = w.domains.get(&"www.google.com".parse().unwrap()).unwrap();
        let wiki = w
            .domains
            .get(&"www.wikipedia.org".parse().unwrap())
            .unwrap();
        let t = 12.0 * 3600.0;
        let rg = act.dns_rate(s, google, ResolverChoice::Google, t);
        let rw = act.dns_rate(s, wiki, ResolverChoice::Google, t);
        assert!(rg > rw, "google {rg} <= wiki {rw}");
        // Sum over the split equals the total.
        let total = act.dns_rate(s, google, ResolverChoice::All, t);
        let parts = act.dns_rate(s, google, ResolverChoice::IspLocal, t)
            + act.dns_rate(s, google, ResolverChoice::Google, t)
            + act.dns_rate(s, google, ResolverChoice::OtherPublic, t);
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn all_domains_rate_is_popularity_sum() {
        let w = crate::World::generate(WorldConfig::tiny(5));
        let act = w.activity();
        let s = w.active_slash24s().next().unwrap();
        let t = 0.0;
        let sum: f64 = w
            .domains
            .specs()
            .iter()
            .map(|d| act.dns_rate(s, d, ResolverChoice::All, t))
            .sum();
        let total = act.dns_rate_all_domains(s, ResolverChoice::All, t);
        assert!(
            (sum - total).abs() < 1e-9 * total.max(1e-12),
            "{sum} vs {total}"
        );
    }

    #[test]
    fn chromium_rate_zero_without_users() {
        let w = crate::World::generate(WorldConfig::tiny(5));
        let act = w.activity();
        if let Some(s) = w
            .slash24s
            .iter()
            .find(|s| s.users == 0.0 && s.machines > 0.0)
        {
            assert_eq!(act.chromium_probe_rate(s, 0.0), 0.0);
            assert!(
                act.cdn_rate(s, 43_200.0) > 0.0,
                "machines still hit the CDN"
            );
        }
    }

    #[test]
    fn expected_events_integrates_constant_rate() {
        let w = crate::World::generate(WorldConfig::tiny(5));
        let act = w.activity();
        let e = act.expected_events(|_| 2.0, 100.0, 4_100.0);
        assert!((e - 8000.0).abs() < 1e-6, "{e}");
    }
}
