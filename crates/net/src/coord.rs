//! Geographic coordinates and great-circle distance.
//!
//! Used throughout the pipeline: MaxMind-style geolocations carry a
//! coordinate plus error radius, anycast catchments are distance-driven,
//! and the cache-probing technique calibrates per-PoP *service radii*
//! (paper §3.1.1, Figure 2) in kilometres.

use std::fmt;

use crate::NetError;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoCoord {
    /// Latitude in degrees, `-90.0..=90.0`.
    pub lat: f64,
    /// Longitude in degrees, `-180.0..=180.0`.
    pub lon: f64,
}

impl GeoCoord {
    /// Builds a coordinate, validating ranges and rejecting NaN.
    pub fn new(lat: f64, lon: f64) -> Result<Self, NetError> {
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(NetError::InvalidCoordinate { lat, lon });
        }
        Ok(GeoCoord { lat, lon })
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// ```
    /// use clientmap_net::GeoCoord;
    /// let nyc = GeoCoord::new(40.7128, -74.0060).unwrap();
    /// let lon = GeoCoord::new(51.5074, -0.1278).unwrap();
    /// let d = nyc.distance_km(&lon);
    /// assert!((d - 5570.0).abs() < 20.0, "got {d}");
    /// ```
    pub fn distance_km(&self, other: &GeoCoord) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// The destination reached by travelling `distance_km` along the
    /// initial `bearing_deg` (clockwise from north). Used to scatter
    /// synthetic prefixes around population centres.
    pub fn destination(&self, bearing_deg: f64, distance_km: f64) -> GeoCoord {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        // Normalise longitude to [-180, 180].
        let mut lon_deg = lon2.to_degrees();
        while lon_deg > 180.0 {
            lon_deg -= 360.0;
        }
        while lon_deg < -180.0 {
            lon_deg += 360.0;
        }
        GeoCoord {
            lat: lat2.to_degrees().clamp(-90.0, 90.0),
            lon: lon_deg,
        }
    }
}

impl fmt::Display for GeoCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = GeoCoord::new(10.0, 20.0).unwrap();
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn distance_symmetric() {
        let a = GeoCoord::new(40.7128, -74.0060).unwrap();
        let b = GeoCoord::new(35.6762, 139.6503).unwrap();
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        assert!((d1 - d2).abs() < 1e-9);
        // NYC-Tokyo is about 10,850 km.
        assert!((d1 - 10850.0).abs() < 100.0, "got {d1}");
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoCoord::new(0.0, 0.0).unwrap();
        let b = GeoCoord::new(0.0, 180.0).unwrap();
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(GeoCoord::new(91.0, 0.0).is_err());
        assert!(GeoCoord::new(-91.0, 0.0).is_err());
        assert!(GeoCoord::new(0.0, 181.0).is_err());
        assert!(GeoCoord::new(0.0, -181.0).is_err());
        assert!(GeoCoord::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn destination_roundtrip_distance() {
        let start = GeoCoord::new(48.8566, 2.3522).unwrap(); // Paris
        for bearing in [0.0, 45.0, 135.0, 270.0] {
            let dest = start.destination(bearing, 500.0);
            let d = start.distance_km(&dest);
            assert!((d - 500.0).abs() < 1.0, "bearing {bearing}: {d}");
        }
    }

    #[test]
    fn destination_wraps_longitude() {
        let fiji = GeoCoord::new(-17.7, 178.0).unwrap();
        let east = fiji.destination(90.0, 1000.0);
        assert!((-180.0..=180.0).contains(&east.lon));
    }
}
