//! # clientmap-net
//!
//! Foundational network types for the `clientmap` measurement pipeline:
//! IPv4 prefixes and CIDR arithmetic, a binary prefix trie with
//! longest-prefix matching, /24-granularity prefix sets, a
//! Routeviews-style prefix→origin-AS routing information base (RIB),
//! and geographic coordinates with great-circle distance.
//!
//! Everything in this crate is plain data + algorithms: no I/O, no
//! global state, no panics on untrusted input. All fallible parsing
//! returns a dedicated error type.
//!
//! ## Quick example
//!
//! ```
//! use clientmap_net::{Prefix, PrefixTrie};
//!
//! let p: Prefix = "192.0.2.0/24".parse().unwrap();
//! assert!(p.contains_addr(0xC0000217)); // 192.0.2.23
//!
//! let mut trie = PrefixTrie::new();
//! trie.insert("192.0.0.0/16".parse().unwrap(), "coarse");
//! trie.insert(p, "fine");
//! let (m, v) = trie.longest_match_addr(0xC0000217).unwrap();
//! assert_eq!(m, p);
//! assert_eq!(*v, "fine");
//! ```

#![warn(missing_docs)]

mod asn;
mod coord;
mod error;
mod prefix;
mod rib;
mod set;
mod stablehash;
mod trie;

pub use asn::Asn;
pub use coord::GeoCoord;
pub use error::NetError;
pub use prefix::{Prefix, Subnets24};
pub use rib::{Rib, RibEntry};
pub use set::PrefixSet;
pub use stablehash::{splitmix64, SeedMixer};
pub use trie::PrefixTrie;
