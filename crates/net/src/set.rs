//! Sets of IPv4 prefixes with /24-granularity accounting.
//!
//! The paper's prefix-level results (Table 1, Figure 4) count `/24`
//! prefixes: a cache hit whose return scope is *less* specific than /24
//! (e.g. a /16) covers many /24s, and a scope *more* specific than /24
//! is collapsed onto its covering /24. [`PrefixSet`] implements exactly
//! that accounting: it stores a set of **disjoint** prefixes of length
//! ≤ 24 and answers membership, cardinality (in /24s) and set algebra
//! at /24 granularity.

use crate::{Prefix, PrefixTrie};

/// A set of IPv4 address space, normalised to disjoint prefixes of
/// length ≤ 24 and measured in /24 units.
///
/// ```
/// use clientmap_net::PrefixSet;
/// let mut s = PrefixSet::new();
/// s.insert("10.1.0.0/16".parse().unwrap());
/// s.insert("10.1.2.0/24".parse().unwrap()); // already covered
/// s.insert("10.2.3.128/25".parse().unwrap()); // collapses to 10.2.3.0/24
/// assert_eq!(s.num_slash24s(), 256 + 1);
/// assert!(s.contains_slash24("10.2.3.0/24".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefixSet {
    /// Invariant: keys are pairwise disjoint and have length ≤ 24.
    trie: PrefixTrie<()>,
    /// Cached total number of /24s covered.
    slash24s: u64,
}

impl PrefixSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PrefixSet {
            trie: PrefixTrie::new(),
            slash24s: 0,
        }
    }

    /// Builds a set from any iterator of prefixes.
    pub fn from_prefixes<I: IntoIterator<Item = Prefix>>(iter: I) -> Self {
        let mut s = PrefixSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }

    /// Normalises a prefix longer than /24 onto its covering /24.
    fn normalise(p: Prefix) -> Prefix {
        if p.len() > 24 {
            p.supernet(24).expect("24 <= len")
        } else {
            p
        }
    }

    /// Adds a prefix (normalised to ≤ /24). Returns `true` if the set grew.
    pub fn insert(&mut self, p: Prefix) -> bool {
        let p = Self::normalise(p);
        if self.trie.any_covering(p) {
            return false; // already fully covered by an equal/shorter entry
        }
        // Remove entries that the new prefix swallows, then insert it.
        let removed = self.trie.remove_covered_by(p);
        for (r, ()) in &removed {
            self.slash24s -= r.num_slash24s();
        }
        self.trie.insert(p, ());
        self.slash24s += p.num_slash24s();
        true
    }

    /// Number of distinct prefixes stored (after normalisation/merging).
    ///
    /// Note this is *not* the /24 count; see [`PrefixSet::num_slash24s`].
    pub fn num_prefixes(&self) -> usize {
        self.trie.len()
    }

    /// Total number of /24 prefixes covered.
    pub fn num_slash24s(&self) -> u64 {
        self.slash24s
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Whether the given /24 (or the /24 containing a longer prefix) is
    /// fully covered by the set.
    pub fn contains_slash24(&self, p: Prefix) -> bool {
        self.trie.any_covering(Self::normalise(p))
    }

    /// Whether `addr` falls inside the set.
    pub fn contains_addr(&self, addr: u32) -> bool {
        self.trie.longest_match_addr(addr).is_some()
    }

    /// Whether any part of `p` intersects the set (either direction of
    /// containment).
    pub fn intersects(&self, p: Prefix) -> bool {
        let p = Self::normalise(p);
        self.trie.any_covering(p) || self.trie.any_covered_by(p)
    }

    /// The stored (disjoint, ≤ /24) prefixes in address order.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.trie.iter().into_iter().map(|(p, _)| p).collect()
    }

    /// Iterates every covered /24, in address order.
    pub fn iter_slash24s(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.trie
            .iter()
            .into_iter()
            .map(|(p, _)| p)
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|p| p.slash24s())
    }

    /// Number of /24s in `self ∩ other`.
    pub fn intersection_slash24s(&self, other: &PrefixSet) -> u64 {
        // Iterate the set with fewer stored prefixes; for each, count
        // the /24 overlap with the other's disjoint entries.
        let (small, large) = if self.num_prefixes() <= other.num_prefixes() {
            (self, other)
        } else {
            (other, self)
        };
        let mut total = 0u64;
        for p in small.prefixes() {
            if large.trie.any_covering(p) {
                // p fully inside one of large's entries.
                total += p.num_slash24s();
            } else {
                // Sum the entries of large strictly inside p. Disjointness
                // of each set means no double counting.
                for (q, ()) in large.trie.covered_by(p) {
                    total += q.num_slash24s();
                }
            }
        }
        total
    }

    /// The /24s present in both sets, as a new set.
    pub fn intersection(&self, other: &PrefixSet) -> PrefixSet {
        let (small, large) = if self.num_prefixes() <= other.num_prefixes() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = PrefixSet::new();
        for p in small.prefixes() {
            if large.trie.any_covering(p) {
                out.insert(p);
            } else {
                for (q, ()) in large.trie.covered_by(p) {
                    out.insert(q);
                }
            }
        }
        out
    }

    /// Union with another set, as a new set.
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        let mut out = self.clone();
        for p in other.prefixes() {
            out.insert(p);
        }
        out
    }

    /// Merges `other` into `self`.
    pub fn extend(&mut self, other: &PrefixSet) {
        for p in other.prefixes() {
            self.insert(p);
        }
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = Prefix>>(iter: I) -> Self {
        PrefixSet::from_prefixes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_dedups_covered() {
        let mut s = PrefixSet::new();
        assert!(s.insert(p("10.1.0.0/16")));
        assert!(!s.insert(p("10.1.2.0/24")));
        assert!(!s.insert(p("10.1.0.0/16")));
        assert_eq!(s.num_prefixes(), 1);
        assert_eq!(s.num_slash24s(), 256);
    }

    #[test]
    fn insert_swallows_more_specific() {
        let mut s = PrefixSet::new();
        s.insert(p("10.1.2.0/24"));
        s.insert(p("10.1.3.0/24"));
        assert_eq!(s.num_slash24s(), 2);
        s.insert(p("10.1.0.0/16"));
        assert_eq!(s.num_prefixes(), 1);
        assert_eq!(s.num_slash24s(), 256);
    }

    #[test]
    fn longer_than_24_collapses() {
        let mut s = PrefixSet::new();
        s.insert(p("10.1.2.128/25"));
        s.insert(p("10.1.2.0/25")); // same /24
        assert_eq!(s.num_prefixes(), 1);
        assert_eq!(s.num_slash24s(), 1);
        assert!(s.contains_slash24(p("10.1.2.0/24")));
    }

    #[test]
    fn membership() {
        let mut s = PrefixSet::new();
        s.insert(p("10.1.0.0/16"));
        assert!(s.contains_slash24(p("10.1.200.0/24")));
        assert!(!s.contains_slash24(p("10.2.0.0/24")));
        assert!(s.contains_addr(0x0A01FF01)); // 10.1.255.1
        assert!(!s.contains_addr(0x0A020001));
        assert!(s.intersects(p("10.0.0.0/8")));
        assert!(!s.intersects(p("11.0.0.0/8")));
    }

    #[test]
    fn intersection_counts() {
        let a = PrefixSet::from_prefixes([p("10.1.0.0/16"), p("10.3.5.0/24")]);
        let b = PrefixSet::from_prefixes([p("10.1.7.0/24"), p("10.1.8.0/24"), p("10.4.0.0/16")]);
        assert_eq!(a.intersection_slash24s(&b), 2);
        assert_eq!(b.intersection_slash24s(&a), 2);
        let i = a.intersection(&b);
        assert_eq!(i.num_slash24s(), 2);
        assert!(i.contains_slash24(p("10.1.7.0/24")));
        assert!(!i.contains_slash24(p("10.3.5.0/24")));
    }

    #[test]
    fn intersection_with_coarse_entries() {
        // a has a /16, b has the same /16: overlap is all 256.
        let a = PrefixSet::from_prefixes([p("10.1.0.0/16")]);
        let b = PrefixSet::from_prefixes([p("10.0.0.0/8")]);
        assert_eq!(a.intersection_slash24s(&b), 256);
        assert_eq!(b.intersection_slash24s(&a), 256);
    }

    #[test]
    fn union_and_extend() {
        let a = PrefixSet::from_prefixes([p("10.1.2.0/24")]);
        let b = PrefixSet::from_prefixes([p("10.1.0.0/16")]);
        let u = a.union(&b);
        assert_eq!(u.num_slash24s(), 256);
        let mut c = a.clone();
        c.extend(&b);
        assert_eq!(c.num_slash24s(), 256);
    }

    #[test]
    fn iter_slash24s_enumerates() {
        let s = PrefixSet::from_prefixes([p("10.1.2.0/23"), p("192.0.2.0/24")]);
        let v: Vec<String> = s.iter_slash24s().map(|q| q.to_string()).collect();
        assert_eq!(v, vec!["10.1.2.0/24", "10.1.3.0/24", "192.0.2.0/24"]);
    }

    #[test]
    fn empty_set() {
        let s = PrefixSet::new();
        assert!(s.is_empty());
        assert_eq!(s.num_slash24s(), 0);
        assert_eq!(s.intersection_slash24s(&s), 0);
    }
}
