//! Autonomous System numbers.

use std::fmt;
use std::str::FromStr;

use crate::NetError;

/// An Autonomous System number (32-bit, RFC 6793).
///
/// ```
/// use clientmap_net::Asn;
/// let a: Asn = "AS15169".parse().unwrap();
/// assert_eq!(a, Asn(15169));
/// assert_eq!(a.to_string(), "AS15169");
/// assert_eq!("64512".parse::<Asn>().unwrap(), Asn(64512));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl Asn {
    /// AS 0 is reserved (RFC 7607) and never a valid origin.
    pub const RESERVED: Asn = Asn(0);

    /// Whether this is a private-use ASN (RFC 6996 ranges).
    pub fn is_private(&self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(NetError::InvalidAsn(s.to_string()));
        }
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| NetError::InvalidAsn(s.to_string()))
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_variants() {
        assert_eq!("AS1".parse::<Asn>().unwrap(), Asn(1));
        assert_eq!("as23456".parse::<Asn>().unwrap(), Asn(23456));
        assert_eq!("4294967295".parse::<Asn>().unwrap(), Asn(u32::MAX));
    }

    #[test]
    fn parse_rejects() {
        for s in ["", "AS", "AS-1", "ASX", "1.5", "AS99999999999"] {
            assert!(s.parse::<Asn>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(15169).is_private());
    }
}
