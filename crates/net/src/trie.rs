//! A binary prefix trie over IPv4 CIDR prefixes.
//!
//! The trie is an uncompressed binary tree of maximum depth 32 — in the
//! spirit of smoltcp's "simplicity and robustness" goals we avoid the
//! path-compression bookkeeping; depth is bounded and the pipeline's
//! tables (≲ a few hundred thousand routes) fit comfortably.
//!
//! Supports exact lookup, longest-prefix match, enumeration of entries
//! covering or covered by a prefix, and in-order iteration.

use crate::Prefix;

/// One trie node. `value` is set iff a prefix terminates here.
#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_leaf_empty(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A map from [`Prefix`] to `V` supporting longest-prefix matching.
///
/// ```
/// use clientmap_net::{Prefix, PrefixTrie};
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), 8);
/// t.insert("10.1.0.0/16".parse().unwrap(), 16);
/// let (p, v) = t.longest_match_addr(0x0A010203).unwrap(); // 10.1.2.3
/// assert_eq!(p.len(), 16);
/// assert_eq!(*v, 16);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut V> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Returns the entry for `prefix`, inserting `default()` if absent.
    pub fn get_or_insert_with(&mut self, prefix: Prefix, default: impl FnOnce() -> V) -> &mut V {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        if node.value.is_none() {
            node.value = Some(default());
            self.len += 1;
        }
        node.value.as_mut().expect("just set")
    }

    /// Removes `prefix`, returning its value, and prunes empty branches.
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        fn rec<V>(node: &mut Node<V>, prefix: Prefix, depth: u8) -> Option<V> {
            if depth == prefix.len() {
                return node.value.take();
            }
            let b = prefix.bit(depth) as usize;
            let child = node.children[b].as_deref_mut()?;
            let out = rec(child, prefix, depth + 1);
            if out.is_some() && child.is_leaf_empty() {
                node.children[b] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix, 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Longest-prefix match for a single address.
    pub fn longest_match_addr(&self, addr: u32) -> Option<(Prefix, &V)> {
        self.longest_match(Prefix::host(addr))
    }

    /// The most specific stored prefix that contains `prefix`.
    pub fn longest_match(&self, prefix: Prefix) -> Option<(Prefix, &V)> {
        let mut best = None;
        let mut node = &self.root;
        if let Some(v) = &node.value {
            best = Some((Prefix::DEFAULT, v));
        }
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        let p = prefix.supernet(depth + 1).expect("depth+1 <= prefix.len");
                        best = Some((p, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// All stored prefixes that contain `prefix`, shortest first.
    pub fn covering(&self, prefix: Prefix) -> Vec<(Prefix, &V)> {
        let mut out = Vec::new();
        let mut node = &self.root;
        if let Some(v) = &node.value {
            out.push((Prefix::DEFAULT, v));
        }
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        out.push((prefix.supernet(depth + 1).expect("in range"), v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Whether any stored prefix contains `prefix` (including equality).
    pub fn any_covering(&self, prefix: Prefix) -> bool {
        let mut node = &self.root;
        if node.value.is_some() {
            return true;
        }
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        return true;
                    }
                }
                None => return false,
            }
        }
        false
    }

    /// All stored prefixes contained within `prefix` (including equality),
    /// in address order.
    pub fn covered_by(&self, prefix: Prefix) -> Vec<(Prefix, &V)> {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            match node.children[b].as_deref() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        collect(node, prefix, &mut out);
        out
    }

    /// Whether any stored prefix is contained within `prefix`.
    pub fn any_covered_by(&self, prefix: Prefix) -> bool {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let b = prefix.bit(depth) as usize;
            match node.children[b].as_deref() {
                Some(child) => node = child,
                None => return false,
            }
        }
        subtree_nonempty(node)
    }

    /// Removes every stored prefix contained within `prefix`, returning them.
    pub fn remove_covered_by(&mut self, prefix: Prefix) -> Vec<(Prefix, V)> {
        // Walk to the subtree root, remembering the path for pruning.
        let mut removed = Vec::new();
        fn rec<V>(node: &mut Node<V>, prefix: Prefix, depth: u8, removed: &mut Vec<(Prefix, V)>) {
            if depth == prefix.len() {
                drain(node, prefix, removed);
                return;
            }
            let b = prefix.bit(depth) as usize;
            if let Some(child) = node.children[b].as_deref_mut() {
                rec(child, prefix, depth + 1, removed);
                if child.is_leaf_empty() {
                    node.children[b] = None;
                }
            }
        }
        fn drain<V>(node: &mut Node<V>, at: Prefix, removed: &mut Vec<(Prefix, V)>) {
            if let Some(v) = node.value.take() {
                removed.push((at, v));
            }
            for b in 0..2 {
                if let Some(child) = node.children[b].as_deref_mut() {
                    if let Some((l, r)) = at.children() {
                        drain(child, if b == 0 { l } else { r }, removed);
                    }
                    if child.is_leaf_empty() {
                        node.children[b] = None;
                    }
                }
            }
        }
        rec(&mut self.root, prefix, 0, &mut removed);
        self.len -= removed.len();
        removed
    }

    /// All entries in address order.
    pub fn iter(&self) -> Vec<(Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root, Prefix::DEFAULT, &mut out);
        out
    }
}

/// In-order collection of a subtree rooted at `at`.
fn collect<'a, V>(node: &'a Node<V>, at: Prefix, out: &mut Vec<(Prefix, &'a V)>) {
    if let Some(v) = &node.value {
        out.push((at, v));
    }
    if let Some((l, r)) = at.children() {
        if let Some(c) = node.children[0].as_deref() {
            collect(c, l, out);
        }
        if let Some(c) = node.children[1].as_deref() {
            collect(c, r, out);
        }
    }
}

fn subtree_nonempty<V>(node: &Node<V>) -> bool {
    if node.value.is_some() {
        return true;
    }
    node.children.iter().flatten().any(|c| subtree_nonempty(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
    }

    #[test]
    fn default_route_entry() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, "dfl");
        assert_eq!(t.get(Prefix::DEFAULT), Some(&"dfl"));
        let (m, v) = t.longest_match_addr(12345).unwrap();
        assert!(m.is_default());
        assert_eq!(*v, "dfl");
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let (m, v) = t.longest_match_addr(0x0A010203).unwrap();
        assert_eq!(m, p("10.1.2.0/24"));
        assert_eq!(*v, 24);
        let (m, _) = t.longest_match_addr(0x0A010303).unwrap(); // 10.1.3.3
        assert_eq!(m, p("10.1.0.0/16"));
        let (m, _) = t.longest_match_addr(0x0A020203).unwrap(); // 10.2.2.3
        assert_eq!(m, p("10.0.0.0/8"));
        assert!(t.longest_match_addr(0x0B000001).is_none()); // 11.0.0.1
    }

    #[test]
    fn longest_match_of_prefix_requires_containment() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), ());
        // A /16 query is *less* specific than the stored /24: no match.
        assert!(t.longest_match(p("10.1.0.0/16")).is_none());
        assert!(t.longest_match(p("10.1.2.0/24")).is_some());
        assert!(t.longest_match(p("10.1.2.0/25")).is_some());
    }

    #[test]
    fn covering_lists_all_supernets() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.insert(p("10.1.0.0/16"), ());
        t.insert(p("12.0.0.0/8"), ());
        let cov = t.covering(p("10.1.2.0/24"));
        let ps: Vec<Prefix> = cov.iter().map(|(q, _)| *q).collect();
        assert_eq!(ps, vec![p("10.0.0.0/8"), p("10.1.0.0/16")]);
        assert!(t.any_covering(p("10.1.2.0/24")));
        assert!(!t.any_covering(p("11.0.0.0/24")));
    }

    #[test]
    fn covered_by_subtree() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), 1);
        t.insert(p("10.1.2.0/24"), 2);
        t.insert(p("10.1.3.0/24"), 3);
        t.insert(p("10.2.0.0/16"), 4);
        let sub = t.covered_by(p("10.1.0.0/16"));
        let ps: Vec<Prefix> = sub.iter().map(|(q, _)| *q).collect();
        assert_eq!(
            ps,
            vec![p("10.1.0.0/16"), p("10.1.2.0/24"), p("10.1.3.0/24")]
        );
        assert!(t.any_covered_by(p("10.0.0.0/8")));
        assert!(!t.any_covered_by(p("11.0.0.0/8")));
    }

    #[test]
    fn remove_covered_by_drains_subtree() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), 1);
        t.insert(p("10.1.2.0/24"), 2);
        t.insert(p("10.2.0.0/16"), 3);
        let removed = t.remove_covered_by(p("10.1.0.0/16"));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.2.0.0/16")), Some(&3));
        assert_eq!(t.get(p("10.1.0.0/16")), None);
    }

    #[test]
    fn iter_in_address_order() {
        let mut t = PrefixTrie::new();
        for s in ["10.1.0.0/16", "9.0.0.0/8", "10.0.0.0/8", "10.1.2.0/24"] {
            t.insert(p(s), ());
        }
        let got: Vec<String> = t.iter().iter().map(|(q, _)| q.to_string()).collect();
        assert_eq!(
            got,
            vec!["9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]
        );
    }

    #[test]
    fn get_or_insert_with_counts_once() {
        let mut t: PrefixTrie<Vec<u8>> = PrefixTrie::new();
        t.get_or_insert_with(p("10.0.0.0/8"), Vec::new).push(1);
        t.get_or_insert_with(p("10.0.0.0/8"), Vec::new).push(2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&vec![1, 2]));
    }

    #[test]
    fn remove_prunes_intermediate_nodes() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), ());
        t.remove(p("10.1.2.0/24"));
        // Tree should be structurally empty again (no stale spine).
        assert!(t.root.is_leaf_empty());
    }
}
