//! Error types for `clientmap-net`.

use std::fmt;

/// Errors produced while parsing or manipulating network types.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The textual form of an IPv4 address was malformed.
    InvalidAddress(String),
    /// The prefix length was outside `0..=32`.
    InvalidPrefixLength(u8),
    /// A CIDR string was structurally malformed (missing `/`, empty, …).
    InvalidCidr(String),
    /// An AS number string was malformed.
    InvalidAsn(String),
    /// A latitude/longitude pair was out of range.
    InvalidCoordinate {
        /// Latitude in degrees.
        lat: f64,
        /// Longitude in degrees.
        lon: f64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            NetError::InvalidPrefixLength(l) => {
                write!(f, "invalid prefix length {l} (must be 0..=32)")
            }
            NetError::InvalidCidr(s) => write!(f, "invalid CIDR: {s:?}"),
            NetError::InvalidAsn(s) => write!(f, "invalid AS number: {s:?}"),
            NetError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid coordinate: lat={lat}, lon={lon}")
            }
        }
    }
}

impl std::error::Error for NetError {}
