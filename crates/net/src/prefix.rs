//! IPv4 CIDR prefixes and arithmetic.
//!
//! A [`Prefix`] is stored in canonical form: host bits below the mask are
//! always zero, so two prefixes compare equal iff they denote the same
//! address block. Addresses are carried as plain `u32` in network
//! (big-endian numeric) order, which keeps the hot paths branch-free and
//! allocation-free.

use std::fmt;
use std::str::FromStr;

use crate::NetError;

/// An IPv4 CIDR prefix in canonical (masked) form.
///
/// ```
/// use clientmap_net::Prefix;
/// let p: Prefix = "10.1.2.0/23".parse().unwrap();
/// assert_eq!(p.len(), 23);
/// assert_eq!(p.to_string(), "10.1.2.0/23");
/// assert!(p.contains("10.1.3.0/24".parse().unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network address with host bits zeroed.
    addr: u32,
    /// Prefix length, `0..=32`.
    len: u8,
}

// `len` is the CIDR prefix length; "emptiness" is meaningless for a
// prefix, so the usual `is_empty` pairing does not apply.
#[allow(clippy::len_without_is_empty)]
impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    /// Builds a prefix, masking out host bits. Fails if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::InvalidPrefixLength(len));
        }
        Ok(Prefix {
            addr: addr & mask(len),
            len,
        })
    }

    /// The /32 prefix for a single address.
    pub fn host(addr: u32) -> Self {
        Prefix { addr, len: 32 }
    }

    /// The /24 prefix containing `addr`.
    pub fn slash24_of(addr: u32) -> Self {
        Prefix {
            addr: addr & mask(24),
            len: 24,
        }
    }

    /// Network address (host bits zero).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask as a `u32` (e.g. `/24` → `0xFFFF_FF00`).
    pub fn netmask(&self) -> u32 {
        mask(self.len)
    }

    /// Number of addresses covered (as `u64`; `/0` covers 2^32).
    pub fn num_addrs(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// First address in the block.
    pub fn first_addr(&self) -> u32 {
        self.addr
    }

    /// Last address in the block.
    pub fn last_addr(&self) -> u32 {
        self.addr | !mask(self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains_addr(&self, addr: u32) -> bool {
        addr & mask(self.len) == self.addr
    }

    /// Whether `other` is equal to or more specific than `self`.
    pub fn contains(&self, other: Prefix) -> bool {
        other.len >= self.len && other.addr & mask(self.len) == self.addr
    }

    /// Whether the two prefixes share any address (one contains the other).
    pub fn overlaps(&self, other: Prefix) -> bool {
        self.contains(other) || other.contains(*self)
    }

    /// The immediate parent (one bit shorter), or `None` for `/0`.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Prefix {
                addr: self.addr & mask(len),
                len,
            })
        }
    }

    /// The enclosing prefix of length `len`, if `len <= self.len()`.
    pub fn supernet(&self, len: u8) -> Option<Prefix> {
        if len > self.len {
            None
        } else {
            Some(Prefix {
                addr: self.addr & mask(len),
                len,
            })
        }
    }

    /// Splits into the two children one bit longer, or `None` for `/32`.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let len = self.len + 1;
        let bit = 1u32 << (32 - len);
        Some((
            Prefix {
                addr: self.addr,
                len,
            },
            Prefix {
                addr: self.addr | bit,
                len,
            },
        ))
    }

    /// The sibling sharing this prefix's parent, or `None` for `/0`.
    pub fn sibling(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let bit = 1u32 << (32 - self.len);
        Some(Prefix {
            addr: self.addr ^ bit,
            len: self.len,
        })
    }

    /// Value of the bit at `depth` (0 = most significant) of the address.
    pub fn bit(&self, depth: u8) -> bool {
        debug_assert!(depth < 32);
        self.addr & (1u32 << (31 - depth)) != 0
    }

    /// Number of /24 prefixes covered. A prefix longer than /24 counts as
    /// the single /24 containing it (the paper's convention: "for return
    /// scopes smaller than /24, we assume the entire /24 is active").
    pub fn num_slash24s(&self) -> u64 {
        if self.len >= 24 {
            1
        } else {
            1u64 << (24 - self.len)
        }
    }

    /// Iterator over the /24 prefixes covered by this prefix (see
    /// [`Prefix::num_slash24s`] for the >/24 convention).
    pub fn slash24s(&self) -> Subnets24 {
        let start = (self.addr & mask(24)) >> 8;
        Subnets24 {
            next: start,
            remaining: self.num_slash24s(),
        }
    }
}

/// Iterator over the /24 sub-prefixes of a prefix.
///
/// Yielded by [`Prefix::slash24s`].
#[derive(Debug, Clone)]
pub struct Subnets24 {
    /// Next /24 index (address >> 8).
    next: u32,
    remaining: u64,
}

impl Iterator for Subnets24 {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.remaining == 0 {
            return None;
        }
        let p = Prefix {
            addr: self.next << 8,
            len: 24,
        };
        self.next = self.next.wrapping_add(1);
        self.remaining -= 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Subnets24 {}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            a >> 24,
            (a >> 16) & 0xFF,
            (a >> 8) & 0xFF,
            a & 0xFF,
            self.len
        )
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| NetError::InvalidCidr(s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| NetError::InvalidCidr(s.to_string()))?;
        let addr = parse_ipv4(addr_s)?;
        Prefix::new(addr, len)
    }
}

/// Parses a dotted-quad IPv4 address into a `u32`.
pub(crate) fn parse_ipv4(s: &str) -> Result<u32, NetError> {
    let mut octets = [0u32; 4];
    let mut count = 0;
    for part in s.split('.') {
        if count == 4 {
            return Err(NetError::InvalidAddress(s.to_string()));
        }
        // Reject empty parts and leading '+' which u8::from_str would allow.
        if part.is_empty() || !part.bytes().all(|b| b.is_ascii_digit()) {
            return Err(NetError::InvalidAddress(s.to_string()));
        }
        let v: u32 = part
            .parse()
            .map_err(|_| NetError::InvalidAddress(s.to_string()))?;
        if v > 255 {
            return Err(NetError::InvalidAddress(s.to_string()));
        }
        octets[count] = v;
        count += 1;
    }
    if count != 4 {
        return Err(NetError::InvalidAddress(s.to_string()));
    }
    Ok((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3])
}

/// Netmask for a prefix length: `mask(24) == 0xFFFF_FF00`, `mask(0) == 0`.
#[inline]
pub(crate) fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_canonicalizes_host_bits() {
        let p: Prefix = "192.0.2.77/24".parse().unwrap();
        assert_eq!(p.to_string(), "192.0.2.0/24");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "1.2.3.4",
            "1.2.3/24",
            "1.2.3.4.5/8",
            "256.0.0.0/8",
            "1.2.3.4/33",
            "1.2.3.4/-1",
            "a.b.c.d/8",
            "1.2.3.4/",
            "/24",
            "1..2.3/8",
            "+1.2.3.4/8",
        ] {
            assert!(s.parse::<Prefix>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn contains_and_overlaps() {
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Prefix = "10.2.0.0/16".parse().unwrap();
        assert!(p16.contains(p24));
        assert!(!p24.contains(p16));
        assert!(p16.overlaps(p24));
        assert!(p24.overlaps(p16));
        assert!(!p16.overlaps(other));
        assert!(p16.contains(p16));
    }

    #[test]
    fn contains_addr_boundaries() {
        let p: Prefix = "10.1.2.0/23".parse().unwrap();
        assert!(p.contains_addr(parse_ipv4("10.1.2.0").unwrap()));
        assert!(p.contains_addr(parse_ipv4("10.1.3.255").unwrap()));
        assert!(!p.contains_addr(parse_ipv4("10.1.4.0").unwrap()));
        assert!(!p.contains_addr(parse_ipv4("10.1.1.255").unwrap()));
    }

    #[test]
    fn default_route() {
        assert!(Prefix::DEFAULT.is_default());
        assert!(Prefix::DEFAULT.contains_addr(0));
        assert!(Prefix::DEFAULT.contains_addr(u32::MAX));
        assert_eq!(Prefix::DEFAULT.num_addrs(), 1u64 << 32);
    }

    #[test]
    fn parent_children_sibling() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        let parent = p.parent().unwrap();
        assert_eq!(parent.to_string(), "10.1.2.0/23");
        let (l, r) = parent.children().unwrap();
        assert_eq!(l, p);
        assert_eq!(r.to_string(), "10.1.3.0/24");
        assert_eq!(p.sibling().unwrap(), r);
        assert_eq!(r.sibling().unwrap(), p);
        assert!(Prefix::DEFAULT.parent().is_none());
        assert!(Prefix::DEFAULT.sibling().is_none());
        assert!(Prefix::host(5).children().is_none());
    }

    #[test]
    fn slash24_iteration() {
        let p: Prefix = "10.1.2.0/23".parse().unwrap();
        let subs: Vec<String> = p.slash24s().map(|q| q.to_string()).collect();
        assert_eq!(subs, vec!["10.1.2.0/24", "10.1.3.0/24"]);

        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.slash24s().count(), 1);

        // >/24 collapses onto its covering /24.
        let p: Prefix = "10.1.2.128/25".parse().unwrap();
        let subs: Vec<String> = p.slash24s().map(|q| q.to_string()).collect();
        assert_eq!(subs, vec!["10.1.2.0/24"]);
        assert_eq!(p.num_slash24s(), 1);
    }

    #[test]
    fn num_slash24s_counts() {
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        assert_eq!(p16.num_slash24s(), 256);
        assert_eq!(p16.slash24s().count(), 256);
        assert_eq!(Prefix::host(0).num_slash24s(), 1);
    }

    #[test]
    fn supernet_truncates() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.supernet(16).unwrap().to_string(), "10.1.0.0/16");
        assert_eq!(p.supernet(24).unwrap(), p);
        assert!(p.supernet(25).is_none());
    }

    #[test]
    fn first_last_addr() {
        let p: Prefix = "10.1.2.0/23".parse().unwrap();
        assert_eq!(p.first_addr(), parse_ipv4("10.1.2.0").unwrap());
        assert_eq!(p.last_addr(), parse_ipv4("10.1.3.255").unwrap());
    }

    #[test]
    fn bit_extraction() {
        let p: Prefix = "128.0.0.0/1".parse().unwrap();
        assert!(p.bit(0));
        let q: Prefix = "64.0.0.0/2".parse().unwrap();
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v: Vec<Prefix> = ["10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        v.sort();
        let strs: Vec<String> = v.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            strs,
            vec!["9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16"]
        );
    }
}
