//! A Routeviews-style prefix→origin-AS routing information base.
//!
//! The paper maps measured prefixes to ASes using the CAIDA Routeviews
//! prefix-to-AS dataset [1]. [`Rib`] plays that role here: it stores
//! announced prefixes with their origin AS and answers longest-prefix
//! match for addresses and prefixes, plus per-AS aggregates (announced
//! /24 counts drive Figure 4's denominators).

use std::collections::HashMap;

use crate::{Asn, Prefix, PrefixTrie};

/// One announced route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RibEntry {
    /// Origin AS announcing the prefix.
    pub origin: Asn,
}

/// Prefix→origin-AS table with longest-prefix matching.
///
/// ```
/// use clientmap_net::{Asn, Rib};
/// let mut rib = Rib::new();
/// rib.announce("10.0.0.0/8".parse().unwrap(), Asn(100));
/// rib.announce("10.1.0.0/16".parse().unwrap(), Asn(200));
/// assert_eq!(rib.origin_of_addr(0x0A010203), Some(Asn(200)));
/// assert_eq!(rib.origin_of_addr(0x0A020203), Some(Asn(100)));
/// assert_eq!(rib.announced_slash24s(Asn(200)), 256);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rib {
    trie: PrefixTrie<RibEntry>,
    /// Announced /24 equivalents per origin AS, counting each announced
    /// prefix independently (Routeviews convention: more-specifics of a
    /// different origin are separate announcements).
    per_as_slash24s: HashMap<Asn, u64>,
    per_as_prefixes: HashMap<Asn, u32>,
}

impl Rib {
    /// Creates an empty RIB.
    pub fn new() -> Self {
        Rib::default()
    }

    /// Announces `prefix` with the given origin. Re-announcing an existing
    /// prefix replaces its origin.
    pub fn announce(&mut self, prefix: Prefix, origin: Asn) {
        if let Some(old) = self.trie.insert(prefix, RibEntry { origin }) {
            // Replacement: retract the old origin's accounting.
            if let Some(c) = self.per_as_slash24s.get_mut(&old.origin) {
                *c -= prefix.num_slash24s();
            }
            if let Some(c) = self.per_as_prefixes.get_mut(&old.origin) {
                *c -= 1;
            }
        }
        *self.per_as_slash24s.entry(origin).or_insert(0) += prefix.num_slash24s();
        *self.per_as_prefixes.entry(origin).or_insert(0) += 1;
    }

    /// Withdraws a prefix. Returns the entry if it was announced.
    pub fn withdraw(&mut self, prefix: Prefix) -> Option<RibEntry> {
        let entry = self.trie.remove(prefix)?;
        if let Some(c) = self.per_as_slash24s.get_mut(&entry.origin) {
            *c -= prefix.num_slash24s();
        }
        if let Some(c) = self.per_as_prefixes.get_mut(&entry.origin) {
            *c -= 1;
        }
        Some(entry)
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Longest-prefix match for an address.
    pub fn lookup_addr(&self, addr: u32) -> Option<(Prefix, RibEntry)> {
        self.trie.longest_match_addr(addr).map(|(p, e)| (p, *e))
    }

    /// Longest-prefix match for a prefix (most specific announced prefix
    /// containing it).
    pub fn lookup(&self, prefix: Prefix) -> Option<(Prefix, RibEntry)> {
        self.trie.longest_match(prefix).map(|(p, e)| (p, *e))
    }

    /// Origin AS of the route covering `addr`, if any.
    pub fn origin_of_addr(&self, addr: u32) -> Option<Asn> {
        self.lookup_addr(addr).map(|(_, e)| e.origin)
    }

    /// Origin AS of the most specific route covering `prefix`.
    ///
    /// When `prefix` is *shorter* than every announced covering route
    /// (e.g. mapping a /16 ECS scope against /24 announcements), falls
    /// back to the origin of the first announced prefix *inside* it.
    pub fn origin_of_prefix(&self, prefix: Prefix) -> Option<Asn> {
        if let Some((_, e)) = self.trie.longest_match(prefix) {
            return Some(e.origin);
        }
        self.trie.covered_by(prefix).first().map(|(_, e)| e.origin)
    }

    /// All origin ASes with announcements inside `prefix` (deduplicated,
    /// unordered), including a covering announcement if present.
    pub fn origins_within(&self, prefix: Prefix) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .trie
            .covered_by(prefix)
            .iter()
            .map(|(_, e)| e.origin)
            .collect();
        if out.is_empty() {
            if let Some((_, e)) = self.trie.longest_match(prefix) {
                out.push(e.origin);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether an address is covered by any announcement.
    pub fn is_routed(&self, addr: u32) -> bool {
        self.trie.longest_match_addr(addr).is_some()
    }

    /// Number of /24 equivalents announced by an AS (0 if unknown).
    pub fn announced_slash24s(&self, asn: Asn) -> u64 {
        self.per_as_slash24s.get(&asn).copied().unwrap_or(0)
    }

    /// Number of prefixes announced by an AS (0 if unknown).
    pub fn announced_prefixes(&self, asn: Asn) -> u32 {
        self.per_as_prefixes.get(&asn).copied().unwrap_or(0)
    }

    /// Total /24 equivalents announced across every AS (the announced
    /// address space the telemetry layer reports as a run gauge).
    pub fn total_announced_slash24s(&self) -> u64 {
        self.per_as_slash24s.values().sum()
    }

    /// All ASes with at least one announcement.
    pub fn origins(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .per_as_prefixes
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(a, _)| *a)
            .collect();
        v.sort_unstable();
        v
    }

    /// All announced routes in address order.
    pub fn routes(&self) -> Vec<(Prefix, RibEntry)> {
        self.trie.iter().into_iter().map(|(p, e)| (p, *e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_resolution() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), Asn(1));
        rib.announce(p("10.1.0.0/16"), Asn(2));
        assert_eq!(rib.origin_of_addr(0x0A010101), Some(Asn(2)));
        assert_eq!(rib.origin_of_addr(0x0A020101), Some(Asn(1)));
        assert_eq!(rib.origin_of_addr(0x0B000001), None);
        assert!(rib.is_routed(0x0A000001));
        assert!(!rib.is_routed(0x0B000001));
    }

    #[test]
    fn origin_of_prefix_falls_back_to_contained() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.4.0/24"), Asn(7));
        // Query /16: no covering route, but a contained one.
        assert_eq!(rib.origin_of_prefix(p("10.1.0.0/16")), Some(Asn(7)));
        assert_eq!(rib.origin_of_prefix(p("10.2.0.0/16")), None);
    }

    #[test]
    fn origins_within_dedups() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/24"), Asn(7));
        rib.announce(p("10.1.1.0/24"), Asn(7));
        rib.announce(p("10.1.2.0/24"), Asn(9));
        assert_eq!(rib.origins_within(p("10.1.0.0/16")), vec![Asn(7), Asn(9)]);
        // A covering-only announcement also answers.
        let mut rib2 = Rib::new();
        rib2.announce(p("10.0.0.0/8"), Asn(5));
        assert_eq!(rib2.origins_within(p("10.1.0.0/16")), vec![Asn(5)]);
    }

    #[test]
    fn per_as_accounting() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(1));
        rib.announce(p("10.2.0.0/24"), Asn(1));
        rib.announce(p("11.0.0.0/24"), Asn(2));
        assert_eq!(rib.announced_slash24s(Asn(1)), 257);
        assert_eq!(rib.announced_prefixes(Asn(1)), 2);
        assert_eq!(rib.announced_slash24s(Asn(2)), 1);
        assert_eq!(rib.announced_slash24s(Asn(3)), 0);
        assert_eq!(rib.origins(), vec![Asn(1), Asn(2)]);
        assert_eq!(rib.total_announced_slash24s(), 258);

        rib.withdraw(p("10.1.0.0/16"));
        assert_eq!(rib.announced_slash24s(Asn(1)), 1);
        assert_eq!(rib.announced_prefixes(Asn(1)), 1);
        assert_eq!(rib.total_announced_slash24s(), 2);
    }

    #[test]
    fn reannounce_replaces_origin() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(1));
        rib.announce(p("10.1.0.0/16"), Asn(2));
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.origin_of_addr(0x0A010000), Some(Asn(2)));
        assert_eq!(rib.announced_slash24s(Asn(1)), 0);
        assert_eq!(rib.announced_slash24s(Asn(2)), 256);
        assert_eq!(rib.origins(), vec![Asn(2)]);
    }
}
