//! Deterministic seed derivation for simulation sub-streams.
//!
//! The whole pipeline must be reproducible from a single world seed:
//! every stochastic decision (cache-pool selection, Poisson thinning,
//! ad sampling, …) derives its RNG seed from the world seed plus a
//! stable description of *what* is being decided. [`SeedMixer`] is a
//! tiny splitmix64-based accumulator for that purpose — not a
//! cryptographic hash, just a stable, well-distributed mixer that is
//! identical across platforms and runs.

/// One splitmix64 step (public-domain constants from Vigna's splitmix64).
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Accumulates values into a 64-bit seed deterministically.
///
/// ```
/// use clientmap_net::SeedMixer;
/// let a = SeedMixer::new(42).mix(7).mix_str("pop:LHR").finish();
/// let b = SeedMixer::new(42).mix(7).mix_str("pop:LHR").finish();
/// let c = SeedMixer::new(42).mix(8).mix_str("pop:LHR").finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SeedMixer(u64);

impl SeedMixer {
    /// Starts from a root seed.
    pub fn new(seed: u64) -> Self {
        SeedMixer(splitmix64(seed))
    }

    /// Mixes in one 64-bit value.
    #[must_use]
    pub fn mix(self, v: u64) -> Self {
        SeedMixer(splitmix64(self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Mixes in a string byte-by-byte (chunked for speed).
    #[must_use]
    pub fn mix_str(self, s: &str) -> Self {
        let mut m = self.mix(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            m = m.mix(u64::from_le_bytes(v));
        }
        m
    }

    /// The derived seed.
    pub fn finish(self) -> u64 {
        splitmix64(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let base = SeedMixer::new(1).mix(2).mix(3).finish();
        assert_eq!(base, SeedMixer::new(1).mix(2).mix(3).finish());
        assert_ne!(
            base,
            SeedMixer::new(1).mix(3).mix(2).finish(),
            "order matters"
        );
        assert_ne!(
            base,
            SeedMixer::new(2).mix(2).mix(3).finish(),
            "seed matters"
        );
    }

    #[test]
    fn string_mixing_distinguishes() {
        let a = SeedMixer::new(5).mix_str("ab").finish();
        let b = SeedMixer::new(5).mix_str("ba").finish();
        let c = SeedMixer::new(5).mix_str("abc").finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Length prefixing prevents concatenation ambiguity.
        let d = SeedMixer::new(5).mix_str("a").mix_str("b").finish();
        assert_ne!(a, d);
    }

    #[test]
    fn splitmix_spreads_small_inputs() {
        // Consecutive inputs must not produce close outputs.
        let outs: Vec<u64> = (0..100).map(splitmix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        // Crude avalanche check: high bit set roughly half the time.
        let high = outs.iter().filter(|v| *v >> 63 == 1).count();
        assert!((30..70).contains(&high), "high-bit count {high}");
    }
}
