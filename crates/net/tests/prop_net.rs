//! Property-based tests for clientmap-net invariants (DESIGN.md §6).

use std::collections::BTreeMap;

use clientmap_net::{Asn, Prefix, PrefixSet, PrefixTrie, Rib};
use proptest::prelude::*;

/// Arbitrary canonical prefix.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(addr, len).unwrap())
}

/// Arbitrary prefix with length ≤ 24 (the PrefixSet domain).
fn arb_coarse_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 8u8..=24).prop_map(|(addr, len)| Prefix::new(addr, len).unwrap())
}

proptest! {
    /// Display/FromStr round-trip is the identity on canonical prefixes.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    /// A prefix contains exactly its own address range.
    #[test]
    fn prefix_contains_addr_matches_range(p in arb_prefix(), addr in any::<u32>()) {
        let expected = (p.first_addr()..=p.last_addr()).contains(&addr);
        prop_assert_eq!(p.contains_addr(addr), expected);
    }

    /// Containment is antisymmetric except for equality, and transitive
    /// through the parent chain.
    #[test]
    fn prefix_containment_laws(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.contains(p));
            prop_assert!(p == parent || !p.contains(parent));
        }
        if let Some((l, r)) = p.children() {
            prop_assert!(p.contains(l) && p.contains(r));
            prop_assert!(!l.overlaps(r));
        }
    }

    /// slash24s() yields exactly num_slash24s() distinct /24s inside p.
    #[test]
    fn slash24_enumeration_consistent(p in arb_prefix()) {
        // Keep the enumeration small.
        prop_assume!(p.len() >= 16);
        let subs: Vec<Prefix> = p.slash24s().collect();
        prop_assert_eq!(subs.len() as u64, p.num_slash24s());
        for s in &subs {
            prop_assert_eq!(s.len(), 24);
            if p.len() <= 24 {
                prop_assert!(p.contains(*s));
            } else {
                prop_assert!(s.contains(p));
            }
        }
        let mut dedup = subs.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), subs.len());
    }

    /// Trie insert/get/remove agrees with a BTreeMap model, and
    /// longest_match_addr agrees with a linear scan.
    #[test]
    fn trie_agrees_with_model(
        entries in prop::collection::vec((arb_prefix(), any::<u16>()), 0..40),
        probes in prop::collection::vec(any::<u32>(), 0..20),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<Prefix, u16> = BTreeMap::new();
        for (p, v) in &entries {
            prop_assert_eq!(trie.insert(*p, *v), model.insert(*p, *v));
        }
        prop_assert_eq!(trie.len(), model.len());

        if !entries.is_empty() {
            for idx in removals {
                let (p, _) = entries[idx.index(entries.len())];
                prop_assert_eq!(trie.remove(p), model.remove(&p));
            }
        }
        prop_assert_eq!(trie.len(), model.len());

        for (p, v) in &model {
            prop_assert_eq!(trie.get(*p), Some(v));
        }
        for addr in probes {
            let expect = model
                .iter()
                .filter(|(p, _)| p.contains_addr(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (*p, *v));
            let got = trie.longest_match_addr(addr).map(|(p, v)| (p, *v));
            // Tie-break: equal length can only be the same prefix.
            prop_assert_eq!(got, expect);
        }

        // iter() is sorted and complete.
        let listed: Vec<Prefix> = trie.iter().into_iter().map(|(p, _)| p).collect();
        let expect: Vec<Prefix> = model.keys().copied().collect();
        let mut sorted = listed.clone();
        sorted.sort();
        prop_assert_eq!(&sorted, &expect);
    }

    /// PrefixSet /24 cardinality equals the size of the naive set of
    /// covered /24s, and membership agrees with the naive model.
    #[test]
    fn prefix_set_counts_match_naive(
        prefixes in prop::collection::vec(arb_coarse_prefix(), 0..20),
        probe in arb_coarse_prefix(),
    ) {
        // Keep the naive expansion bounded.
        let prefixes: Vec<Prefix> = prefixes
            .into_iter()
            .map(|p| if p.len() < 16 { p.supernet(p.len()).unwrap() } else { p })
            .filter(|p| p.len() >= 16)
            .collect();
        let set = PrefixSet::from_prefixes(prefixes.iter().copied());
        let mut naive: Vec<Prefix> = prefixes.iter().flat_map(|p| p.slash24s()).collect();
        naive.sort();
        naive.dedup();
        prop_assert_eq!(set.num_slash24s(), naive.len() as u64);

        let expected = naive.binary_search(&probe.supernet(24).unwrap_or(probe)).is_ok()
            || naive.iter().any(|q| q.contains(probe) || probe.contains(*q));
        // contains_slash24 asks whether probe's covering /24 is inside the
        // set; compare against the naive /24 list directly when len>=24.
        if probe.len() >= 24 {
            let p24 = probe.supernet(24).unwrap();
            prop_assert_eq!(set.contains_slash24(probe), naive.contains(&p24));
        } else {
            // For shorter probes, intersects() is the meaningful question.
            prop_assert_eq!(set.intersects(probe), expected);
        }
    }

    /// Set algebra: |A∩B| counted symmetrically and bounded by min(|A|,|B|);
    /// |A∪B| = |A| + |B| − |A∩B|.
    #[test]
    fn prefix_set_algebra(
        a in prop::collection::vec(arb_coarse_prefix(), 0..15),
        b in prop::collection::vec(arb_coarse_prefix(), 0..15),
    ) {
        let a: Vec<Prefix> = a.into_iter().filter(|p| p.len() >= 16).collect();
        let b: Vec<Prefix> = b.into_iter().filter(|p| p.len() >= 16).collect();
        let sa = PrefixSet::from_prefixes(a.iter().copied());
        let sb = PrefixSet::from_prefixes(b.iter().copied());
        let i1 = sa.intersection_slash24s(&sb);
        let i2 = sb.intersection_slash24s(&sa);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1 <= sa.num_slash24s().min(sb.num_slash24s()));
        let u = sa.union(&sb);
        prop_assert_eq!(u.num_slash24s(), sa.num_slash24s() + sb.num_slash24s() - i1);
        let inter = sa.intersection(&sb);
        prop_assert_eq!(inter.num_slash24s(), i1);
    }

    /// RIB per-AS /24 accounting equals the sum over announced routes.
    #[test]
    fn rib_accounting_matches_routes(
        routes in prop::collection::vec((arb_coarse_prefix(), 1u32..5), 0..25),
    ) {
        let mut rib = Rib::new();
        for (p, asn) in &routes {
            rib.announce(*p, Asn(*asn));
        }
        for asn in rib.origins() {
            let expect: u64 = rib
                .routes()
                .iter()
                .filter(|(_, e)| e.origin == asn)
                .map(|(p, _)| p.num_slash24s())
                .sum();
            prop_assert_eq!(rib.announced_slash24s(asn), expect);
        }
    }
}
