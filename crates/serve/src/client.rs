//! The query client: a blocking request/reply connection to a running
//! `clientmap serve`, plus the text trace format the determinism
//! harness replays.
//!
//! A trace is a newline-separated script, one query per line:
//!
//! ```text
//! gen 2            # block until generation 2 is published
//! info             # introspect the latest generation
//! as 64500         # one AS's activity row
//! country DE       # one country's aggregate
//! prefix 10.0.0.0/16
//! top 5            # top-5 ASes by active /24s
//! ecdf 16          # 16-point active-fraction ECDF
//! stop             # ask the service to finish
//! ```
//!
//! Blank lines and `#` comments are skipped. Every reply renders to a
//! stable, locale-free text form ([`render_reply`]), so the same seed
//! and trace produce byte-identical transcripts — the property the
//! `serve-determinism` CI job diffs.

use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use clientmap_fleet::{read_frame, write_frame, Frame, FrameError};
use clientmap_net::Asn;
use clientmap_store::Verdict;

use crate::proto::{verdict_name, Query, QueryKind, Reply};

/// Why a query round trip failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or the stream itself failed.
    Io(std::io::Error),
    /// The reply frame was corrupt or unreadable.
    Frame(FrameError),
    /// The reply payload did not decode.
    Codec(String),
    /// A trace line was not a valid query.
    BadTrace(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "query i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "query frame error: {e}"),
            ClientError::Codec(e) => write!(f, "query reply malformed: {e}"),
            ClientError::BadTrace(line) => write!(f, "bad trace line: {line:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

/// One blocking connection to a serve instance.
#[derive(Debug)]
pub struct QueryClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl QueryClient {
    /// Connects to `addr` (`host:port`). Every phase is bounded by
    /// `io_timeout`: connecting, and each frame read or write after —
    /// a dead or stalled server yields a typed [`ClientError`], never
    /// a hang.
    pub fn connect(addr: &str, io_timeout: Duration) -> Result<QueryClient, ClientError> {
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ClientError::Io(std::io::Error::other(format!(
                "{addr} resolved to no address"
            )))
        })?;
        let stream = TcpStream::connect_timeout(&sockaddr, io_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        Ok(QueryClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one query and blocks for its reply.
    pub fn request(&mut self, query: &Query) -> Result<Reply, ClientError> {
        write_frame(&mut self.writer, &Frame::new(query.kind(), query.encode()))?;
        let frame: Frame<QueryKind> = read_frame(&mut self.reader)?;
        Reply::decode(frame.kind, &frame.payload).map_err(|e| ClientError::Codec(e.to_string()))
    }
}

/// Parses one trace line into a query (`None` for blanks/comments).
pub fn parse_trace_line(line: &str) -> Result<Option<Query>, ClientError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let bad = || ClientError::BadTrace(line.to_string());
    let mut words = line.split_whitespace();
    let cmd = words.next().ok_or_else(bad)?;
    let arg = words.next();
    if words.next().is_some() {
        return Err(bad());
    }
    let query = match (cmd, arg) {
        ("info", None) => Query::Info,
        ("stop", None) => Query::Stop,
        ("gen", Some(n)) => Query::WaitGen(n.parse().map_err(|_| bad())?),
        ("as", Some(n)) => Query::As(Asn(n.parse().map_err(|_| bad())?)),
        ("country", Some(cc)) => Query::Country(cc.parse().map_err(|_| bad())?),
        ("prefix", Some(p)) => Query::Prefix(p.parse().map_err(|_| bad())?),
        ("top", Some(k)) => Query::TopK(k.parse().map_err(|_| bad())?),
        ("ecdf", Some(n)) => Query::Ecdf(n.parse().map_err(|_| bad())?),
        _ => return Err(bad()),
    };
    Ok(Some(query))
}

/// Renders a reply as stable text — the transcript line(s) the
/// determinism harness diffs byte for byte.
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Info(i) => format!(
            "info gen={} epoch={} log_offset={} seed={} digest={:#018x} \
             measured={} active_ases={} countries={} degraded={}",
            i.generation,
            i.epoch,
            i.log_offset,
            i.world_seed,
            i.config_digest,
            i.measured_slash24s,
            i.active_ases,
            i.countries,
            u8::from(i.degraded)
        ),
        Reply::As(a) => format!(
            "as AS{} country={} announced={} active={} {}",
            a.asn.0,
            a.country,
            a.announced_slash24s,
            a.active_slash24s,
            render_verdicts(&a.verdicts)
        ),
        Reply::Country(c) => format!(
            "country {} ases={} announced={} active={}",
            c.country, c.ases, c.announced_slash24s, c.active_slash24s
        ),
        Reply::Prefix(p) => format!(
            "prefix {} origins=[{}] {}",
            p.prefix,
            p.origins
                .iter()
                .map(|a| format!("AS{}", a.0))
                .collect::<Vec<_>>()
                .join(","),
            render_verdicts(&p.verdicts)
        ),
        Reply::TopK(rows) => {
            let body = rows
                .iter()
                .map(|(asn, active, announced)| format!("AS{}:{active}/{announced}", asn.0))
                .collect::<Vec<_>>()
                .join(" ");
            format!("top {}", if body.is_empty() { "-" } else { &body })
        }
        Reply::Ecdf(points) => {
            let body = points
                .iter()
                .map(|(x, y)| format!("({x:.6},{y:.6})"))
                .collect::<Vec<_>>()
                .join(" ");
            format!("ecdf {}", if body.is_empty() { "-" } else { &body })
        }
        Reply::Bye => "bye".to_string(),
        Reply::Err(msg) => format!("error: {msg}"),
    }
}

fn render_verdicts(counts: &[u64; 5]) -> String {
    Verdict::ALL
        .iter()
        .filter(|v| **v != Verdict::Unmeasured || counts[0] > 0)
        .map(|v| format!("{}={}", verdict_name(*v), counts[*v as usize]))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Replays a trace against `addr`, writing one rendered reply line per
/// query to `out`. Returns the number of queries sent.
pub fn run_trace(
    addr: &str,
    trace: &str,
    io_timeout: Duration,
    out: &mut impl Write,
) -> Result<u64, ClientError> {
    let mut client = QueryClient::connect(addr, io_timeout)?;
    let mut sent = 0;
    for line in trace.lines() {
        let Some(query) = parse_trace_line(line)? else {
            continue;
        };
        let reply = client.request(&query)?;
        sent += 1;
        writeln!(out, "{}", render_reply(&reply))?;
        if matches!(query, Query::Stop) {
            break;
        }
    }
    Ok(sent)
}

/// Reads a trace from a file or, for `-`, from `input`.
pub fn load_trace(path: &str, input: &mut impl Read) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        input.read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_lines_parse() {
        assert_eq!(parse_trace_line("").unwrap(), None);
        assert_eq!(parse_trace_line("  # comment").unwrap(), None);
        assert_eq!(parse_trace_line("info").unwrap(), Some(Query::Info));
        assert_eq!(parse_trace_line("gen 3").unwrap(), Some(Query::WaitGen(3)));
        assert_eq!(
            parse_trace_line("as 64500 # with comment").unwrap(),
            Some(Query::As(Asn(64500)))
        );
        assert_eq!(parse_trace_line("top 5").unwrap(), Some(Query::TopK(5)));
        assert!(parse_trace_line("as").is_err());
        assert!(parse_trace_line("prefix notaprefix").is_err());
        assert!(parse_trace_line("info extra").is_err());
    }

    #[test]
    fn rendered_replies_are_stable() {
        let r = Reply::TopK(vec![(Asn(7), 3, 10)]);
        assert_eq!(render_reply(&r), "top AS7:3/10");
        assert_eq!(render_reply(&Reply::TopK(Vec::new())), "top -");
        assert_eq!(render_reply(&Reply::Bye), "bye");
        let e = Reply::Ecdf(vec![(0.25, 0.5)]);
        assert_eq!(render_reply(&e), "ecdf (0.250000,0.500000)");
    }
}
