//! The query engine: one immutable [`Generation`] per completed
//! sweep, answering every query without locks.
//!
//! A generation is built once, on the sweep thread, from a finished
//! [`PipelineOutput`]: the dense per-/24 verdict table, per-AS and
//! per-country activity rollups, the routed-block table for prefix →
//! origin lookups, and the per-AS active-fraction ECDF. It is then
//! published into a `GenerationCell` and never mutated — readers on
//! query connections clone an `Arc` and answer from a consistent
//! snapshot while the next sweep is still probing.
//!
//! Everything here is a pure function of the pipeline output, so the
//! same seed produces byte-identical replies at any thread count and
//! any interleaving of queries with sweeps.

use std::collections::BTreeMap;

use clientmap_analysis::stats::Ecdf;
use clientmap_core::PipelineOutput;
use clientmap_geo::CountryCode;
use clientmap_net::{Asn, Prefix};
use clientmap_store::{Verdict, VerdictTable};

use crate::proto::{
    AsReply, CountryReply, InfoReply, PrefixReply, Query, Reply, QUERY_PROTOCOL_VERSION,
};

/// One AS's rollup inside a generation.
#[derive(Debug, Clone)]
pub struct AsActivity {
    /// Registration country.
    pub country: CountryCode,
    /// /24s the AS announces.
    pub announced_slash24s: u64,
    /// Measured /24s per verdict, indexed by `Verdict as u8`.
    pub verdicts: [u64; 5],
}

impl AsActivity {
    /// /24s with a full `Hit` verdict.
    pub fn active_slash24s(&self) -> u64 {
        self.verdicts[Verdict::Hit as usize]
    }
}

/// One immutable published store generation: everything the query
/// engine needs, precomputed.
#[derive(Debug)]
pub struct Generation {
    /// 1-based generation number (sweep number within this serve run).
    pub seq: u64,
    /// Sweep epoch of the snapshot that produced this generation.
    pub epoch: u32,
    /// Event-log length in bytes right after this sweep's event.
    pub log_offset: u64,
    /// World seed of the sweep chain.
    pub world_seed: u64,
    /// Probing-config digest of the sweep chain.
    pub config_digest: u64,
    /// Dense per-/24 verdicts.
    pub verdicts: VerdictTable,
    /// Per-AS rollups, keyed by ASN (sorted — BTreeMap iteration is
    /// the deterministic order every ranked reply uses).
    pub ases: BTreeMap<Asn, AsActivity>,
    /// Per-country rollups.
    pub countries: BTreeMap<CountryCode, CountryReply>,
    /// Routed blocks `(prefix, origin)`, sorted by address then
    /// length — the prefix-query lookup table.
    pub blocks: Vec<(Prefix, Asn)>,
    /// ECDF of per-AS active fraction (active / announced, ASes with
    /// announced space only).
    pub ecdf: Ecdf,
}

impl Generation {
    /// Builds a generation from a finished pipeline run. `seq` is the
    /// 1-based sweep number; `log_offset` the event-log length after
    /// this sweep's event was appended.
    pub fn build(seq: u64, log_offset: u64, out: &PipelineOutput) -> Generation {
        let world = out.sim.world();
        let rib = &world.rib;
        let verdicts = out.cache_probe.verdict_table();

        // Per-AS verdict rollups: every measured /24 is attributed to
        // the AS announcing it (unrouted measured space — possible
        // when a response scope overhangs the RIB — is dropped, same
        // as the analysis layer does).
        let registry: BTreeMap<Asn, CountryCode> =
            world.ases.iter().map(|a| (a.asn, a.country)).collect();
        let mut ases: BTreeMap<Asn, AsActivity> = BTreeMap::new();
        for asn in rib.origins() {
            let country = registry
                .get(&asn)
                .copied()
                .unwrap_or(CountryCode::new(b'Z', b'Z'));
            ases.insert(
                asn,
                AsActivity {
                    country,
                    announced_slash24s: rib.announced_slash24s(asn),
                    verdicts: [0; 5],
                },
            );
        }
        for (idx, v) in verdicts.iter_measured() {
            if let Some(asn) = rib.origin_of_addr(idx << 8) {
                if let Some(row) = ases.get_mut(&asn) {
                    row.verdicts[v as usize] += 1;
                }
            }
        }

        let mut countries: BTreeMap<CountryCode, CountryReply> = BTreeMap::new();
        for row in ases.values() {
            let c = countries.entry(row.country).or_insert(CountryReply {
                country: row.country,
                ases: 0,
                announced_slash24s: 0,
                active_slash24s: 0,
            });
            c.ases += 1;
            c.announced_slash24s += row.announced_slash24s;
            c.active_slash24s += row.active_slash24s();
        }

        let mut blocks: Vec<(Prefix, Asn)> = rib
            .routes()
            .into_iter()
            .map(|(p, e)| (p, e.origin))
            .collect();
        blocks.sort_by_key(|(p, _)| (p.addr(), p.len()));

        let fractions: Vec<f64> = ases
            .values()
            .filter(|r| r.announced_slash24s > 0)
            .map(|r| r.active_slash24s() as f64 / r.announced_slash24s as f64)
            .collect();

        Generation {
            seq,
            epoch: out.sweep.epoch,
            log_offset,
            world_seed: out.sweep.world_seed,
            config_digest: out.sweep.config_digest,
            verdicts,
            ases,
            countries,
            blocks,
            ecdf: Ecdf::new(fractions),
        }
    }

    /// The introspection row describing this generation.
    pub fn info(&self) -> InfoReply {
        InfoReply {
            protocol: QUERY_PROTOCOL_VERSION,
            generation: self.seq,
            epoch: self.epoch,
            log_offset: self.log_offset,
            world_seed: self.world_seed,
            config_digest: self.config_digest,
            measured_slash24s: self.verdicts.count_measured(),
            active_ases: self
                .ases
                .values()
                .filter(|r| r.active_slash24s() > 0)
                .count() as u32,
            countries: self.countries.len() as u32,
            // A generation cannot know service health; the connection
            // handler overwrites this from the live degraded flag.
            degraded: false,
        }
    }

    /// Answers one query against this generation. `WaitGen` and `Stop`
    /// are connection-level concerns and must be handled before this.
    pub fn answer(&self, query: &Query) -> Reply {
        match query {
            Query::Info => Reply::Info(self.info()),
            Query::As(asn) => match self.ases.get(asn) {
                Some(row) => Reply::As(AsReply {
                    asn: *asn,
                    country: row.country,
                    announced_slash24s: row.announced_slash24s,
                    active_slash24s: row.active_slash24s(),
                    verdicts: row.verdicts,
                }),
                None => Reply::Err(format!("AS{} announces nothing in this world", asn.0)),
            },
            Query::Country(cc) => match self.countries.get(cc) {
                Some(row) => Reply::Country(row.clone()),
                None => Reply::Err(format!("no AS is registered in {cc}")),
            },
            Query::Prefix(p) => {
                let mut origins: Vec<Asn> = self
                    .blocks
                    .iter()
                    .filter(|(b, _)| p.contains(*b) || b.contains(*p))
                    .map(|(_, asn)| *asn)
                    .collect();
                origins.sort_unstable();
                origins.dedup();
                let mut verdicts = [0u64; 5];
                let first = p.first_addr() >> 8;
                for idx in first..first + p.num_slash24s() as u32 {
                    verdicts[self.verdicts.get(idx) as usize] += 1;
                }
                Reply::Prefix(PrefixReply {
                    prefix: *p,
                    origins,
                    verdicts,
                })
            }
            Query::TopK(k) => {
                let mut rows: Vec<(Asn, u64, u64)> = self
                    .ases
                    .iter()
                    .filter(|(_, r)| r.active_slash24s() > 0)
                    .map(|(asn, r)| (*asn, r.active_slash24s(), r.announced_slash24s))
                    .collect();
                // Most active first; ties break toward the lower ASN
                // (the BTreeMap order), keeping rankings deterministic.
                rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                rows.truncate(*k as usize);
                Reply::TopK(rows)
            }
            Query::Ecdf(points) => Reply::Ecdf(self.ecdf.series(*points as usize)),
            Query::WaitGen(_) | Query::Stop => {
                Reply::Err("connection-level query reached the engine".into())
            }
        }
    }
}
