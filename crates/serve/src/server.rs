//! The resident sweep service: cadenced warm re-sweeps on one thread,
//! lock-free query answering on the rest.
//!
//! `serve` owns the sweep store for its lifetime. A dedicated sweep
//! thread drives [`Pipeline::run_cadence`]; after each sweep it diffs
//! the new verdict table against the previous one, appends the delta
//! to the append-only event log ([`clientmap_store::eventlog`]),
//! builds an immutable [`Generation`], and publishes it into a
//! [`GenerationCell`] with one atomic store. Query connections never
//! take a lock: each request clones the `Arc` of whatever generation
//! is current (or the specific generation it asked for) and answers
//! from that consistent snapshot while the next sweep is still
//! probing.
//!
//! Shutdown is cooperative: a client sends [`Query::Stop`]; the
//! service finishes its remaining sweeps, drains connections, and
//! returns a [`ServeSummary`]. Determinism: the same seed, sweep
//! count, and query trace produce a byte-identical event log,
//! byte-identical responses, and a byte-identical final snapshot —
//! regardless of thread count or query/sweep interleaving.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use clientmap_core::{Pipeline, PipelineConfig, PipelineError};
use clientmap_fleet::{read_frame_deadline, write_frame, Frame, FrameError, FrameRead};
use clientmap_store::{
    verdict_delta, EventLog, FailureEvent, GenerationCell, SweepEvent, SweepSnapshot, VerdictTable,
};

use crate::engine::Generation;
use crate::proto::{Query, QueryKind, Reply};

/// Everything `clientmap serve` needs to run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// The pipeline configuration every sweep runs under.
    pub config: PipelineConfig,
    /// Warm-chained sweeps to run before the service idles.
    pub sweeps: u32,
    /// Snapshot to warm-start sweep 1 from (`None` = cold).
    pub prior: Option<SweepSnapshot>,
    /// Event-log path. Created fresh; an existing file is an error —
    /// the log is this run's authoritative history.
    pub log_path: PathBuf,
    /// Compact the log (write a base snapshot, rewind the tail) after
    /// every N sweeps; `0` never compacts.
    pub compact_every: u32,
    /// Where to write the final sweep snapshot, if anywhere.
    pub snapshot_out: Option<PathBuf>,
    /// Per-frame write deadline on query connections: a client that
    /// stalls mid-reply for this long is dropped, never the service.
    pub io_timeout: Duration,
    /// Chaos lever: fail sweep N with a typed `PipelineError` instead
    /// of running it — the injected death that drives the service into
    /// degraded mode (see [`run_sweeps`]).
    pub fail_sweep: Option<u32>,
    /// Told the bound address right after binding — how an in-process
    /// harness (`serve-bench`, tests) finds a port-0 listener without
    /// scraping stdout.
    pub ready: Option<std::sync::mpsc::Sender<std::net::SocketAddr>>,
}

/// What a completed serve run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sweeps completed (= generations published).
    pub sweeps: u32,
    /// Final sweep epoch.
    pub final_epoch: u32,
    /// Event-log length in bytes at shutdown.
    pub log_len: u64,
    /// Event records in the log at shutdown (post-compaction tail).
    pub log_records: usize,
    /// Queries answered across all connections.
    pub queries_answered: u64,
    /// Whether the run ended degraded: the sweep chain died after at
    /// least one generation, and the service kept answering from the
    /// last one (the death is a typed failure record in the log).
    pub degraded: bool,
}

/// Why the service could not run (or finish).
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the listen address failed.
    Io(std::io::Error),
    /// A sweep failed; the service shut down without a partial
    /// generation.
    Pipeline(PipelineError),
    /// The event log refused an append or compaction.
    Log(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Pipeline(e) => write!(f, "serve sweep failed: {e}"),
            ServeError::Log(e) => write!(f, "serve event log failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Cross-thread service state: the published generations and the
/// wait/stop machinery.
struct ServerState {
    generations: GenerationCell<Generation>,
    /// Guards nothing but the condvar; the published count lives in
    /// the cell itself.
    wake: Mutex<()>,
    cond: Condvar,
    sweeps_done: AtomicBool,
    stop: AtomicBool,
    /// Set (before `sweeps_done`) when the sweep chain died after
    /// publishing at least one generation; every `Info` reply carries
    /// it so clients can see they are reading stale truth.
    degraded: AtomicBool,
    queries: std::sync::atomic::AtomicU64,
}

impl ServerState {
    /// Blocks until generation `seq` exists, all sweeps ended, or the
    /// service is stopping — whichever comes first.
    fn wait_for(&self, seq: u64) -> Option<Arc<Generation>> {
        let mut guard = self.wake.lock().expect("wake lock");
        loop {
            if let Some(g) = self.generations.get(seq) {
                return Some(g);
            }
            if self.sweeps_done.load(Ordering::SeqCst) || self.stop.load(Ordering::SeqCst) {
                return None;
            }
            let (g, _) = self
                .cond
                .wait_timeout(guard, Duration::from_millis(100))
                .expect("wake lock");
            guard = g;
        }
    }

    fn notify(&self) {
        let _guard = self.wake.lock().expect("wake lock");
        self.cond.notify_all();
    }
}

/// Runs the service to completion: binds `opts.addr`, announces
/// `clientmap serve listening on <addr>` on stdout, sweeps
/// `opts.sweeps` times while answering queries, and returns once the
/// sweeps are done and a client has asked it to stop.
pub fn serve(opts: ServeOptions) -> Result<ServeSummary, ServeError> {
    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    println!("clientmap serve listening on {local}");
    std::io::stdout().flush().ok();
    if let Some(ready) = &opts.ready {
        ready.send(local).ok();
    }

    let state = Arc::new(ServerState {
        generations: GenerationCell::with_capacity(opts.sweeps as usize),
        wake: Mutex::new(()),
        cond: Condvar::new(),
        sweeps_done: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        degraded: AtomicBool::new(false),
        queries: std::sync::atomic::AtomicU64::new(0),
    });

    if opts.log_path.exists() {
        return Err(ServeError::Log(format!(
            "event log {} already exists; serve writes a fresh log per run",
            opts.log_path.display()
        )));
    }

    let mut sweep_result: Result<(EventLog, Option<SweepSnapshot>, bool), ServeError> =
        Err(ServeError::Log("sweep thread never ran".into()));

    std::thread::scope(|scope| {
        // The sweep thread: the only writer of the event log and the
        // only publisher of generations. A chain that dies *after*
        // publishing comes back `Ok` with the degraded flag — the
        // service keeps serving the last generation instead of dying
        // with it.
        let sweep_state = Arc::clone(&state);
        let sweep_opts = &opts;
        let sweep_result = &mut sweep_result;
        scope.spawn(move || {
            *sweep_result = run_sweeps(sweep_opts, &sweep_state);
            if matches!(&*sweep_result, Ok((_, _, true))) {
                // Degraded must be visible before sweeps_done releases
                // WaitGen waiters, so no reply can claim healthy truth
                // from a dead chain.
                sweep_state.degraded.store(true, Ordering::SeqCst);
            }
            sweep_state.sweeps_done.store(true, Ordering::SeqCst);
            if sweep_result.is_err() {
                // A chain that died before any generation can never
                // satisfy a stop request; release waiting clients and
                // the accept loop.
                sweep_state.stop.store(true, Ordering::SeqCst);
            }
            sweep_state.notify();
        });

        // The accept loop: every connection gets its own scoped
        // thread; readers never block the sweep thread.
        while !(state.stop.load(Ordering::SeqCst) && state.sweeps_done.load(Ordering::SeqCst)) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn_state = Arc::clone(&state);
                    let io_timeout = opts.io_timeout;
                    scope.spawn(move || {
                        let _ = handle_connection(stream, &conn_state, io_timeout);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });

    let (log, last, degraded) = sweep_result?;
    if let (Some(path), Some(snap)) = (&opts.snapshot_out, &last) {
        std::fs::write(path, snap.encode())?;
    }
    Ok(ServeSummary {
        sweeps: state.generations.published() as u32,
        final_epoch: last.map(|s| s.epoch).unwrap_or(0),
        log_len: log.len(),
        log_records: log.offsets().len(),
        queries_answered: state.queries.load(Ordering::SeqCst),
        degraded,
    })
}

/// The sweep cadence: run, diff, append, publish — once per sweep.
///
/// The chain is supervised. A sweep that fails (`PipelineError`) or
/// panics *after* at least one generation was published does not kill
/// the service: the failure is appended to the event log as a typed
/// [`FailureEvent`] and the call returns `Ok` with the degraded flag
/// set, leaving every published generation answerable. Only a chain
/// that dies before its first generation is a hard [`ServeError`].
fn run_sweeps(
    opts: &ServeOptions,
    state: &ServerState,
) -> Result<(EventLog, Option<SweepSnapshot>, bool), ServeError> {
    let mut log: Option<EventLog> = None;
    let mut prev_table: Option<VerdictTable> = None;
    let mut last_snapshot: Option<SweepSnapshot> = None;
    let mut published: u64 = 0;

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Pipeline::run_cadence(
            opts.config.clone(),
            opts.prior.clone(),
            opts.sweeps,
            |sweep_no, out| {
                if opts.fail_sweep == Some(sweep_no) {
                    return Err(PipelineError::Stage {
                        stage: "injected-failure".into(),
                        message: format!("sweep {sweep_no} failed by --fail-sweep"),
                    });
                }
                // The log is created lazily on sweep 1: its header pins
                // the (world seed, config digest) pair, which only the
                // first finished sweep can vouch for.
                if log.is_none() {
                    let created = EventLog::create(
                        &opts.log_path,
                        out.sweep.world_seed,
                        out.sweep.config_digest,
                    )
                    .map_err(|e| PipelineError::Stage {
                        stage: "serve-eventlog".into(),
                        message: e.to_string(),
                    })?;
                    log = Some(created);
                }
                let log = log.as_mut().expect("just created");

                let table = out.cache_probe.verdict_table();
                let changes = verdict_delta(prev_table.as_ref(), &table);
                let event = SweepEvent {
                    epoch: out.sweep.epoch,
                    generation: u64::from(sweep_no),
                    measured_slash24s: table.count_measured(),
                    changes,
                };
                log.append(&event).map_err(|e| PipelineError::Stage {
                    stage: "serve-eventlog".into(),
                    message: e.to_string(),
                })?;
                if opts.compact_every > 0 && sweep_no % opts.compact_every == 0 {
                    log.compact(&out.sweep).map_err(|e| PipelineError::Stage {
                        stage: "serve-compaction".into(),
                        message: e.to_string(),
                    })?;
                }

                let generation = Generation::build(u64::from(sweep_no), log.len(), &out);
                prev_table = Some(table);
                last_snapshot = Some(out.sweep.clone());
                state
                    .generations
                    .publish(generation)
                    .expect("generation capacity = sweep count");
                published = u64::from(sweep_no);
                state.notify();
                eprintln!(
                    "serve: sweep {sweep_no}/{} published (epoch {}, log {} bytes)",
                    opts.sweeps,
                    out.sweep.epoch,
                    log.len()
                );
                Ok(())
            },
        )
    }));
    let result = match result {
        Ok(r) => r,
        // A panicking sweep is the same failure as a returned error:
        // typed, logged, survivable.
        Err(payload) => Err(PipelineError::Stage {
            stage: "sweep-panic".into(),
            message: panic_message(payload),
        }),
    };
    match result {
        Ok(()) => match log {
            Some(log) => Ok((log, last_snapshot, false)),
            None => Err(ServeError::Log("no sweeps ran (sweeps = 0)".into())),
        },
        Err(e) => match log {
            // At least one generation is published: record the death
            // in the log and keep serving, degraded.
            Some(mut log) => {
                let failure = FailureEvent {
                    generation: published + 1,
                    message: e.to_string(),
                };
                log.append_failure(&failure)
                    .map_err(|io| ServeError::Log(io.to_string()))?;
                eprintln!(
                    "serve: sweep {} failed ({e}); serving degraded from generation {published}",
                    published + 1
                );
                Ok((log, last_snapshot, true))
            }
            None => Err(ServeError::Pipeline(e)),
        },
    }
}

/// Best-effort text of a panic payload — `&str` and `String` cover
/// everything `panic!` produces in practice.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "sweep thread panicked".to_string()
    }
}

/// One client connection: read queries until EOF, `Stop`, or service
/// shutdown. The 200ms read deadline fires *between* frames on an idle
/// connection (clients write whole frames at once), where it is the
/// chance to notice the service stopping under us; a peer that stalls
/// mid-frame or mid-reply past `io_timeout` is dropped — never the
/// service.
fn handle_connection(
    stream: TcpStream,
    state: &ServerState,
    io_timeout: Duration,
) -> Result<(), FrameError> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .map_err(FrameError::Io)?;
    stream
        .set_write_timeout(Some(io_timeout))
        .map_err(FrameError::Io)?;
    let mut reader = std::io::BufReader::new(stream.try_clone().map_err(FrameError::Io)?);
    let mut writer = stream;
    loop {
        let frame = match read_frame_deadline::<QueryKind>(&mut reader)? {
            FrameRead::Frame(frame) => frame,
            FrameRead::Eof => return Ok(()), // clean hang-up
            FrameRead::Idle => {
                if state.stop.load(Ordering::SeqCst) && state.sweeps_done.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
        };
        let mut reply = match Query::decode(frame.kind, &frame.payload) {
            Ok(Query::Stop) => {
                state.stop.store(true, Ordering::SeqCst);
                state.notify();
                state.queries.fetch_add(1, Ordering::SeqCst);
                write_frame(
                    &mut writer,
                    &Frame::new(QueryKind::RespBye, Reply::Bye.encode()),
                )?;
                return Ok(());
            }
            Ok(Query::WaitGen(seq)) => match state.wait_for(seq) {
                Some(g) => Reply::Info(g.info()),
                None => Reply::Err(format!(
                    "generation {seq} will never be published ({} of {} sweeps ran)",
                    state.generations.published(),
                    state.generations.capacity()
                )),
            },
            Ok(q) => match state.generations.current() {
                Some(g) => g.answer(&q),
                None => Reply::Err("no generation published yet".into()),
            },
            Err(e) => Reply::Err(format!("bad query: {e}")),
        };
        // A generation cannot know service health: the live flag is
        // patched into every Info reply at answer time, wherever the
        // reply came from.
        if let Reply::Info(ref mut info) = reply {
            info.degraded = state.degraded.load(Ordering::SeqCst);
        }
        state.queries.fetch_add(1, Ordering::SeqCst);
        write_frame(&mut writer, &Frame::new(reply.kind(), reply.encode()))?;
    }
}
