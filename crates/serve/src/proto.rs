//! The serve query protocol: `CMFR` frames carrying checksummed query
//! and reply payloads.
//!
//! The framing layer is `clientmap-fleet`'s [`Frame`] stack, reused
//! verbatim via the [`WireKind`] seam — same magic, same length
//! prefix, same trailing splitmix64 checksum, same typed error for
//! every way a hostile or truncated stream can fail. Only the kind
//! vocabulary differs: [`QueryKind`] speaks queries and replies
//! instead of jobs and shards.
//!
//! Payloads are encoded with the snapshot codec's [`ByteWriter`] /
//! [`ByteReader`] discipline (fixed little-endian fields, trailing
//! checksum), so a reply is integrity-checked twice: once by the
//! frame, once by the payload codec. Equal values encode to
//! byte-identical buffers — the property the serve determinism test
//! pins end to end.

use clientmap_fleet::WireKind;
use clientmap_geo::CountryCode;
use clientmap_net::{Asn, Prefix};
use clientmap_store::{ByteReader, ByteWriter, CodecError, Verdict};

/// Protocol version, echoed in [`Reply::Info`].
/// Version 2 added the `degraded` flag to [`InfoReply`] — whether the
/// service's sweep chain has died and it is answering from its last
/// published generation.
pub const QUERY_PROTOCOL_VERSION: u16 = 2;

/// Frame kinds of the query protocol. Values 1–15 are client → server
/// queries, 16–31 server → client replies; the numeric value is the
/// wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum QueryKind {
    /// Service introspection: latest generation, log offset, counts.
    Info = 1,
    /// Block until a generation number is published (payload: u64 seq).
    WaitGen = 2,
    /// Per-AS client activity (payload: u32 ASN).
    As = 3,
    /// Per-country aggregate (payload: two ASCII letters).
    Country = 4,
    /// Per-prefix verdict breakdown (payload: u32 addr, u8 len).
    Prefix = 5,
    /// Top-K ASes by active /24s (payload: u32 k).
    TopK = 6,
    /// ECDF of per-AS active fraction (payload: u32 points).
    Ecdf = 7,
    /// Ask the service to finish: once sweeps end, serve returns.
    Stop = 8,
    /// Reply to [`QueryKind::Info`] and [`QueryKind::WaitGen`].
    RespInfo = 16,
    /// Reply to [`QueryKind::As`].
    RespAs = 17,
    /// Reply to [`QueryKind::Country`].
    RespCountry = 18,
    /// Reply to [`QueryKind::Prefix`].
    RespPrefix = 19,
    /// Reply to [`QueryKind::TopK`].
    RespTopK = 20,
    /// Reply to [`QueryKind::Ecdf`].
    RespEcdf = 21,
    /// Reply to [`QueryKind::Stop`]: acknowledged, hang up.
    RespBye = 30,
    /// Any query that could not be answered; payload is a reason.
    RespErr = 31,
}

impl WireKind for QueryKind {
    fn to_byte(self) -> u8 {
        self as u8
    }

    fn from_byte(v: u8) -> Option<QueryKind> {
        Some(match v {
            1 => QueryKind::Info,
            2 => QueryKind::WaitGen,
            3 => QueryKind::As,
            4 => QueryKind::Country,
            5 => QueryKind::Prefix,
            6 => QueryKind::TopK,
            7 => QueryKind::Ecdf,
            8 => QueryKind::Stop,
            16 => QueryKind::RespInfo,
            17 => QueryKind::RespAs,
            18 => QueryKind::RespCountry,
            19 => QueryKind::RespPrefix,
            20 => QueryKind::RespTopK,
            21 => QueryKind::RespEcdf,
            30 => QueryKind::RespBye,
            31 => QueryKind::RespErr,
            _ => return None,
        })
    }
}

/// One client → server question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Latest-generation introspection.
    Info,
    /// Block until generation `seq` is published.
    WaitGen(u64),
    /// Client activity of one AS.
    As(Asn),
    /// Aggregate activity of one registration country.
    Country(CountryCode),
    /// Verdict breakdown of the /24s inside a prefix.
    Prefix(Prefix),
    /// Top `k` ASes by active /24s.
    TopK(u32),
    /// The per-AS active-fraction ECDF sampled at `points` points.
    Ecdf(u32),
    /// Finish: reply `Bye`, and let serve return once sweeps end.
    Stop,
}

impl Query {
    /// The frame kind this query travels under.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Info => QueryKind::Info,
            Query::WaitGen(_) => QueryKind::WaitGen,
            Query::As(_) => QueryKind::As,
            Query::Country(_) => QueryKind::Country,
            Query::Prefix(_) => QueryKind::Prefix,
            Query::TopK(_) => QueryKind::TopK,
            Query::Ecdf(_) => QueryKind::Ecdf,
            Query::Stop => QueryKind::Stop,
        }
    }

    /// Encodes the query payload (checksummed, frame body only).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Query::Info | Query::Stop => {}
            Query::WaitGen(seq) => w.u64(*seq),
            Query::As(asn) => w.u32(asn.0),
            Query::Country(cc) => w.bytes(cc.as_str().as_bytes()),
            Query::Prefix(p) => {
                w.u32(p.addr());
                w.u8(p.len());
            }
            Query::TopK(k) => w.u32(*k),
            Query::Ecdf(points) => w.u32(*points),
        }
        w.finish()
    }

    /// Decodes a query from its frame kind and payload.
    pub fn decode(kind: QueryKind, payload: &[u8]) -> Result<Query, CodecError> {
        let mut r = ByteReader::verified(payload)?;
        let q = match kind {
            QueryKind::Info => Query::Info,
            QueryKind::Stop => Query::Stop,
            QueryKind::WaitGen => Query::WaitGen(r.u64()?),
            QueryKind::As => Query::As(Asn(r.u32()?)),
            QueryKind::Country => {
                let raw = r.raw(2)?;
                let s = std::str::from_utf8(raw)
                    .map_err(|_| CodecError::Malformed("country code not ASCII"))?;
                Query::Country(
                    s.parse()
                        .map_err(|_| CodecError::Malformed("country code"))?,
                )
            }
            QueryKind::Prefix => {
                let addr = r.u32()?;
                let len = r.u8()?;
                Query::Prefix(Prefix::new(addr, len).map_err(|_| CodecError::Malformed("prefix"))?)
            }
            QueryKind::TopK => Query::TopK(r.u32()?),
            QueryKind::Ecdf => Query::Ecdf(r.u32()?),
            _ => return Err(CodecError::Malformed("reply kind used as a query")),
        };
        r.expect_done()?;
        Ok(q)
    }
}

/// Service introspection: the state of the latest (or awaited)
/// generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoReply {
    /// Query-protocol version.
    pub protocol: u16,
    /// The described generation (0 before the first sweep lands).
    pub generation: u64,
    /// Sweep epoch of that generation's snapshot.
    pub epoch: u32,
    /// Event-log length (bytes) right after that generation's event.
    pub log_offset: u64,
    /// World seed the service is sweeping.
    pub world_seed: u64,
    /// Probing-config digest of the sweep chain.
    pub config_digest: u64,
    /// Measured /24s in that generation's verdict table.
    pub measured_slash24s: u64,
    /// ASes with at least one measured /24.
    pub active_ases: u32,
    /// Countries covered by those ASes.
    pub countries: u32,
    /// Whether the service is degraded: its sweep chain failed, so the
    /// described generation is the last it will ever publish — but
    /// queries keep being answered from it.
    pub degraded: bool,
}

/// One AS's client-activity row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsReply {
    /// The AS.
    pub asn: Asn,
    /// Registration country.
    pub country: CountryCode,
    /// /24s the AS announces in the RIB.
    pub announced_slash24s: u64,
    /// /24s with a `Hit` verdict.
    pub active_slash24s: u64,
    /// Measured /24s per verdict, indexed by `Verdict as u8`
    /// (`Unmeasured` is always 0 — unmeasured space is implicit).
    pub verdicts: [u64; 5],
}

/// One country's aggregate row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryReply {
    /// The country.
    pub country: CountryCode,
    /// ASes registered there with any announced space.
    pub ases: u32,
    /// Announced /24s across those ASes.
    pub announced_slash24s: u64,
    /// Active (`Hit`) /24s across those ASes.
    pub active_slash24s: u64,
}

/// One prefix's verdict breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixReply {
    /// The queried prefix.
    pub prefix: Prefix,
    /// Origin ASes announcing space within the prefix, ascending.
    pub origins: Vec<Asn>,
    /// Measured /24s inside the prefix per verdict, indexed by
    /// `Verdict as u8` (index 0, `Unmeasured`, counts the remainder).
    pub verdicts: [u64; 5],
}

/// What the server says back.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Introspection (also the reply to a satisfied `WaitGen`).
    Info(InfoReply),
    /// A per-AS row.
    As(AsReply),
    /// A per-country aggregate.
    Country(CountryReply),
    /// A per-prefix breakdown.
    Prefix(PrefixReply),
    /// `(asn, active, announced)` rows, best first.
    TopK(Vec<(Asn, u64, u64)>),
    /// `(active_fraction, cumulative_fraction)` ECDF points.
    Ecdf(Vec<(f64, f64)>),
    /// Acknowledged stop; the server will hang up.
    Bye,
    /// The query could not be answered.
    Err(String),
}

impl Reply {
    /// The frame kind this reply travels under.
    pub fn kind(&self) -> QueryKind {
        match self {
            Reply::Info(_) => QueryKind::RespInfo,
            Reply::As(_) => QueryKind::RespAs,
            Reply::Country(_) => QueryKind::RespCountry,
            Reply::Prefix(_) => QueryKind::RespPrefix,
            Reply::TopK(_) => QueryKind::RespTopK,
            Reply::Ecdf(_) => QueryKind::RespEcdf,
            Reply::Bye => QueryKind::RespBye,
            Reply::Err(_) => QueryKind::RespErr,
        }
    }

    /// Encodes the reply payload (checksummed, frame body only).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Reply::Info(i) => {
                w.u16(i.protocol);
                w.u64(i.generation);
                w.u32(i.epoch);
                w.u64(i.log_offset);
                w.u64(i.world_seed);
                w.u64(i.config_digest);
                w.u64(i.measured_slash24s);
                w.u32(i.active_ases);
                w.u32(i.countries);
                w.u8(u8::from(i.degraded));
            }
            Reply::As(a) => {
                w.u32(a.asn.0);
                w.bytes(a.country.as_str().as_bytes());
                w.u64(a.announced_slash24s);
                w.u64(a.active_slash24s);
                for v in a.verdicts {
                    w.u64(v);
                }
            }
            Reply::Country(c) => {
                w.bytes(c.country.as_str().as_bytes());
                w.u32(c.ases);
                w.u64(c.announced_slash24s);
                w.u64(c.active_slash24s);
            }
            Reply::Prefix(p) => {
                w.u32(p.prefix.addr());
                w.u8(p.prefix.len());
                w.u32(p.origins.len() as u32);
                for asn in &p.origins {
                    w.u32(asn.0);
                }
                for v in p.verdicts {
                    w.u64(v);
                }
            }
            Reply::TopK(rows) => {
                w.u32(rows.len() as u32);
                for (asn, active, announced) in rows {
                    w.u32(asn.0);
                    w.u64(*active);
                    w.u64(*announced);
                }
            }
            Reply::Ecdf(points) => {
                w.u32(points.len() as u32);
                for (x, y) in points {
                    w.u64(x.to_bits());
                    w.u64(y.to_bits());
                }
            }
            Reply::Bye => {}
            Reply::Err(msg) => w.str(msg),
        }
        w.finish()
    }

    /// Decodes a reply from its frame kind and payload.
    pub fn decode(kind: QueryKind, payload: &[u8]) -> Result<Reply, CodecError> {
        let mut r = ByteReader::verified(payload)?;
        let reply = match kind {
            QueryKind::RespInfo => Reply::Info(InfoReply {
                protocol: r.u16()?,
                generation: r.u64()?,
                epoch: r.u32()?,
                log_offset: r.u64()?,
                world_seed: r.u64()?,
                config_digest: r.u64()?,
                measured_slash24s: r.u64()?,
                active_ases: r.u32()?,
                countries: r.u32()?,
                degraded: r.u8()? != 0,
            }),
            QueryKind::RespAs => {
                let asn = Asn(r.u32()?);
                let country = decode_country(&mut r)?;
                let announced = r.u64()?;
                let active = r.u64()?;
                let mut verdicts = [0u64; 5];
                for v in verdicts.iter_mut() {
                    *v = r.u64()?;
                }
                Reply::As(AsReply {
                    asn,
                    country,
                    announced_slash24s: announced,
                    active_slash24s: active,
                    verdicts,
                })
            }
            QueryKind::RespCountry => Reply::Country(CountryReply {
                country: decode_country(&mut r)?,
                ases: r.u32()?,
                announced_slash24s: r.u64()?,
                active_slash24s: r.u64()?,
            }),
            QueryKind::RespPrefix => {
                let addr = r.u32()?;
                let len = r.u8()?;
                let prefix = Prefix::new(addr, len).map_err(|_| CodecError::Malformed("prefix"))?;
                let n = r.u32()? as usize;
                let mut origins = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    origins.push(Asn(r.u32()?));
                }
                let mut verdicts = [0u64; 5];
                for v in verdicts.iter_mut() {
                    *v = r.u64()?;
                }
                Reply::Prefix(PrefixReply {
                    prefix,
                    origins,
                    verdicts,
                })
            }
            QueryKind::RespTopK => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rows.push((Asn(r.u32()?), r.u64()?, r.u64()?));
                }
                Reply::TopK(rows)
            }
            QueryKind::RespEcdf => {
                let n = r.u32()? as usize;
                let mut points = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    points.push((f64::from_bits(r.u64()?), f64::from_bits(r.u64()?)));
                }
                Reply::Ecdf(points)
            }
            QueryKind::RespBye => Reply::Bye,
            QueryKind::RespErr => Reply::Err(r.str()?),
            _ => return Err(CodecError::Malformed("query kind used as a reply")),
        };
        r.expect_done()?;
        Ok(reply)
    }
}

fn decode_country(r: &mut ByteReader<'_>) -> Result<CountryCode, CodecError> {
    let raw = r.raw(2)?;
    std::str::from_utf8(raw)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(CodecError::Malformed("country code"))
}

/// The verdict names used when rendering per-verdict counts, indexed
/// by `Verdict as u8` — one stable spelling shared by the client
/// renderer and the docs.
pub fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Unmeasured => "unmeasured",
        Verdict::Dropped => "dropped",
        Verdict::Miss => "miss",
        Verdict::HitScopeZero => "hit0",
        Verdict::Hit => "hit",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_roundtrip() {
        let cc: CountryCode = "de".parse().unwrap();
        for q in [
            Query::Info,
            Query::Stop,
            Query::WaitGen(3),
            Query::As(Asn(64500)),
            Query::Country(cc),
            Query::Prefix(Prefix::new(0x0A00_0000, 16).unwrap()),
            Query::TopK(10),
            Query::Ecdf(32),
        ] {
            let got = Query::decode(q.kind(), &q.encode()).expect("roundtrip");
            assert_eq!(got, q);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let cc: CountryCode = "us".parse().unwrap();
        for reply in [
            Reply::Info(InfoReply {
                protocol: QUERY_PROTOCOL_VERSION,
                generation: 2,
                epoch: 5,
                log_offset: 1234,
                world_seed: 7,
                config_digest: 0xDEAD,
                measured_slash24s: 99,
                active_ases: 12,
                countries: 3,
                degraded: true,
            }),
            Reply::As(AsReply {
                asn: Asn(64501),
                country: cc,
                announced_slash24s: 256,
                active_slash24s: 17,
                verdicts: [0, 1, 2, 3, 17],
            }),
            Reply::Country(CountryReply {
                country: cc,
                ases: 4,
                announced_slash24s: 1024,
                active_slash24s: 77,
            }),
            Reply::Prefix(PrefixReply {
                prefix: Prefix::new(0xC0A8_0000, 16).unwrap(),
                origins: vec![Asn(1), Asn(9)],
                verdicts: [200, 0, 40, 6, 10],
            }),
            Reply::TopK(vec![(Asn(5), 90, 100), (Asn(6), 10, 400)]),
            Reply::Ecdf(vec![(0.0, 0.1), (0.5, 0.75), (1.0, 1.0)]),
            Reply::Bye,
            Reply::Err("unknown AS 99".into()),
        ] {
            let got = Reply::decode(reply.kind(), &reply.encode()).expect("roundtrip");
            assert_eq!(got, reply);
        }
    }

    #[test]
    fn mismatched_kind_is_rejected() {
        let q = Query::Info;
        assert!(Reply::decode(QueryKind::Info, &q.encode()).is_err());
        let r = Reply::Bye;
        assert!(Query::decode(QueryKind::RespBye, &r.encode()).is_err());
        // A truncated payload fails the codec checksum.
        let enc = Query::WaitGen(9).encode();
        assert!(Query::decode(QueryKind::WaitGen, &enc[..enc.len() - 1]).is_err());
    }
}
