//! # clientmap-serve
//!
//! The long-running sweep service: `clientmap serve` owns the sweep
//! store as a resident process, re-sweeping on a warm cadence and
//! answering client-activity queries over TCP while it works.
//!
//! Three moving parts:
//!
//! - **The sweep thread** drives `Pipeline::run_cadence`: each sweep
//!   warm-starts from its predecessor's snapshot, so only expired,
//!   new, dirty, or rescue-worthy scopes are re-probed. After each
//!   sweep the verdict-table *delta* is appended to an append-only,
//!   checksummed event log (`clientmap_store::eventlog`) — the
//!   compacted base plus the tail of deltas replays to the exact
//!   current table.
//! - **Generations** ([`engine`]): each sweep publishes an immutable,
//!   precomputed query index into a lock-free `GenerationCell` with a
//!   single atomic store. Queries clone an `Arc` and answer from a
//!   consistent snapshot; past generations stay addressable.
//! - **The query protocol** ([`proto`]): `CMFR` frames — the same
//!   framing, checksum, and error discipline as the fleet protocol,
//!   reused via the `WireKind` seam — carrying per-AS, per-country,
//!   per-prefix, top-K, and ECDF queries, plus generation/log-offset
//!   introspection and a blocking generation wait.
//!
//! Everything is deterministic: the same seed, sweep count, and query
//! trace produce a byte-identical event log, byte-identical replies,
//! and a byte-identical final snapshot at any thread count.

#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod engine;
pub mod proto;
pub mod server;

pub use bench::{query_storm, storm_query, StormOptions, StormPoint};
pub use client::{load_trace, parse_trace_line, render_reply, run_trace, ClientError, QueryClient};
pub use engine::{AsActivity, Generation};
pub use proto::{
    verdict_name, AsReply, CountryReply, InfoReply, PrefixReply, Query, QueryKind, Reply,
    QUERY_PROTOCOL_VERSION,
};
pub use server::{serve, ServeError, ServeOptions, ServeSummary};
