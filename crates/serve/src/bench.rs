//! A seeded synthetic query storm against a running serve instance.
//!
//! The storm draws its query stream deterministically from a seed
//! (splitmix64 over the query index), so two benches of the same
//! build send byte-identical query sequences; only the wall-clock
//! numbers differ. Each point of the curve runs the same total query
//! count over a different number of concurrent connections, giving a
//! queries/sec scaling curve for `BENCH_PR8.json`.

use std::time::Instant;

use clientmap_geo::CountryCode;
use clientmap_net::{splitmix64, Asn, Prefix};

use crate::client::{ClientError, QueryClient};
use crate::proto::Query;

/// What to throw at the service.
#[derive(Debug, Clone)]
pub struct StormOptions {
    /// The serve instance (`host:port`).
    pub addr: String,
    /// Seed of the deterministic query stream.
    pub seed: u64,
    /// Total queries per curve point.
    pub queries: u64,
    /// Concurrent connections per curve point.
    pub connections: Vec<u32>,
}

impl Default for StormOptions {
    fn default() -> StormOptions {
        StormOptions {
            addr: String::new(),
            seed: 1,
            queries: 2_000,
            connections: vec![1, 2, 4, 8],
        }
    }
}

/// One point of the queries/sec curve.
#[derive(Debug, Clone, PartialEq)]
pub struct StormPoint {
    /// Concurrent connections.
    pub connections: u32,
    /// Queries actually sent (splits evenly; the remainder lands on
    /// the first connection).
    pub queries: u64,
    /// Wall-clock seconds for the whole point.
    pub wall_secs: f64,
    /// Aggregate queries per second.
    pub qps: f64,
}

/// The `i`-th query of the storm stream for `seed` — a fixed mix of
/// cheap introspection, point lookups, rankings, and ECDFs.
pub fn storm_query(seed: u64, i: u64) -> Query {
    let h = splitmix64(seed ^ splitmix64(i));
    match h % 6 {
        0 => Query::Info,
        1 => Query::As(Asn((h >> 8) as u32 % 100_000)),
        2 => {
            let a = b'A' + ((h >> 16) % 26) as u8;
            let b = b'A' + ((h >> 24) % 26) as u8;
            Query::Country(CountryCode::new(a, b))
        }
        3 => {
            let len = 8 + ((h >> 32) % 17) as u8; // /8 … /24
            let addr = ((h >> 8) as u32) & (u32::MAX << (32 - len));
            Query::Prefix(Prefix::new(addr, len).expect("masked to length"))
        }
        4 => Query::TopK(1 + ((h >> 40) % 20) as u32),
        _ => Query::Ecdf(1 + ((h >> 48) % 64) as u32),
    }
}

/// Runs the full storm: one [`StormPoint`] per connection count.
/// Every reply is fully read and decoded (errors included — an
/// unknown AS is a valid, answerable query), so qps measures complete
/// round trips.
pub fn query_storm(opts: &StormOptions) -> Result<Vec<StormPoint>, ClientError> {
    let mut curve = Vec::with_capacity(opts.connections.len());
    for &conns in &opts.connections {
        let conns = conns.max(1);
        let per = opts.queries / u64::from(conns);
        let start = Instant::now();
        let mut failure: Option<ClientError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..conns {
                let extra = if c == 0 {
                    opts.queries - per * u64::from(conns)
                } else {
                    0
                };
                let addr = &opts.addr;
                let seed = opts.seed;
                handles.push(scope.spawn(move || -> Result<(), ClientError> {
                    let mut client =
                        QueryClient::connect(addr, std::time::Duration::from_secs(60))?;
                    // Disjoint index ranges per connection keep the
                    // union of sent queries identical at any split.
                    let base = u64::from(c) * per;
                    for i in 0..per + extra {
                        client.request(&storm_query(seed, base + i))?;
                    }
                    Ok(())
                }));
            }
            for h in handles {
                if let Err(e) = h.join().expect("storm thread") {
                    failure.get_or_insert(e);
                }
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        let wall = start.elapsed().as_secs_f64();
        curve.push(StormPoint {
            connections: conns,
            queries: opts.queries,
            wall_secs: wall,
            qps: opts.queries as f64 / wall.max(1e-9),
        });
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_stream_is_deterministic_and_mixed() {
        let a: Vec<Query> = (0..64).map(|i| storm_query(7, i)).collect();
        let b: Vec<Query> = (0..64).map(|i| storm_query(7, i)).collect();
        assert_eq!(a, b);
        let infos = a.iter().filter(|q| matches!(q, Query::Info)).count();
        assert!(infos > 0 && infos < 64, "mix is degenerate: {infos} infos");
        // Prefix queries always construct valid prefixes.
        for q in (0..4096).map(|i| storm_query(9, i)) {
            if let Query::Prefix(p) = q {
                assert_eq!(p.addr() & !(p.netmask()), 0);
            }
        }
    }
}
