//! Wire-protocol tests for the serve query protocol — the mirror of
//! `crates/fleet/tests/wire.rs` for the `QueryKind` vocabulary: frame
//! round trips, query/reply codec round trips over randomized values,
//! and the rejection paths a hostile or truncated byte stream must
//! hit (short reads, oversized frames before allocation, corrupted
//! checksums, bad magic, unknown kinds, single bitflips). The serve
//! protocol rides the same `CMFR` framing as the fleet protocol via
//! the `WireKind` seam, so this suite proves the seam carried the
//! whole error discipline across.

use std::io::Cursor;

use clientmap_fleet::{read_frame, write_frame, Frame, FrameError, MAX_FRAME_PAYLOAD};
use clientmap_geo::CountryCode;
use clientmap_net::{Asn, Prefix};
use clientmap_serve::{Query, QueryKind, Reply};
use proptest::prelude::*;

fn encode_frame(frame: &Frame<QueryKind>) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame).expect("in-memory write");
    buf
}

fn kind_strategy() -> impl Strategy<Value = QueryKind> {
    prop_oneof![
        Just(QueryKind::Info),
        Just(QueryKind::WaitGen),
        Just(QueryKind::As),
        Just(QueryKind::Country),
        Just(QueryKind::Prefix),
        Just(QueryKind::TopK),
        Just(QueryKind::Ecdf),
        Just(QueryKind::Stop),
        Just(QueryKind::RespInfo),
        Just(QueryKind::RespAs),
        Just(QueryKind::RespCountry),
        Just(QueryKind::RespPrefix),
        Just(QueryKind::RespTopK),
        Just(QueryKind::RespEcdf),
        Just(QueryKind::RespBye),
        Just(QueryKind::RespErr),
    ]
}

fn query_strategy() -> impl Strategy<Value = Query> {
    prop_oneof![
        Just(Query::Info),
        any::<u64>().prop_map(Query::WaitGen),
        any::<u32>().prop_map(|n| Query::As(Asn(n))),
        (0u8..26, 0u8..26).prop_map(|(a, b)| Query::Country(CountryCode::new(b'A' + a, b'A' + b))),
        (any::<u32>(), 1u8..=32).prop_map(|(addr, len)| {
            let masked = addr & (u32::MAX << (32 - u32::from(len)));
            Query::Prefix(Prefix::new(masked, len).expect("masked to length"))
        }),
        any::<u32>().prop_map(Query::TopK),
        any::<u32>().prop_map(Query::Ecdf),
        Just(Query::Stop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any query-kind frame survives an encode/decode round trip, and
    /// back-to-back frames on one stream decode in order.
    #[test]
    fn frames_roundtrip_any_payload(
        kind in kind_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        kind2 in kind_strategy(),
        payload2 in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let a = Frame::new(kind, payload);
        let b = Frame::new(kind2, payload2);
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        let mut cur = Cursor::new(buf);
        let got_a = read_frame::<QueryKind>(&mut cur).expect("first frame");
        let got_b = read_frame::<QueryKind>(&mut cur).expect("second frame");
        prop_assert_eq!(got_a.kind, a.kind);
        prop_assert_eq!(got_a.payload, a.payload);
        prop_assert_eq!(got_b.kind, b.kind);
        prop_assert_eq!(got_b.payload, b.payload);
    }

    /// Every query survives frame + payload codec round trip: encode
    /// to a frame, ship the bytes, decode kind and payload back.
    #[test]
    fn queries_roundtrip_through_frames(query in query_strategy()) {
        let frame = Frame::new(query.kind(), query.encode());
        let buf = encode_frame(&frame);
        let got = read_frame::<QueryKind>(&mut Cursor::new(buf)).expect("frame");
        let decoded = Query::decode(got.kind, &got.payload).expect("query payload");
        prop_assert_eq!(decoded, query);
    }

    /// Truncating an encoded frame anywhere short of its full length
    /// yields `ShortRead` — never a bogus frame, never a hang.
    #[test]
    fn any_truncation_is_a_short_read(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        cut_frac in 0.0..1.0f64,
    ) {
        let buf = encode_frame(&Frame::new(QueryKind::RespTopK, payload));
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let mut cur = Cursor::new(buf[..cut].to_vec());
        match read_frame::<QueryKind>(&mut cur) {
            Err(FrameError::ShortRead) => {}
            other => prop_assert!(false, "expected ShortRead, got {other:?}"),
        }
    }

    /// Flipping any single bit of an encoded frame never yields the
    /// original frame back: either a typed error, or (when the flip
    /// lands in the length field in a way that still parses) a frame
    /// whose content differs.
    #[test]
    fn any_single_bitflip_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let frame = Frame::new(QueryKind::As, payload);
        let mut buf = encode_frame(&frame);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        let mut cur = Cursor::new(buf);
        match read_frame::<QueryKind>(&mut cur) {
            Err(_) => {}
            Ok(got) => prop_assert!(
                got.kind != frame.kind || got.payload != frame.payload,
                "bitflip at byte {pos} bit {bit} went unnoticed"
            ),
        }
    }

    /// A flipped bit *inside a query payload* is caught even though
    /// the frame checksum is recomputed to match: query payloads carry
    /// their own trailing checksum (`ByteWriter::finish`), so payload
    /// damage with a valid frame wrapper still fails to decode — or
    /// decodes to a different query (flips in the already-read-and-
    /// checked value bytes cannot collide with the original).
    #[test]
    fn requery_bitflips_are_caught_by_the_payload_checksum(
        query in query_strategy(),
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let payload = query.encode();
        prop_assume!(!payload.is_empty());
        let mut damaged = payload.clone();
        let pos = ((damaged.len() - 1) as f64 * pos_frac) as usize;
        damaged[pos] ^= 1 << bit;
        match Query::decode(query.kind(), &damaged) {
            Err(_) => {}
            Ok(got) => prop_assert!(got != query, "payload flip at {pos}/{bit} went unnoticed"),
        }
    }
}

#[test]
fn oversized_frames_are_rejected_before_allocation() {
    // Hand-build a header claiming a payload just past the cap; the
    // reader must fail on the length field without trying to read (or
    // allocate) the body.
    let mut buf = Vec::new();
    buf.extend_from_slice(b"CMFR");
    buf.push(QueryKind::RespEcdf as u8);
    buf.extend_from_slice(&((MAX_FRAME_PAYLOAD + 1) as u32).to_le_bytes());
    match read_frame::<QueryKind>(&mut Cursor::new(buf)) {
        Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME_PAYLOAD + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn corrupted_checksum_is_rejected() {
    let mut buf = encode_frame(&Frame::new(QueryKind::RespInfo, vec![1, 2, 3]));
    let last = buf.len() - 1;
    buf[last] ^= 0x40; // flip a checksum bit only
    match read_frame::<QueryKind>(&mut Cursor::new(buf)) {
        Err(FrameError::BadChecksum) => {}
        other => panic!("expected BadChecksum, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_unknown_kind_are_rejected() {
    let mut buf = encode_frame(&Frame::new(QueryKind::Stop, Vec::new()));
    buf[0] = b'X';
    match read_frame::<QueryKind>(&mut Cursor::new(buf.clone())) {
        Err(FrameError::BadMagic(m)) => assert_eq!(&m, b"XMFR"),
        other => panic!("expected BadMagic, got {other:?}"),
    }

    // 0xEE is no QueryKind — checked before the checksum, so a fleet
    // peer accidentally pointed at a serve port fails fast and typed.
    let mut buf = encode_frame(&Frame::new(QueryKind::Stop, Vec::new()));
    buf[4] = 0xEE;
    match read_frame::<QueryKind>(&mut Cursor::new(buf)) {
        Err(FrameError::UnknownKind(0xEE)) => {}
        other => panic!("expected UnknownKind, got {other:?}"),
    }
}

#[test]
fn payload_bitflips_hit_the_checksum() {
    // Deterministic complement of the proptest: every single-bit flip
    // in the payload region specifically lands on BadChecksum.
    let frame = Frame::new(QueryKind::RespAs, (0u8..32).collect::<Vec<u8>>());
    let clean = encode_frame(&frame);
    let payload_start = 4 + 1 + 4;
    let payload_end = payload_start + frame.payload.len();
    for pos in payload_start..payload_end {
        for bit in 0..8 {
            let mut buf = clean.clone();
            buf[pos] ^= 1 << bit;
            match read_frame::<QueryKind>(&mut Cursor::new(buf)) {
                Err(FrameError::BadChecksum) => {}
                other => panic!("flip at {pos}/{bit}: expected BadChecksum, got {other:?}"),
            }
        }
    }
}

#[test]
fn replies_reject_truncation_and_checksum_damage() {
    let reply = Reply::Err("generation 9 will never be published".into());
    let clean = reply.encode();
    assert!(Reply::decode(reply.kind(), &clean[..clean.len() - 3]).is_err());
    let mut bad = clean.clone();
    bad[2] ^= 1;
    assert!(Reply::decode(reply.kind(), &bad).is_err());
    // And a reply payload never decodes under a query's kind.
    assert!(Query::decode(reply.kind(), &clean).is_err());
}
