//! Paper-style rendering of every table and figure.
//!
//! Each `table*`/`figure*` method regenerates one artifact of the
//! paper's evaluation from a [`PipelineOutput`] and renders it as an
//! aligned text table (the repro harness writes these to
//! `EXPERIMENTS`-style logs; numeric access goes through
//! `clientmap-analysis` directly).

use clientmap_analysis::overlap::{as_matrix, prefix_matrix, volume_matrix, OverlapMatrix};
use clientmap_analysis::render::{fmt_count, fmt_pct, TextTable};
use clientmap_analysis::{
    confidence_summary, country_coverage, dns_http_proxy, domain_overlap, extrapolation_agreement,
    fraction_active_cdf, groundtruth_recall, pop_density, relative_volume_cdf,
    relative_volume_differences, scope_precision, scope_stability_table, service_radius_cdfs,
};
use clientmap_datasets::DatasetId;
use clientmap_sim::{pop_catalog, PopStatus};

use crate::PipelineOutput;

/// Datasets shown in Table 1 (prefix granularity).
const TABLE1_IDS: [DatasetId; 5] = [
    DatasetId::CacheProbing,
    DatasetId::DnsLogs,
    DatasetId::Union,
    DatasetId::MicrosoftClients,
    DatasetId::MicrosoftResolvers,
];

/// Datasets shown in Tables 3 and 4 (AS granularity).
const TABLE3_IDS: [DatasetId; 6] = [
    DatasetId::CacheProbing,
    DatasetId::DnsLogs,
    DatasetId::Union,
    DatasetId::Apnic,
    DatasetId::MicrosoftClients,
    DatasetId::MicrosoftResolvers,
];

/// Report renderer over one pipeline run.
#[derive(Debug)]
pub struct Report<'a> {
    out: &'a PipelineOutput,
}

impl<'a> Report<'a> {
    /// Wraps an output.
    pub fn new(out: &'a PipelineOutput) -> Report<'a> {
        Report { out }
    }

    fn matrix_table(&self, m: &OverlapMatrix) -> String {
        let mut header = vec!["dataset".to_string()];
        header.extend(m.datasets.iter().map(|d| d.label().to_string()));
        let mut t = TextTable::new(header);
        for (i, row_id) in m.datasets.iter().enumerate() {
            let mut cells = vec![row_id.label().to_string()];
            for j in 0..m.datasets.len() {
                cells.push(format!(
                    "{} ({})",
                    fmt_count(m.cells[i][j]),
                    fmt_pct(m.pct[i][j])
                ));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Table 1: /24-prefix overlap matrix.
    pub fn table1(&self) -> String {
        let m = prefix_matrix(&self.out.bundle, &TABLE1_IDS);
        format!(
            "Table 1: /24 prefix overlap (row ∩ column, % of row)\n{}",
            self.matrix_table(&m)
        )
    }

    /// Table 2: ECS scope stability per probed domain.
    pub fn table2(&self) -> String {
        let rows = scope_stability_table(&self.out.cache_probe);
        let mut t = TextTable::new(["scope difference", "domain", "hits", "% of domain hits"]);
        for r in &rows {
            let (e, w2, w4) = r.pcts();
            t.row(["exact match", &r.domain, &fmt_count(r.exact), &fmt_pct(e)]);
            t.row(["within 2", &r.domain, &fmt_count(r.within2), &fmt_pct(w2)]);
            t.row(["within 4", &r.domain, &fmt_count(r.within4), &fmt_pct(w4)]);
        }
        format!(
            "Table 2: query-scope vs response-scope stability\n{}",
            t.render()
        )
    }

    /// Table 3: AS-level overlap matrix.
    pub fn table3(&self) -> String {
        let m = as_matrix(&self.out.bundle, &TABLE3_IDS);
        format!(
            "Table 3: AS overlap (row ∩ column, % of row)\n{}",
            self.matrix_table(&m)
        )
    }

    /// Table 4: volume-weighted AS coverage.
    pub fn table4(&self) -> String {
        let m = volume_matrix(&self.out.bundle, &TABLE3_IDS, &TABLE3_IDS);
        let mut header = vec!["row volume \\ in column ASes".to_string()];
        header.extend(m.cols.iter().map(|d| d.label().to_string()));
        let mut t = TextTable::new(header);
        for (i, row) in m.rows.iter().enumerate() {
            let mut cells = vec![row.label().to_string()];
            cells.extend(m.pct[i].iter().map(|p| fmt_pct(*p)));
            t.row(cells);
        }
        format!(
            "Table 4: % of row dataset's activity volume in ASes shared with column\n{}",
            t.render()
        )
    }

    /// Table 5: per-domain cache-probing results.
    pub fn table5(&self) -> String {
        let d = domain_overlap(&self.out.cache_probe, &self.out.sim.world().rib);
        let mut t = TextTable::new(
            ["metric"]
                .into_iter()
                .map(String::from)
                .chain(d.domains.clone()),
        );
        let row = |label: &str, vals: &[u64]| -> Vec<String> {
            std::iter::once(label.to_string())
                .chain(vals.iter().map(|v| fmt_count(*v)))
                .collect()
        };
        t.row(row("Total prefixes", &d.total_prefixes));
        t.row(row("Unique prefixes", &d.unique_prefixes));
        t.row(row("Total ASes", &d.total_ases));
        t.row(row("Unique ASes", &d.unique_ases));
        for (i, name) in d.domains.iter().enumerate() {
            let mut cells = vec![format!("∩ {name}")];
            for j in 0..d.domains.len() {
                let pct = if d.total_prefixes[i] > 0 {
                    100.0 * d.pairwise[i][j] as f64 / d.total_prefixes[i] as f64
                } else {
                    0.0
                };
                cells.push(format!(
                    "{} ({})",
                    fmt_count(d.pairwise[i][j]),
                    fmt_pct(pct)
                ));
            }
            t.row(cells);
        }
        format!("Table 5: cache-probing results by domain\n{}", t.render())
    }

    /// Figure 1: active-prefix density per probed PoP.
    pub fn figure1(&self) -> String {
        let density = pop_density(&self.out.cache_probe);
        let mut t = TextTable::new(["PoP", "location", "assigned scopes", "active /24s"]);
        for d in &density {
            t.row([
                d.code.to_string(),
                d.location.to_string(),
                d.assigned_scopes.to_string(),
                fmt_count(d.active_slash24s),
            ]);
        }
        format!(
            "Figure 1: density of active prefixes per probed PoP\n{}",
            t.render()
        )
    }

    /// Figure 2: service-radius CDFs for three geographically diverse
    /// PoPs (the paper shows Groningen, The Dalles, Charleston; when a
    /// preferred site was not bound in this run, the busiest calibrated
    /// PoPs stand in).
    pub fn figure2(&self) -> String {
        let cdfs = service_radius_cdfs(&self.out.cache_probe);
        let pops = pop_catalog();
        // Preferred sites first, then the best-calibrated rest.
        let preferred: Vec<usize> = ["GRQ", "DLS", "CHS"]
            .iter()
            .filter_map(|code| pops.iter().position(|p| p.code == *code))
            .filter(|pop| cdfs.get(pop).map(|c| !c.is_empty()).unwrap_or(false))
            .collect();
        let mut chosen = preferred;
        if chosen.len() < 3 {
            let mut rest: Vec<(usize, usize)> = cdfs
                .iter()
                .filter(|(pop, c)| !chosen.contains(pop) && !c.is_empty())
                .map(|(pop, c)| (*pop, c.len()))
                .collect();
            rest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            chosen.extend(rest.into_iter().take(3 - chosen.len()).map(|(p, _)| p));
        }
        let mut t = TextTable::new(["PoP", "hits", "p50 km", "p90 km (service radius)", "max km"]);
        for pop in chosen {
            let cdf = &cdfs[&pop];
            t.row([
                pops[pop].code.to_string(),
                cdf.len().to_string(),
                format!("{:.0}", cdf.quantile(0.5).unwrap_or(0.0)),
                format!("{:.0}", cdf.quantile(0.9).unwrap_or(0.0)),
                format!("{:.0}", cdf.quantile(1.0).unwrap_or(0.0)),
            ]);
        }
        format!(
            "Figure 2: cache-hit distance CDFs and 90th-percentile service radii\n{}",
            t.render()
        )
    }

    /// Figure 3: per-country fraction of APNIC users in ASes with
    /// detected cache-probing activity.
    pub fn figure3(&self) -> String {
        let cov = country_coverage(
            self.out.sim.world(),
            &self.out.bundle.apnic,
            &self.out.bundle.cache_probing_as,
        );
        let mut t = TextTable::new(["country", "APNIC users", "fraction seen"]);
        for c in cov.iter().take(25) {
            t.row([
                c.country.as_str().to_string(),
                fmt_count(c.apnic_users as u64),
                format!("{:.2}", c.fraction_seen),
            ]);
        }
        format!(
            "Figure 3: fraction of a country's APNIC Internet population seen by cache probing\n{}",
            t.render()
        )
    }

    /// Figure 4: CDF of the fraction of each AS's announced /24s
    /// detected active (lower vs upper bound).
    pub fn figure4(&self) -> String {
        let (points, lower, upper) =
            fraction_active_cdf(&self.out.cache_probe, &self.out.sim.world().rib);
        let mut t = TextTable::new(["quantile", "lower bound", "upper bound"]);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            t.row([
                format!("{q:.2}"),
                format!("{:.3}", lower.quantile(q).unwrap_or(0.0)),
                format!("{:.3}", upper.quantile(q).unwrap_or(0.0)),
            ]);
        }
        format!(
            "Figure 4: fraction of AS's /24 prefixes detected active ({} ASes)\n{}",
            points.len(),
            t.render()
        )
    }

    /// Figure 5: PoP coverage states, and the share of Google Public
    /// DNS activity (by Microsoft-observed client IPs) carried by the
    /// probed PoPs vs the active-but-unreachable ones.
    pub fn figure5(&self) -> String {
        let pops = pop_catalog();
        let count = |s: PopStatus| pops.iter().filter(|p| p.status == s).count();
        let gpdns = self.out.sim.gpdns();
        let mut probed_vol = 0u64;
        let mut unprobed_vol = 0u64;
        for (addr, clients) in &self.out.cdn_logs.resolvers {
            if let Some(pop) = gpdns.pop_of_egress(*addr) {
                match pops[pop].status {
                    PopStatus::ProbedVerified => probed_vol += clients,
                    PopStatus::UnprobedVerified => unprobed_vol += clients,
                    PopStatus::UnprobedInactive => {}
                }
            }
        }
        let total = (probed_vol + unprobed_vol).max(1);
        let mut t = TextTable::new(["PoP state", "count", "share of Google DNS client IPs"]);
        t.row([
            "probed and verified".to_string(),
            count(PopStatus::ProbedVerified).to_string(),
            fmt_pct(100.0 * probed_vol as f64 / total as f64),
        ]);
        t.row([
            "unprobed and verified".to_string(),
            count(PopStatus::UnprobedVerified).to_string(),
            fmt_pct(100.0 * unprobed_vol as f64 / total as f64),
        ]);
        t.row([
            "unprobed and unverified".to_string(),
            count(PopStatus::UnprobedInactive).to_string(),
            fmt_pct(0.0),
        ]);
        format!("Figure 5: Google Public DNS PoP coverage\n{}", t.render())
    }

    /// Figure 6: distribution of relative per-AS volume for the three
    /// volume-bearing activity measures.
    pub fn figure6(&self) -> String {
        let mut t = TextTable::new(["dataset", "ASes", "p10", "p50", "p90"]);
        for id in [
            DatasetId::DnsLogs,
            DatasetId::MicrosoftResolvers,
            DatasetId::Apnic,
        ] {
            let cdf = relative_volume_cdf(&self.out.bundle.as_view(id));
            t.row([
                id.label().to_string(),
                cdf.len().to_string(),
                format!("{:.2e}", cdf.quantile(0.1).unwrap_or(0.0)),
                format!("{:.2e}", cdf.quantile(0.5).unwrap_or(0.0)),
                format!("{:.2e}", cdf.quantile(0.9).unwrap_or(0.0)),
            ]);
        }
        format!(
            "Figure 6: distribution of relative volume among ASes\n{}",
            t.render()
        )
    }

    /// Figure 7: per-AS differences in relative volume between the
    /// three measures.
    pub fn figure7(&self) -> String {
        let b = &self.out.bundle;
        let pairs = [
            (
                "Microsoft resolvers − APNIC",
                relative_volume_differences(
                    &b.as_view(DatasetId::MicrosoftResolvers),
                    &b.as_view(DatasetId::Apnic),
                ),
            ),
            (
                "Microsoft resolvers − DNS logs",
                relative_volume_differences(
                    &b.as_view(DatasetId::MicrosoftResolvers),
                    &b.as_view(DatasetId::DnsLogs),
                ),
            ),
            (
                "APNIC − DNS logs",
                relative_volume_differences(
                    &b.as_view(DatasetId::Apnic),
                    &b.as_view(DatasetId::DnsLogs),
                ),
            ),
        ];
        let mut t = TextTable::new(["pair", "ASes", "p10", "p50", "p90", "|diff|≤1e-5"]);
        for (label, cdf) in &pairs {
            let small = cdf.samples().iter().filter(|d| d.abs() <= 1.0e-5).count() as f64
                / cdf.len().max(1) as f64;
            t.row([
                label.to_string(),
                cdf.len().to_string(),
                format!("{:+.1e}", cdf.quantile(0.1).unwrap_or(0.0)),
                format!("{:+.1e}", cdf.quantile(0.5).unwrap_or(0.0)),
                format!("{:+.1e}", cdf.quantile(0.9).unwrap_or(0.0)),
                fmt_pct(100.0 * small),
            ]);
        }
        format!(
            "Figure 7: differences in relative AS volume between measures\n{}",
            t.render()
        )
    }

    /// Robustness summary of a faulted run: what the fault plan threw
    /// at the campaign and how the resilient prober absorbed it —
    /// ending with the partial-result accounting ("N prefixes
    /// unmeasured, M% of probes retried"). `None` on fault-free runs,
    /// keeping their rendered reports byte-identical to the pre-fault
    /// pipeline.
    pub fn robustness(&self) -> Option<String> {
        let f = self.out.cache_probe.fault.as_ref()?;
        let retried_pct = 100.0 * f.retried_fraction(self.out.cache_probe.probes_sent);
        let mut t = TextTable::new(["measure", "value"]);
        t.row(["fault profile", &f.profile]);
        t.row(["failures observed", &fmt_count(f.observed)]);
        t.row(["  recovered by retry", &fmt_count(f.recovered)]);
        t.row(["  degraded (TCP fallback)", &fmt_count(f.degraded)]);
        t.row(["  lost (budget exhausted)", &fmt_count(f.lost)]);
        t.row(["retries sent", &fmt_count(f.retries)]);
        t.row(["quarantined PoPs", &format!("{}", f.quarantined_pops.len())]);
        t.row([
            "scopes rescued at fallback PoPs",
            &fmt_count(f.rescued_scopes),
        ]);
        Some(format!(
            "Robustness: fault injection and partial-result accounting\n{}\n\
             {} of {} assigned prefixes unmeasured ({}); {} of probes retried\n",
            t.render(),
            fmt_count(f.unmeasured_scopes),
            fmt_count(f.assigned_scopes),
            fmt_pct(100.0 * f.unmeasured_fraction()),
            fmt_pct(retried_pct),
        ))
    }

    /// Cluster-based predictive probing ablation: how much live probing
    /// the clustered planner saved and how well its extrapolated
    /// verdicts agreed with what the member slots held in the prior
    /// sweep. `None` on non-clustered runs, keeping their rendered
    /// reports byte-identical to the pre-clustering pipeline. (The
    /// full clustered-vs-exhaustive precision/recall needs a reference
    /// run and lives in the differential suite and `repro bench`.)
    pub fn cluster_ablation(&self) -> Option<String> {
        let snap = self.out.metrics_snapshot();
        if !snap
            .counters
            .contains_key("cacheprobe.cluster.planned_universe")
        {
            return None;
        }
        let universe = snap.counter("cacheprobe.cluster.planned_universe");
        let reps = snap.counter("cacheprobe.cluster.representatives");
        let extrapolated = snap.counter("cacheprobe.cluster.extrapolated");
        let escalated = snap.counter("cacheprobe.cluster.escalated");
        let clusters = snap.counter("cacheprobe.cluster.clusters");
        let live = reps + escalated;
        let live_ratio = live as f64 / universe.max(1) as f64;
        let conf = confidence_summary(&self.out.sweep);
        let agreement = extrapolation_agreement(&self.out.sweep);
        let mut t = TextTable::new(["measure", "value"]);
        t.row(["slots planned for live probing", &fmt_count(universe)]);
        t.row(["  probed as representatives", &fmt_count(reps)]);
        t.row(["  extrapolated from a representative", &fmt_count(extrapolated)]);
        t.row(["  escalated to live probing", &fmt_count(escalated)]);
        t.row(["clusters", &fmt_count(clusters)]);
        t.row([
            "live-probe ratio vs exhaustive",
            &format!("{live_ratio:.3}"),
        ]);
        t.row([
            "confidence tags (min / mean / max of 255)",
            &format!("{} / {:.0} / {}", conf.min, conf.mean, conf.max),
        ]);
        Some(format!(
            "Cluster ablation: predictive probing vs the prior sweep\n{}\n\
             extrapolated-Hit agreement with prior: precision {} recall {} \
             (TP {} FP {} FN {})\n",
            t.render(),
            fmt_pct(100.0 * agreement.precision()),
            fmt_pct(100.0 * agreement.recall()),
            fmt_count(agreement.true_positives),
            fmt_count(agreement.false_positives),
            fmt_count(agreement.false_negatives),
        ))
    }

    /// The §4 headline validations.
    pub fn headlines(&self) -> String {
        let proxy = dns_http_proxy(&self.out.bundle);
        let recall = groundtruth_recall(&self.out.cache_probe, &self.out.bundle.cloud_ecs);
        let precision = scope_precision(&self.out.cache_probe, &self.out.bundle.ms_clients);
        let m = volume_matrix(
            &self.out.bundle,
            &[DatasetId::MicrosoftClients],
            &[DatasetId::Union, DatasetId::Apnic, DatasetId::CacheProbing],
        );
        let union_vol = m
            .cell(DatasetId::MicrosoftClients, DatasetId::Union)
            .unwrap_or(0.0);
        let apnic_vol = m
            .cell(DatasetId::MicrosoftClients, DatasetId::Apnic)
            .unwrap_or(0.0);
        let prefix_vol = 100.0
            * self
                .out
                .bundle
                .ms_clients
                .volume_in(&self.out.bundle.cache_probing)
            / self.out.bundle.ms_clients.total_volume().max(1e-12);
        format!(
            "Headline validations (paper §4)\n\
             ------------------------------------------------------------\n\
             DNS↔HTTP proxy: {:.1}% of ECS-DNS volume from prefixes with HTTP (paper 97.2%)\n\
             DNS↔HTTP proxy: {:.1}% of HTTP volume from ECS-seen prefixes (paper 92%)\n\
             Ground-truth ECS recall of cache probing (MS domain): {:.1}% (paper 91%)\n\
             Hit scopes containing ≥1 CDN-client /24: {:.1}% (paper 99.1%)\n\
             MS-clients volume in union-detected ASes: {:.1}% (paper 98.8%)\n\
             MS-clients volume in APNIC ASes: {:.1}% (paper 92%)\n\
             MS-clients volume in cache-probed prefixes: {:.1}% (paper 95.2%)\n",
            proxy.dns_volume_in_http_prefixes_pct,
            proxy.http_volume_in_ecs_prefixes_pct,
            100.0 * recall,
            100.0 * precision,
            union_vol,
            apnic_vol,
            prefix_vol,
        )
    }

    /// Everything, in paper order (plus the robustness section when a
    /// fault plan was active, and the cluster ablation when the sweep
    /// ran the clustered planner).
    pub fn render_all(&self) -> String {
        let mut sections = vec![self.headlines()];
        sections.extend(self.robustness());
        sections.extend(self.cluster_ablation());
        sections.extend([
            self.table1(),
            self.table2(),
            self.table3(),
            self.table4(),
            self.table5(),
            self.figure1(),
            self.figure2(),
            self.figure3(),
            self.figure4(),
            self.figure5(),
            self.figure6(),
            self.figure7(),
        ]);
        sections.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use crate::{Pipeline, PipelineConfig};

    /// Rendering smoke checks on a shared tiny run (the pipeline tests
    /// assert content; these assert structure).
    fn output() -> &'static crate::PipelineOutput {
        static OUT: std::sync::OnceLock<crate::PipelineOutput> = std::sync::OnceLock::new();
        OUT.get_or_init(|| Pipeline::run(PipelineConfig::tiny(99)).expect("tiny run is healthy"))
    }

    #[test]
    fn tables_have_expected_row_counts() {
        let r = output().report();
        // Table 1: 5 datasets ⇒ 5 data rows + header + rule.
        assert_eq!(r.table1().lines().count(), 1 + 2 + 5);
        // Table 3: 6 datasets.
        assert_eq!(r.table3().lines().count(), 1 + 2 + 6);
        // Table 2: 3 buckets × (5 domains + overall).
        assert_eq!(r.table2().lines().count(), 1 + 2 + 3 * 6);
    }

    #[test]
    fn figure2_always_lists_three_pops() {
        let fig2 = output().report().figure2();
        // Header line + table header + rule + 3 PoPs.
        assert_eq!(fig2.lines().count(), 1 + 2 + 3, "{fig2}");
    }

    #[test]
    fn figure5_counts_are_the_catalog_constants() {
        let fig5 = output().report().figure5();
        assert!(fig5.contains("22"));
        assert!(fig5.contains("18"));
        assert!(fig5
            .lines()
            .any(|l| l.contains("unprobed and verified") && l.contains('5')));
    }

    #[test]
    fn robustness_section_only_renders_for_faulted_runs() {
        // Fault-free: absent from render_all, keeping reports
        // byte-identical to the pre-fault pipeline.
        assert!(output().report().robustness().is_none());
        assert!(!output().report().render_all().contains("Robustness"));

        use clientmap_faults::{FaultConfig, FaultProfile};
        let mut config = PipelineConfig::tiny(99);
        config.faults = FaultConfig::profile(FaultProfile::Lossy, 5);
        let o = Pipeline::run(config).expect("lossy run completes");
        let section = o.report().robustness().expect("faulted run has section");
        for needle in ["lossy", "unmeasured", "retried", "quarantined PoPs"] {
            assert!(section.contains(needle), "robustness missing {needle:?}");
        }
        assert!(o.report().render_all().contains("Robustness"));
    }

    #[test]
    fn cluster_ablation_only_renders_for_clustered_runs() {
        // Non-clustered: absent from render_all, keeping reports
        // byte-identical to the pre-clustering pipeline.
        assert!(output().report().cluster_ablation().is_none());
        assert!(!output().report().render_all().contains("Cluster ablation"));

        let mut config = PipelineConfig::tiny(99);
        config.probe.clustered_probing = true;
        let o = Pipeline::run(config).expect("clustered run is healthy");
        let section = o
            .report()
            .cluster_ablation()
            .expect("clustered run has section");
        for needle in [
            "representatives",
            "extrapolated",
            "escalated",
            "live-probe ratio",
            "agreement with prior",
        ] {
            assert!(section.contains(needle), "ablation missing {needle:?}");
        }
        assert!(o.report().render_all().contains("Cluster ablation"));
        // The clustered plan probed a real subset, not everything.
        let snap = o.metrics_snapshot();
        assert!(snap.counter("cacheprobe.cluster.extrapolated") > 0);
        assert!(!o.sweep.confidence.is_empty());
    }

    #[test]
    fn headlines_mention_every_paper_number() {
        let h = output().report().headlines();
        for paper in ["97.2%", "92%", "91%", "99.1%", "98.8%", "95.2%"] {
            assert!(h.contains(paper), "headline missing paper anchor {paper}");
        }
    }
}
