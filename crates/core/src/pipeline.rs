//! Pipeline orchestration.

use std::sync::Arc;
use std::time::Instant;

use clientmap_cacheprobe::{run_technique_full, sweep, CacheProbeResult, ProbeConfig};
use clientmap_chromium::{crawl_with_metrics, ChromiumClassifier, DnsLogsResult};
use clientmap_datasets::{ApnicConfig, ApnicDataset, DatasetBundle};
use clientmap_faults::FaultConfig;
use clientmap_net::Prefix;
use clientmap_sim::cdn::CdnLogs;
use clientmap_sim::{Sim, SimTime};
use clientmap_store::SweepSnapshot;
use clientmap_telemetry::{MetricsRegistry, MetricsSnapshot, ScopedTimer};
use clientmap_world::{World, WorldConfig};

use crate::Report;

/// All configuration of an end-to-end run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The synthetic world.
    pub world: WorldConfig,
    /// Cache probing.
    pub probe: ProbeConfig,
    /// The Chromium classifier.
    pub classifier: ChromiumClassifier,
    /// The APNIC-style campaign.
    pub apnic: ApnicConfig,
    /// DITL capture length, days (paper: 2).
    pub root_trace_days: u32,
    /// DITL capture sampling rate (1.0 = complete traces).
    pub root_trace_sample_rate: f64,
    /// CDN/TM log window, hours (paper compares "a full day").
    pub cdn_window_hours: u64,
    /// Fault injection (default: off — the fault-free simulation).
    pub faults: FaultConfig,
}

impl PipelineConfig {
    /// Tiny run for unit tests (seconds).
    pub fn tiny(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::tiny(seed),
            probe: {
                let mut p = ProbeConfig::test_scale();
                p.duration_hours = 2.0;
                p.calibration_sample = 250;
                p
            },
            classifier: ChromiumClassifier::default(),
            apnic: ApnicConfig::default(),
            root_trace_days: 2,
            root_trace_sample_rate: 0.005,
            cdn_window_hours: 24,
            faults: FaultConfig::default(),
        }
    }

    /// Small run for integration tests and quick benches (tens of
    /// seconds).
    pub fn small(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::small(seed),
            probe: {
                let mut p = ProbeConfig::test_scale();
                p.duration_hours = 4.0;
                p.calibration_sample = 2_000;
                p
            },
            root_trace_sample_rate: 0.001,
            ..PipelineConfig::tiny(seed)
        }
    }

    /// The full evaluation scale used by the `repro` harness.
    pub fn paper_scale(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::paper_scale(seed),
            probe: ProbeConfig::default(),
            root_trace_sample_rate: 5.0e-4,
            ..PipelineConfig::tiny(seed)
        }
    }
}

/// Everything an end-to-end run produces.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The simulation (world + services), for further queries.
    pub sim: Sim,
    /// Cache-probing output.
    pub cache_probe: CacheProbeResult,
    /// DNS-logs output.
    pub dns_logs: DnsLogsResult,
    /// Microsoft-side logs.
    pub cdn_logs: CdnLogs,
    /// APNIC estimates.
    pub apnic: ApnicDataset,
    /// The comparable dataset bundle.
    pub bundle: DatasetBundle,
    /// The run's telemetry registry (shared with [`Self::sim`]): every
    /// counter and histogram the stages recorded, invariant-checked.
    pub metrics: Arc<MetricsRegistry>,
    /// This run's sweep snapshot — save it (see
    /// [`SweepSnapshot::encode`]) to warm-start a later run over the
    /// same world and probing config.
    pub sweep: SweepSnapshot,
    /// The configuration that produced this output.
    pub config: PipelineConfig,
}

impl PipelineOutput {
    /// A report renderer over this output.
    pub fn report(&self) -> Report<'_> {
        Report::new(self)
    }

    /// A frozen copy of the run's metrics. Same-seed runs produce
    /// byte-identical [`MetricsSnapshot::to_json`] output.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// Why an end-to-end run could not produce a trustworthy output.
///
/// The pipeline used to panic on these; returning them instead lets
/// callers (the CLI, the repro harness, chaos tests) decide whether to
/// print, retry, or fail the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A counter-reconciliation law from [`crate::invariants`] broke:
    /// the run finished, but its telemetry is silently miscounted and
    /// the output cannot be trusted.
    InvariantViolations(Vec<String>),
    /// A stage could not run at all (e.g. the generated world yielded
    /// an empty probe universe).
    Stage {
        /// The stage that failed (`world_gen`, `cache_probe`, …).
        stage: String,
        /// What went wrong.
        message: String,
    },
    /// A distributed sweep lost its worker fleet: every worker
    /// disconnected or crashed with shards still unprobed, so the
    /// merged output could not be assembled. Shards probed so far are
    /// discarded whole — a fleet failure never ships a partial merge.
    Fleet {
        /// The last worker (address) the driver lost, or the merge
        /// stage itself.
        worker: String,
        /// What went wrong, including per-worker failure detail.
        message: String,
    },
    /// Every live transport peer blew its per-frame i/o deadline: the
    /// fleet's sockets all stalled mid-frame past `--io-timeout`, so
    /// the sweep could not make progress. Distinct from [`Self::Fleet`]
    /// so callers can tell "peers crashed" from "peers hung".
    Timeout {
        /// The last peer whose socket stalled.
        peer: String,
        /// The expired deadline, in seconds.
        seconds: u64,
    },
    /// The run was interrupted (SIGINT on the driver) before every
    /// shard completed. In-flight shards were drained and workers told
    /// to exit cleanly; no partial output was produced.
    Interrupted {
        /// Shards fully probed and collected before the interrupt.
        completed: usize,
        /// Total shards the sweep was partitioned into.
        total: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::InvariantViolations(v) => {
                write!(f, "telemetry invariants violated:\n  {}", v.join("\n  "))
            }
            PipelineError::Stage { stage, message } => {
                write!(f, "pipeline stage {stage} failed: {message}")
            }
            PipelineError::Fleet { worker, message } => {
                write!(f, "fleet sweep failed ({worker}): {message}")
            }
            PipelineError::Timeout { peer, seconds } => {
                write!(f, "i/o deadline of {seconds}s expired talking to {peer}")
            }
            PipelineError::Interrupted { completed, total } => {
                write!(
                    f,
                    "interrupted with {completed}/{total} shards complete; \
                     in-flight shards drained, no output written"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// How the pipeline runs its probing window. The default
/// ([`LocalSweep`]) executes everything in-process via
/// [`run_technique_full`]; the fleet driver substitutes an executor
/// that prepares the sweep locally, shards the unit list over TCP
/// workers, and merges their deltas — the contract being that any
/// executor returns the same `(result, snapshot)` bytes the local one
/// would.
pub trait SweepExecutor {
    /// Runs the sweep stage: everything `run_technique_full` does,
    /// with the same warm-start semantics.
    fn run_sweep(
        &mut self,
        sim: &mut Sim,
        cfg: &ProbeConfig,
        universe: &[Prefix],
        timings: &mut Vec<(String, f64)>,
        prior: Option<&SweepSnapshot>,
    ) -> Result<(CacheProbeResult, SweepSnapshot), PipelineError>;
}

/// The in-process executor: [`run_technique_full`], verbatim.
#[derive(Debug, Default)]
pub struct LocalSweep;

impl SweepExecutor for LocalSweep {
    fn run_sweep(
        &mut self,
        sim: &mut Sim,
        cfg: &ProbeConfig,
        universe: &[Prefix],
        timings: &mut Vec<(String, f64)>,
        prior: Option<&SweepSnapshot>,
    ) -> Result<(CacheProbeResult, SweepSnapshot), PipelineError> {
        Ok(run_technique_full(sim, cfg, universe, timings, prior))
    }
}

/// The pipeline entry point.
#[derive(Debug)]
pub struct Pipeline;

impl Pipeline {
    /// Runs everything: world → sim → techniques → datasets.
    ///
    /// The run owns one [`MetricsRegistry`] (created with the [`Sim`],
    /// so world gauges and Google-front-end counters land in the same
    /// place) and records a **sim-time** span per stage — wall clocks
    /// never touch the registry, keeping snapshots reproducible. After
    /// assembly, every counter-reconciliation invariant is checked
    /// (see [`crate::invariants`]); a broken conservation law comes
    /// back as [`PipelineError::InvariantViolations`] rather than
    /// shipping silently miscounted telemetry.
    pub fn run(config: PipelineConfig) -> Result<PipelineOutput, PipelineError> {
        Pipeline::run_timed(config, &mut Vec::new())
    }

    /// [`Pipeline::run`] warm-started from a prior run's
    /// [`SweepSnapshot`]. The snapshot must come from the same world
    /// seed and probing configuration (checked via the snapshot's
    /// config digest); the planner then re-probes only scopes that are
    /// new, expired under `probe.expiry_budget`, in need of rescue, or
    /// dirtied by fault quarantine — everything else is replayed from
    /// the snapshot, keeping the output byte-identical to a cold run
    /// when nothing changed.
    pub fn run_warm(
        config: PipelineConfig,
        prior: Option<SweepSnapshot>,
    ) -> Result<PipelineOutput, PipelineError> {
        Pipeline::run_warm_timed(config, prior, &mut Vec::new())
    }

    /// [`Pipeline::run`], additionally appending `(stage, wall seconds)`
    /// pairs to `timings`: `world_gen`, the cache-probe substages
    /// (`vantage_discovery`, `scope_scan`, `calibration`, `probing`,
    /// and `rescue` under faults), `crawl`, and `analysis`. Wall clocks
    /// stay in this side channel — the telemetry registry only ever
    /// sees sim-time spans, so metrics snapshots remain
    /// byte-reproducible.
    pub fn run_timed(
        config: PipelineConfig,
        timings: &mut Vec<(String, f64)>,
    ) -> Result<PipelineOutput, PipelineError> {
        Pipeline::run_warm_timed(config, None, timings)
    }

    /// [`Pipeline::run_warm`] with the [`Pipeline::run_timed`] timing
    /// side channel.
    pub fn run_warm_timed(
        config: PipelineConfig,
        prior: Option<SweepSnapshot>,
        timings: &mut Vec<(String, f64)>,
    ) -> Result<PipelineOutput, PipelineError> {
        Pipeline::run_warm_timed_with(config, prior, timings, &mut LocalSweep)
    }

    /// Runs `sweeps` successive warm-chained runs on a sim-time
    /// cadence: sweep 1 starts from `prior` (cold when `None`), and
    /// each later sweep warm-starts from the snapshot the previous one
    /// produced, so the planner re-probes only what
    /// `config.probe.expiry_budget` expires (plus anything new, dirty,
    /// or in need of rescue). After each sweep the `observer` receives
    /// the 1-based sweep number and owns the full [`PipelineOutput`] —
    /// the seam `clientmap serve` uses to diff verdict tables into its
    /// event log and publish a fresh store generation. An observer
    /// error aborts the cadence and is returned as-is.
    ///
    /// The chain is deterministic: the same `(config, prior, sweeps)`
    /// produces byte-identical snapshots and reports at every step, at
    /// any thread count.
    pub fn run_cadence<F>(
        config: PipelineConfig,
        prior: Option<SweepSnapshot>,
        sweeps: u32,
        mut observer: F,
    ) -> Result<(), PipelineError>
    where
        F: FnMut(u32, PipelineOutput) -> Result<(), PipelineError>,
    {
        let mut prior = prior;
        for sweep_no in 1..=sweeps {
            let out = Pipeline::run_warm(config.clone(), prior.take())?;
            prior = Some(out.sweep.clone());
            observer(sweep_no, out)?;
        }
        Ok(())
    }

    /// [`Pipeline::run_warm_timed`] with a pluggable probing-window
    /// executor — the seam the distributed fleet driver plugs into.
    /// Every stage outside the sweep (world generation, crawl, CDN
    /// logs, APNIC, analysis, invariants) runs in-process regardless.
    pub fn run_warm_timed_with(
        config: PipelineConfig,
        prior: Option<SweepSnapshot>,
        timings: &mut Vec<(String, f64)>,
        executor: &mut dyn SweepExecutor,
    ) -> Result<PipelineOutput, PipelineError> {
        let stage = Instant::now();
        let world = World::generate(config.world.clone());
        // The probe universe: public allocation data (RIR files stand-in).
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        if universe.is_empty() {
            return Err(PipelineError::Stage {
                stage: "world_gen".into(),
                message: "generated world has no announced blocks to probe".into(),
            });
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let mut sim = Sim::with_faults(world, Arc::clone(&metrics), &config.faults);
        metrics.counter("pipeline.runs").inc();
        timings.push(("world_gen".into(), stage.elapsed().as_secs_f64()));

        // Warm-start validity: a snapshot only speaks for runs over the
        // same world and probing configuration. Refusing a mismatched
        // snapshot here (rather than silently replaying stale records)
        // is what lets the warm path promise byte-identical output.
        if let Some(prior) = prior.as_ref() {
            let digest = sweep::config_digest(&sim, &config.probe, &universe);
            if prior.world_seed != config.world.seed {
                return Err(PipelineError::Stage {
                    stage: "warm-start".into(),
                    message: format!(
                        "snapshot is from world seed {} but this run uses seed {}",
                        prior.world_seed, config.world.seed
                    ),
                });
            }
            if prior.config_digest != digest {
                return Err(PipelineError::Stage {
                    stage: "warm-start".into(),
                    message: format!(
                        "snapshot config digest {:#x} does not match this run's {:#x} \
                         (world or probing configuration changed)",
                        prior.config_digest, digest
                    ),
                });
            }
        }

        // Technique 1: cache probing (discovery at t=0, calibration at
        // t=6 h, the probing window starting at t=8 h).
        let probe_span = ScopedTimer::start(
            metrics.histogram("pipeline.stage_ms.cache_probe"),
            SimTime::ZERO.as_millis(),
        );
        let (cache_probe, sweep) =
            executor.run_sweep(&mut sim, &config.probe, &universe, timings, prior.as_ref())?;
        probe_span.stop(
            (SimTime::from_hours(8) + SimTime::from_secs_f64(config.probe.duration_hours * 3600.0))
                .as_millis(),
        );

        // Technique 2: DNS logs over a DITL capture.
        let stage = Instant::now();
        let trace_span = ScopedTimer::start(
            metrics.histogram("pipeline.stage_ms.dns_logs"),
            SimTime::ZERO.as_millis(),
        );
        let traces = sim.capture_root_traces(
            SimTime::ZERO,
            config.root_trace_days,
            config.root_trace_sample_rate,
        );
        let dns_logs = crawl_with_metrics(&traces, &config.classifier, &metrics);
        trace_span.stop(SimTime::from_hours(u64::from(config.root_trace_days) * 24).as_millis());
        timings.push(("crawl".into(), stage.elapsed().as_secs_f64()));

        // Validation datasets.
        let stage = Instant::now();
        let cdn_span = ScopedTimer::start(
            metrics.histogram("pipeline.stage_ms.cdn_logs"),
            SimTime::ZERO.as_millis(),
        );
        let cdn_logs =
            sim.collect_cdn_logs(SimTime::ZERO, SimTime::from_hours(config.cdn_window_hours));
        cdn_span.stop(SimTime::from_hours(config.cdn_window_hours).as_millis());
        let apnic = ApnicDataset::estimate(sim.world(), &config.apnic);

        let bundle =
            DatasetBundle::build(&cache_probe, &dns_logs, &cdn_logs, &apnic, &sim.world().rib);
        bundle.register_metrics(&metrics);

        let violations = crate::invariants::check(&metrics.snapshot(), config.probe.redundancy);
        if !violations.is_empty() {
            return Err(PipelineError::InvariantViolations(violations));
        }
        timings.push(("analysis".into(), stage.elapsed().as_secs_f64()));

        Ok(PipelineOutput {
            cache_probe,
            dns_logs,
            cdn_logs,
            apnic,
            bundle,
            metrics,
            sweep,
            config,
            sim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_datasets::DatasetId;

    /// One shared tiny end-to-end run for all assertions below.
    fn output() -> &'static PipelineOutput {
        static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
        OUT.get_or_init(|| Pipeline::run(PipelineConfig::tiny(7)).expect("tiny run is healthy"))
    }

    #[test]
    fn all_stages_produce_data() {
        let o = output();
        assert!(o.cache_probe.probes_sent > 0);
        assert!(o.cache_probe.active_set().num_slash24s() > 0);
        assert!(!o.dns_logs.resolvers.is_empty());
        assert!(o.cdn_logs.total_requests() > 0);
        assert!(!o.apnic.is_empty());
    }

    #[test]
    fn bundle_consistent_with_parts() {
        let o = output();
        assert_eq!(
            o.bundle.cache_probing.num_slash24s(),
            o.cache_probe.active_set().num_slash24s()
        );
        assert_eq!(o.bundle.apnic.len(), o.apnic.len());
        assert_eq!(
            o.bundle.ms_clients.num_slash24s() as usize,
            o.cdn_logs.clients.len()
        );
    }

    #[test]
    fn paper_shape_microsoft_sees_most_ases() {
        let o = output();
        // Table 3's key structure: the CDN has the broadest AS view;
        // APNIC the narrowest of the major datasets.
        let ms = o.bundle.as_view(DatasetId::MicrosoftClients).len();
        let apnic = o.bundle.as_view(DatasetId::Apnic).len();
        let union = o.bundle.as_view(DatasetId::Union).len();
        assert!(ms > apnic, "CDN {ms} vs APNIC {apnic}");
        assert!(union > apnic, "union {union} vs APNIC {apnic}");
    }

    #[test]
    fn techniques_beat_apnic_on_volume_coverage() {
        let o = output();
        use clientmap_analysis::overlap::volume_matrix;
        let ids = [
            DatasetId::Union,
            DatasetId::Apnic,
            DatasetId::MicrosoftClients,
        ];
        let m = volume_matrix(&o.bundle, &[DatasetId::MicrosoftClients], &ids);
        let in_union = m
            .cell(DatasetId::MicrosoftClients, DatasetId::Union)
            .unwrap();
        let in_apnic = m
            .cell(DatasetId::MicrosoftClients, DatasetId::Apnic)
            .unwrap();
        // Paper: 98.8% vs 92%.
        assert!(
            in_union > in_apnic,
            "union {in_union:.1}% vs APNIC {in_apnic:.1}%"
        );
        assert!(in_union > 70.0, "union coverage too low: {in_union:.1}%");
    }

    #[test]
    fn faulted_pipeline_completes_and_accounts_for_coverage() {
        use clientmap_faults::{FaultConfig, FaultProfile};
        let mut config = PipelineConfig::tiny(7);
        config.faults = FaultConfig::profile(FaultProfile::Lossy, 5);
        // The invariant check inside run() already enforces the fault
        // conservation laws; reaching Ok means they reconciled.
        let o = Pipeline::run(config).expect("lossy run completes");
        let f = o.cache_probe.fault.as_ref().expect("fault summary");
        assert_eq!(f.profile, "lossy");
        assert!(f.observed > 0 && f.retries > 0);
        assert_eq!(f.observed, f.recovered + f.degraded + f.lost);
        assert!(o.cache_probe.active_set().num_slash24s() > 0);
    }

    #[test]
    fn fault_free_snapshot_has_no_fault_counters() {
        let snap = output().metrics_snapshot();
        assert!(
            !snap.counters.keys().any(|k| k.starts_with("faults.")
                || k.starts_with("cacheprobe.fault.")
                || k.starts_with("cacheprobe.quarantine.")),
            "fault counters must not register on fault-free runs"
        );
        assert!(output().cache_probe.fault.is_none());
    }

    #[test]
    fn warm_run_reproduces_the_cold_run_byte_for_byte() {
        let cold = output();
        // Round-trip through the serialized form — the warm path the
        // CLI takes (`--snapshot-out` then `--snapshot-in`).
        let snap = SweepSnapshot::decode(&cold.sweep.encode()).expect("snapshot round-trips");
        let warm =
            Pipeline::run_warm(PipelineConfig::tiny(7), Some(snap)).expect("warm run is healthy");

        // Nothing changed, so the planner must emit zero probe work …
        let ws = warm.metrics_snapshot();
        assert_eq!(ws.counter("cacheprobe.planner.planned"), 0);
        assert_eq!(ws.counter("cacheprobe.planner.units"), 0);
        assert_eq!(warm.sweep.epoch, cold.sweep.epoch + 1);

        // … and every report byte must match the cold run.
        assert_eq!(warm.report().render_all(), cold.report().render_all());
        assert_eq!(warm.sweep.records, cold.sweep.records);

        // Metrics match too, once the warm-only planner counters are
        // set aside (they do not exist on the cold run).
        let filter = |json: &str| -> String {
            json.lines()
                .filter(|l| !l.contains("cacheprobe.planner."))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            filter(&ws.to_json()),
            filter(&cold.metrics_snapshot().to_json())
        );
    }

    #[test]
    fn cadence_chains_warm_sweeps_in_order() {
        let cold = output();
        let mut seen = Vec::new();
        Pipeline::run_cadence(
            PipelineConfig::tiny(7),
            Some(cold.sweep.clone()),
            3,
            |sweep_no, out| {
                seen.push((sweep_no, out.sweep.epoch));
                // Every chained sweep replays the same stable world.
                assert_eq!(out.report().render_all(), cold.report().render_all());
                Ok(())
            },
        )
        .expect("cadence completes");
        let base = cold.sweep.epoch;
        assert_eq!(seen, vec![(1, base + 1), (2, base + 2), (3, base + 3)]);

        // An observer error aborts the chain immediately.
        let mut calls = 0;
        let err = Pipeline::run_cadence(PipelineConfig::tiny(7), None, 3, |_, _| {
            calls += 1;
            Err(PipelineError::Stage {
                stage: "observer".into(),
                message: "stop".into(),
            })
        })
        .expect_err("observer error propagates");
        assert_eq!(calls, 1);
        assert!(matches!(err, PipelineError::Stage { ref stage, .. } if stage == "observer"));
    }

    #[test]
    fn warm_run_rejects_foreign_snapshots() {
        let snap = output().sweep.clone();
        // A different world seed is refused outright …
        let err = Pipeline::run_warm(PipelineConfig::tiny(8), Some(snap.clone()))
            .expect_err("seed mismatch must be rejected");
        assert!(matches!(err, PipelineError::Stage { ref stage, .. } if stage == "warm-start"));

        // … and so is the same world under a changed probing config.
        let mut config = PipelineConfig::tiny(7);
        config.probe.redundancy += 1;
        let err = Pipeline::run_warm(config, Some(snap))
            .expect_err("config digest mismatch must be rejected");
        assert!(matches!(err, PipelineError::Stage { ref stage, .. } if stage == "warm-start"));
    }

    #[test]
    fn pipeline_errors_render_readably() {
        let e = PipelineError::InvariantViolations(vec!["a != b".into()]);
        assert!(e.to_string().contains("a != b"));
        let e = PipelineError::Stage {
            stage: "world_gen".into(),
            message: "empty universe".into(),
        };
        assert!(e.to_string().contains("world_gen"));
        assert!(e.to_string().contains("empty universe"));
    }

    #[test]
    fn report_renders_everything() {
        let o = output();
        let all = o.report().render_all();
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "cache probing",
            "Microsoft clients",
        ] {
            assert!(all.contains(needle), "report missing {needle:?}");
        }
    }
}
