//! Counter-reconciliation invariants over a telemetry snapshot.
//!
//! Every instrumented subsystem obeys a conservation law: each unit of
//! work increments exactly one terminal counter, so the terminals must
//! sum back to the intake. [`check`] verifies all of them against a
//! [`MetricsSnapshot`] and returns the violations (empty = healthy).
//! [`Pipeline::run`](crate::Pipeline::run) asserts this after every
//! end-to-end run, which makes any future instrumentation drift — a
//! new exit path without a counter, a double-count, a missed branch —
//! fail loudly in every test that touches the pipeline.

use clientmap_telemetry::MetricsSnapshot;

/// Checks every cross-counter invariant; returns human-readable
/// violation descriptions, empty when all hold.
pub fn check(snap: &MetricsSnapshot, redundancy: u32) -> Vec<String> {
    let mut violations = Vec::new();
    let mut expect = |label: &str, lhs: u64, rhs: u64| {
        if lhs != rhs {
            violations.push(format!("{label}: {lhs} != {rhs}"));
        }
    };

    // Cache probing: each attempt sends `redundancy` wire probes and
    // lands in exactly one outcome bucket.
    let attempts = snap.counter("cacheprobe.attempts");
    expect(
        "cacheprobe.probes_sent == redundancy × attempts",
        snap.counter("cacheprobe.probes_sent"),
        u64::from(redundancy) * attempts,
    );
    expect(
        "cacheprobe outcomes (hit + scope0 + miss + dropped) == attempts",
        snap.counter("cacheprobe.outcome.hit")
            + snap.counter("cacheprobe.outcome.scope0")
            + snap.counter("cacheprobe.outcome.miss")
            + snap.counter("cacheprobe.outcome.dropped"),
        attempts,
    );
    expect(
        "per-PoP attempts sum to cacheprobe.attempts",
        sum_suffix(snap, "cacheprobe.pop.", ".attempts"),
        attempts,
    );
    expect(
        "per-PoP hits sum to cacheprobe.outcome.hit",
        sum_suffix(snap, "cacheprobe.pop.", ".hits"),
        snap.counter("cacheprobe.outcome.hit"),
    );

    // Google Public DNS front end: every query takes exactly one exit —
    // dropped by the rate limiter, rejected while parsing, answered
    // specially, refused as recursive, failed by an injected fault, or
    // resolved against one pool (`gpdns.cache.miss.` includes the
    // non-ECS-domain misses). `faults.injected.` counters only exist
    // when a fault plan is active; fault-free they sum to zero.
    expect(
        "gpdns queries == all exit paths",
        snap.counter("gpdns.queries.udp") + snap.counter("gpdns.queries.tcp"),
        snap.counter("gpdns.rate_limited.udp")
            + snap.counter("gpdns.rate_limited.tcp")
            + snap.counter("gpdns.decode_errors")
            + snap.counter("gpdns.formerr")
            + snap.counter("gpdns.myaddr")
            + snap.counter("gpdns.recursive")
            + snap.sum_counters("faults.injected.")
            + snap.sum_counters("gpdns.cache.hit.")
            + snap.sum_counters("gpdns.cache.scope0.")
            + snap.sum_counters("gpdns.cache.miss."),
    );

    // Resilient probing: every failed wire exchange the client observed
    // settles into exactly one of recovered (a retry later succeeded),
    // degraded (an answer arrived, but via a downgraded path), or lost
    // (the retry budget ran out). Fault-free these counters are absent
    // and the law holds vacuously.
    let observed = snap.sum_counters("cacheprobe.fault.observed.");
    expect(
        "cacheprobe fault observations == recovered + degraded + lost",
        observed,
        snap.counter("cacheprobe.fault.recovered")
            + snap.counter("cacheprobe.fault.degraded")
            + snap.counter("cacheprobe.fault.lost"),
    );

    // Client and server agree on the fault volume: with injection
    // active, every failure the prober observed was either injected by
    // the fault plan or dropped by the (real, non-injected) rate
    // limiter — nothing else fails, and nothing fails unobserved. Only
    // checkable when a plan ran (fault-free, rate-limiter drops are
    // observed as plain `outcome.dropped`, not fault observations).
    let injected = snap.sum_counters("faults.injected.");
    if injected > 0 {
        expect(
            "cacheprobe fault observations == injected + rate-limited",
            observed,
            injected + snap.sum_counters("gpdns.rate_limited."),
        );
    }

    // Warm-start planner: every ⟨vantage, domain, scope⟩ slot in the
    // universe is either planned for live probing or replayed from the
    // snapshot, and every planned slot has exactly one reason. The
    // counters only exist on warm runs (cold runs never consult the
    // planner), so the laws are gated on the universe counter.
    if snap.counters.contains_key("cacheprobe.planner.universe") {
        expect(
            "planner planned + skipped_warm == universe",
            snap.counter("cacheprobe.planner.planned")
                + snap.counter("cacheprobe.planner.skipped_warm"),
            snap.counter("cacheprobe.planner.universe"),
        );
        expect(
            "planner reasons (new + dirty + rescued + expired) == planned",
            snap.counter("cacheprobe.planner.new")
                + snap.counter("cacheprobe.planner.dirty")
                + snap.counter("cacheprobe.planner.rescued")
                + snap.counter("cacheprobe.planner.expired"),
            snap.counter("cacheprobe.planner.planned"),
        );
    }

    // Clustered planner: every slot it was asked to probe live is
    // either a probed representative, extrapolated from one, or
    // escalated to live probing — nothing falls between the clusters.
    // The counters only exist on clustered sweeps, so the law is gated
    // on the universe counter like the warm planner's.
    if snap
        .counters
        .contains_key("cacheprobe.cluster.planned_universe")
    {
        expect(
            "cluster representatives + extrapolated + escalated == planned_universe",
            snap.counter("cacheprobe.cluster.representatives")
                + snap.counter("cacheprobe.cluster.extrapolated")
                + snap.counter("cacheprobe.cluster.escalated"),
            snap.counter("cacheprobe.cluster.planned_universe"),
        );
        expect(
            "cluster count == representative count",
            snap.counter("cacheprobe.cluster.clusters"),
            snap.counter("cacheprobe.cluster.representatives"),
        );
    }

    // DNS-logs crawl: every examined record is either shape-rejected,
    // noise-rejected, or attributed to a resolver.
    expect(
        "dnslogs funnel (mismatch + noise + attributed) == examined",
        snap.counter("dnslogs.shape_mismatch")
            + snap.counter("dnslogs.rejected_noise")
            + snap.counter("dnslogs.attributed"),
        snap.counter("dnslogs.records_examined"),
    );

    violations
}

/// Sums counters matching `prefix`…`suffix` (a per-PoP family).
fn sum_suffix(snap: &MetricsSnapshot, prefix: &str, suffix: &str) -> u64 {
    snap.counters
        .range(prefix.to_string()..)
        .take_while(|(name, _)| name.starts_with(prefix))
        .filter(|(name, _)| name.ends_with(suffix))
        .map(|(_, v)| *v)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_telemetry::MetricsRegistry;

    #[test]
    fn empty_snapshot_is_vacuously_healthy() {
        let m = MetricsRegistry::new();
        assert!(check(&m.snapshot(), 3).is_empty());
    }

    #[test]
    fn consistent_counters_pass() {
        let m = MetricsRegistry::new();
        m.counter("cacheprobe.attempts").add(10);
        m.counter("cacheprobe.probes_sent").add(30);
        m.counter("cacheprobe.outcome.hit").add(4);
        m.counter("cacheprobe.outcome.miss").add(6);
        m.counter("cacheprobe.pop.iad.attempts").add(10);
        m.counter("cacheprobe.pop.iad.hits").add(4);
        assert!(check(&m.snapshot(), 3).is_empty());
    }

    #[test]
    fn violations_are_reported() {
        let m = MetricsRegistry::new();
        m.counter("cacheprobe.attempts").add(10);
        m.counter("cacheprobe.probes_sent").add(29); // should be 30
        m.counter("cacheprobe.outcome.miss").add(10);
        m.counter("cacheprobe.pop.iad.attempts").add(10);
        let v = check(&m.snapshot(), 3);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probes_sent"), "{v:?}");
    }

    #[test]
    fn gpdns_leak_is_caught() {
        let m = MetricsRegistry::new();
        m.counter("gpdns.queries.tcp").add(5);
        m.counter("gpdns.cache.hit.pool0").add(4);
        // One query unaccounted for.
        let v = check(&m.snapshot(), 3);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("gpdns"), "{v:?}");
    }

    #[test]
    fn injected_faults_are_a_gpdns_exit_path() {
        let m = MetricsRegistry::new();
        m.counter("gpdns.queries.udp").add(10);
        m.counter("gpdns.cache.hit.pool0").add(7);
        m.counter("faults.injected.loss").add(2);
        m.counter("faults.injected.servfail").add(1);
        // The client observed and settled every injected failure.
        m.counter("cacheprobe.fault.observed.drop").add(2);
        m.counter("cacheprobe.fault.observed.servfail").add(1);
        m.counter("cacheprobe.fault.recovered").add(3);
        // Balanced only because injections count as exits.
        assert!(check(&m.snapshot(), 3).is_empty());
    }

    #[test]
    fn unsettled_fault_observation_is_caught() {
        let m = MetricsRegistry::new();
        m.counter("cacheprobe.fault.observed.drop").add(3);
        m.counter("cacheprobe.fault.recovered").add(2);
        // One observed failure never settled into a terminal bucket.
        let v = check(&m.snapshot(), 3);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("recovered + degraded + lost"), "{v:?}");
    }

    #[test]
    fn planner_conservation_is_checked_on_warm_runs_only() {
        let m = MetricsRegistry::new();
        // Cold runs never register planner counters — vacuously healthy.
        assert!(check(&m.snapshot(), 3).is_empty());

        m.counter("cacheprobe.planner.universe").add(100);
        m.counter("cacheprobe.planner.skipped_warm").add(90);
        m.counter("cacheprobe.planner.planned").add(10);
        m.counter("cacheprobe.planner.expired").add(8);
        m.counter("cacheprobe.planner.new").add(2);
        assert!(check(&m.snapshot(), 3).is_empty());

        // A slot that is neither planned nor replayed is a leak.
        m.counter("cacheprobe.planner.universe").add(1);
        let v = check(&m.snapshot(), 3);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("skipped_warm"), "{v:?}");
    }

    #[test]
    fn cluster_conservation_is_checked_on_clustered_runs_only() {
        let m = MetricsRegistry::new();
        // Non-clustered runs never register cluster counters.
        assert!(check(&m.snapshot(), 3).is_empty());

        m.counter("cacheprobe.cluster.planned_universe").add(100);
        m.counter("cacheprobe.cluster.representatives").add(30);
        m.counter("cacheprobe.cluster.extrapolated").add(65);
        m.counter("cacheprobe.cluster.escalated").add(5);
        m.counter("cacheprobe.cluster.clusters").add(30);
        assert!(check(&m.snapshot(), 3).is_empty());

        // A slot that is neither probed nor extrapolated is a leak.
        m.counter("cacheprobe.cluster.planned_universe").add(1);
        let v = check(&m.snapshot(), 3);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("planned_universe"), "{v:?}");
    }

    #[test]
    fn client_server_fault_volumes_must_agree_when_injecting() {
        let m = MetricsRegistry::new();
        m.counter("gpdns.queries.udp").add(5);
        m.counter("gpdns.cache.hit.pool0").add(1);
        m.counter("faults.injected.loss").add(4);
        m.counter("cacheprobe.fault.observed.drop").add(3); // should be 4
        m.counter("cacheprobe.fault.lost").add(3);
        let v = check(&m.snapshot(), 3);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("injected + rate-limited"), "{v:?}");
    }
}
