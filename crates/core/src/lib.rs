//! # clientmap-core
//!
//! The end-to-end pipeline of *Towards Identifying Networks with
//! Internet Clients Using Public Data* (IMC '21): generate a synthetic
//! Internet, run both measurement techniques against its simulated
//! services, extract the comparison datasets, and produce every table
//! and figure of the paper's evaluation.
//!
//! ```no_run
//! use clientmap_core::{Pipeline, PipelineConfig};
//!
//! let out = Pipeline::run(PipelineConfig::tiny(42)).expect("healthy run");
//! println!("{}", out.report().render_all());
//! ```
//!
//! The crate deliberately keeps a thin surface: [`PipelineConfig`]
//! (all dials), [`Pipeline::run`] (the orchestration, returning
//! [`PipelineError`] instead of panicking), and
//! [`PipelineOutput`]/[`Report`] (results + rendering). Each stage is
//! individually usable through the underlying crates.

#![warn(missing_docs)]

pub mod invariants;
mod pipeline;
mod report;

pub use pipeline::{
    LocalSweep, Pipeline, PipelineConfig, PipelineError, PipelineOutput, SweepExecutor,
};
pub use report::Report;
