//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace
//! vendors the handful of `rand` APIs it actually uses: [`Rng`] with
//! `gen_range`/`gen_bool`/`gen`, [`SeedableRng::seed_from_u64`], and the
//! [`rngs::StdRng`]/[`rngs::SmallRng`] generators. Both generators are a
//! deterministic xoshiro256++ seeded via SplitMix64 — the same
//! construction the real `rand` uses for `SmallRng` — so streams are
//! reproducible across platforms and across runs, which the repo's
//! deterministic-simulation tests rely on. Numeric streams differ from
//! upstream `rand` (which is fine: nothing in the repo depends on the
//! exact upstream stream, only on seeded determinism).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 span cannot happen for <=64-bit types.
                    return rng.next_u64() as $ty;
                }
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $ty
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($ty:ty, $bits:expr, $mant:expr);*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $ty
                    / (1u64 << $mant) as $ty;
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $ty
                    / ((1u64 << $mant) - 1) as $ty;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, 32, 24; f64, 64, 53);

/// Types producible by [`Rng::gen`] (subset of the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample_standard(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng` for the
/// `seed_from_u64` entry point, the only one the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seed expansion: fast, tiny, and
    /// fully deterministic from a `u64` seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator as [`StdRng`]; kept as a distinct type to match
    /// the `rand` API shape.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        inner: StdRng,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(0u8..=255);
            let _ = i;
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
