//! # clientmap-telemetry
//!
//! Deterministic observability for the measurement pipeline: lock-free
//! counters, log-bucketed histograms, and sim-time scoped timers,
//! collected in a [`MetricsRegistry`] whose [`MetricsSnapshot`] renders
//! to byte-stable JSON.
//!
//! Two properties matter more than anything else here:
//!
//! 1. **The hot path never locks.** Instruments are `Arc` handles over
//!    atomics; the registry lock is taken only at registration and
//!    snapshot time.
//! 2. **Snapshots are deterministic.** Every operation on an instrument
//!    is a commutative atomic update (`fetch_add`, `fetch_min`,
//!    `fetch_max`), so concurrent probers can interleave arbitrarily
//!    and the totals still come out identical run-to-run. No wall-clock
//!    time is ever recorded — durations are simulated-time spans passed
//!    in by the caller — so two same-seed runs produce byte-identical
//!    JSON regardless of thread scheduling or host speed.
//!
//! ```
//! use clientmap_telemetry::MetricsRegistry;
//!
//! let m = MetricsRegistry::new();
//! let hits = m.counter("gpdns.cache.hit.pool0");
//! hits.inc();
//! hits.add(2);
//! let snap = m.snapshot();
//! assert_eq!(snap.counter("gpdns.cache.hit.pool0"), 3);
//! assert!(snap.to_json().contains("\"gpdns.cache.hit.pool0\": 3"));
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter (plain `fetch_add`; commutative,
/// so totals are interleaving-independent).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram buckets: one per bit length, so bucket `i` (for `i ≥ 1`)
/// holds values in `[2^(i-1), 2^i)` and bucket 0 holds exactly zero.
const NUM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// All state updates are commutative atomics (`fetch_add` on buckets,
/// `fetch_min`/`fetch_max` on the extrema), so like [`Counter`] it is
/// safe — and deterministic — under arbitrary concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = (0..NUM_BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| {
                    // Inclusive upper bound of bucket i.
                    let le = if i == 0 {
                        0
                    } else if i == 64 {
                        u64::MAX
                    } else {
                        (1u64 << i) - 1
                    };
                    (le, c)
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A scoped timer over **simulated** time.
///
/// The caller supplies both endpoints in sim-milliseconds; no wall
/// clock is consulted, so recorded durations replay identically across
/// runs. Dropping the timer without [`ScopedTimer::stop`] records
/// nothing (spans are explicit, never implicit).
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    start_ms: u64,
}

impl ScopedTimer {
    /// Opens a span starting at sim-time `start_ms`.
    pub fn start(hist: Arc<Histogram>, start_ms: u64) -> Self {
        ScopedTimer { hist, start_ms }
    }

    /// Closes the span at sim-time `end_ms`, recording the (saturating)
    /// duration; returns it.
    pub fn stop(self, end_ms: u64) -> u64 {
        let elapsed = end_ms.saturating_sub(self.start_ms);
        self.hist.record(elapsed);
        elapsed
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The set of named instruments for one run.
///
/// `counter`/`histogram` are get-or-create and return shared handles;
/// callers resolve handles once (outside hot loops) and update through
/// the handle thereafter, so steady-state recording is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().unwrap().counters.get(name) {
            return Arc::clone(c);
        }
        let mut inner = self.inner.write().unwrap();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.read().unwrap().histograms.get(name) {
            return Arc::clone(h);
        }
        let mut inner = self.inner.write().unwrap();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen, ordered view of a [`MetricsRegistry`].
///
/// Backed by `BTreeMap`s, so iteration — and therefore
/// [`MetricsSnapshot::to_json`] — is byte-stable for equal contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The state of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Renders the snapshot as pretty-printed JSON.
    ///
    /// Keys are sorted and all values are integers, so equal snapshots
    /// serialize to byte-identical strings (the determinism contract
    /// the test suite leans on).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{le}, {c}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// The difference between two snapshots of one histogram: additive
/// fields carry the post − pre increment; `min`/`max` (which are not
/// additive) carry the **post** state, which is safe to absorb because
/// `fetch_min`/`fetch_max` only widen the receiver's extrema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramDelta {
    /// Observations recorded inside the window.
    pub count: u64,
    /// Sum increment inside the window.
    pub sum: u64,
    /// Post-window minimum (valid: deltas are only kept when
    /// `count > 0`, so the post state has a real minimum).
    pub min: u64,
    /// Post-window maximum.
    pub max: u64,
    /// Per-bucket count increments as `(inclusive upper bound,
    /// increment)`, ascending, non-zero entries only.
    pub buckets: Vec<(u64, u64)>,
}

/// The difference between two [`MetricsSnapshot`]s of the same
/// registry — everything that was recorded between `pre` and `post`.
///
/// A delta can be replayed into another registry with
/// [`MetricsRegistry::absorb_delta`]; because every instrument update
/// is a commutative atomic, `pre + delta == post` holds exactly, and
/// absorbing a stored delta reproduces the skipped work's telemetry
/// byte-for-byte. This is how warm-started sweeps account for probing
/// they did not repeat.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsDelta {
    /// Counter increments by name, non-zero entries only.
    pub counters: BTreeMap<String, u64>,
    /// Histogram increments by name, recorded-in-window entries only.
    pub histograms: BTreeMap<String, HistogramDelta>,
}

impl MetricsDelta {
    /// True when the window recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

impl MetricsSnapshot {
    /// The increments recorded between `pre` (earlier) and `self`
    /// (later). Counters absent from `pre` count from zero; entries
    /// with no change are dropped, so a quiet window yields an empty
    /// delta regardless of how many instruments exist.
    pub fn delta_from(&self, pre: &MetricsSnapshot) -> MetricsDelta {
        let mut counters = BTreeMap::new();
        for (name, post) in &self.counters {
            let before = pre.counter(name);
            if *post > before {
                counters.insert(name.clone(), post - before);
            }
        }
        let mut histograms = BTreeMap::new();
        for (name, post) in &self.histograms {
            let empty = HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            };
            let before = pre.histogram(name).unwrap_or(&empty);
            if post.count <= before.count {
                continue;
            }
            let pre_buckets: BTreeMap<u64, u64> = before.buckets.iter().copied().collect();
            let buckets = post
                .buckets
                .iter()
                .filter_map(|&(le, c)| {
                    let inc = c - pre_buckets.get(&le).copied().unwrap_or(0);
                    (inc > 0).then_some((le, inc))
                })
                .collect();
            histograms.insert(
                name.clone(),
                HistogramDelta {
                    count: post.count - before.count,
                    sum: post.sum - before.sum,
                    min: post.min,
                    max: post.max,
                    buckets,
                },
            );
        }
        MetricsDelta {
            counters,
            histograms,
        }
    }
}

impl Histogram {
    /// Folds a stored window delta into this histogram. Bucket bounds
    /// map back to indices by bit length (the inverse of
    /// [`Histogram::snapshot`]'s encoding); extrema widen via
    /// `fetch_min`/`fetch_max`.
    fn absorb(&self, d: &HistogramDelta) {
        for &(le, inc) in &d.buckets {
            let bucket = if le == 0 {
                0
            } else if le == u64::MAX {
                64
            } else {
                (64 - le.leading_zeros()) as usize
            };
            self.buckets[bucket].fetch_add(inc, Ordering::Relaxed);
        }
        self.count.fetch_add(d.count, Ordering::Relaxed);
        self.sum.fetch_add(d.sum, Ordering::Relaxed);
        if d.count > 0 {
            self.min.fetch_min(d.min, Ordering::Relaxed);
            self.max.fetch_max(d.max, Ordering::Relaxed);
        }
    }
}

impl MetricsRegistry {
    /// Replays a stored window delta into this registry, creating any
    /// missing instruments. Absorbing the delta of a skipped stage
    /// leaves the registry exactly as if the stage had run.
    pub fn absorb_delta(&self, d: &MetricsDelta) {
        for (name, inc) in &d.counters {
            self.counter(name).add(*inc);
        }
        for (name, hd) in &d.histograms {
            self.histogram(name).absorb(hd);
        }
    }
}

/// Appends `s` as a JSON string literal (metric names are ASCII, but
/// escape the structural characters anyway).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = MetricsRegistry::new();
        let a = m.counter("a");
        let a2 = m.counter("a");
        a.inc();
        a2.add(4);
        assert_eq!(m.counter("a").get(), 5);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 4 → le 7; 1000 → le 1023.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn scoped_timer_records_sim_time_span() {
        let m = MetricsRegistry::new();
        let h = m.histogram("stage_ms");
        let t = ScopedTimer::start(Arc::clone(&h), 1_000);
        assert_eq!(t.stop(4_500), 3_500);
        let s = m.snapshot();
        assert_eq!(s.histogram("stage_ms").unwrap().sum, 3_500);
        // Backwards clocks saturate to zero rather than wrapping.
        assert_eq!(ScopedTimer::start(h, 10).stop(5), 0);
    }

    #[test]
    fn snapshot_json_is_stable_and_sorted() {
        let m = MetricsRegistry::new();
        m.counter("z.last").add(1);
        m.counter("a.first").add(2);
        m.histogram("h").record(5);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        let first = a.find("a.first").unwrap();
        let last = a.find("z.last").unwrap();
        assert!(first < last, "keys must serialize sorted");
        assert!(a.contains("\"buckets\": [[7, 1]]"), "{a}");
    }

    #[test]
    fn concurrent_updates_commute() {
        let m = MetricsRegistry::new();
        let c = m.counter("c");
        let h = m.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for v in 0..1000u64 {
                        c.inc();
                        h.record(v % 17);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counter("c"), 8_000);
        assert_eq!(snap.histogram("h").unwrap().count, 8_000);
        assert_eq!(snap.histogram("h").unwrap().max, 16);
    }

    #[test]
    fn sum_counters_by_prefix() {
        let m = MetricsRegistry::new();
        m.counter("x.a").add(1);
        m.counter("x.b").add(2);
        m.counter("y.a").add(10);
        let s = m.snapshot();
        assert_eq!(s.sum_counters("x."), 3);
        assert_eq!(s.sum_counters("y."), 10);
        assert_eq!(s.sum_counters("z."), 0);
    }

    #[test]
    fn delta_captures_only_the_window() {
        let m = MetricsRegistry::new();
        m.counter("before").add(7);
        m.histogram("h").record(3);
        let pre = m.snapshot();
        m.counter("before").add(2);
        m.counter("during").add(5);
        m.histogram("h").record(100);
        let d = m.snapshot().delta_from(&pre);
        assert_eq!(d.counters.get("before"), Some(&2));
        assert_eq!(d.counters.get("during"), Some(&5));
        assert!(!d.counters.contains_key("quiet"));
        let hd = &d.histograms["h"];
        assert_eq!((hd.count, hd.sum), (1, 100));
        assert_eq!(hd.buckets, vec![(127, 1)]);
    }

    #[test]
    fn quiet_window_yields_empty_delta() {
        let m = MetricsRegistry::new();
        m.counter("a").add(1);
        m.histogram("h").record(9);
        let pre = m.snapshot();
        assert!(m.snapshot().delta_from(&pre).is_empty());
    }

    #[test]
    fn absorbing_a_delta_reproduces_the_skipped_window() {
        // Run a "cold" registry through a window, capture the delta,
        // then absorb it into a registry that skipped the window: the
        // snapshots must be byte-identical.
        let cold = MetricsRegistry::new();
        cold.counter("shared").add(3);
        cold.histogram("ttl").record(0);
        let pre = cold.snapshot();
        cold.counter("shared").add(10);
        cold.counter("window.only").add(4);
        for v in [1u64, 2, 2, 900, u64::MAX] {
            cold.histogram("ttl").record(v);
        }
        let delta = cold.snapshot().delta_from(&pre);

        let warm = MetricsRegistry::new();
        warm.counter("shared").add(3);
        warm.histogram("ttl").record(0);
        warm.absorb_delta(&delta);
        assert_eq!(warm.snapshot().to_json(), cold.snapshot().to_json());
    }

    #[test]
    fn absorb_into_fresh_histogram_keeps_extrema() {
        let src = MetricsRegistry::new();
        let pre = src.snapshot();
        src.histogram("h").record(17);
        src.histogram("h").record(4);
        let delta = src.snapshot().delta_from(&pre);
        let dst = MetricsRegistry::new();
        dst.absorb_delta(&delta);
        let h = dst.snapshot().histogram("h").cloned().unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 21, 4, 17));
        assert_eq!(h.buckets, vec![(7, 1), (31, 1)]);
    }

    #[test]
    fn json_escapes_structural_characters() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\u0001\"");
    }
}
