//! Fixed little-endian wire codec for sweep snapshots.
//!
//! Deliberately boring: every integer is fixed-width little-endian,
//! strings and sequences carry a `u32` length prefix, and the whole
//! buffer ends in a [`checksum`] of everything before it. No field is
//! optional at the byte level (options encode an explicit flag byte),
//! so equal values encode to byte-identical buffers — the property the
//! warm-start determinism tests pin.

use clientmap_net::splitmix64;

/// Decode-side failures. Corruption is detected *before* any field is
/// interpreted (magic → version → checksum, then parse), so a bad
/// snapshot can never half-load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The format version is newer (or older) than this build reads.
    BadVersion(u16),
    /// The trailing checksum does not match the payload.
    BadChecksum,
    /// The buffer ended mid-field.
    Truncated,
    /// A field decoded to an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a sweep snapshot (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::BadChecksum => write!(f, "snapshot checksum mismatch (corrupt file)"),
            CodecError::Truncated => write!(f, "snapshot truncated"),
            CodecError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Seeded checksum over `bytes`: splitmix64 folded over 8-byte
/// little-endian chunks (zero-padded tail) with the length mixed in
/// first, so permutations, truncations, and bit flips all disturb it.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut acc = splitmix64(0xC5EC_5EED ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = splitmix64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// Little-endian append-only encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Seals the buffer: appends the [`checksum`] of everything
    /// written so far and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = checksum(&self.buf);
        self.u64(sum);
        self.buf
    }

    /// Bytes written so far (pre-checksum).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian cursor decoder over a checksum-verified payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Verifies the trailing [`checksum`] of `data` and returns a
    /// reader over the payload before it.
    pub fn verified(data: &'a [u8]) -> Result<ByteReader<'a>, CodecError> {
        if data.len() < 8 {
            return Err(CodecError::Truncated);
        }
        let (payload, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if checksum(payload) != stored {
            return Err(CodecError::BadChecksum);
        }
        Ok(ByteReader {
            data: payload,
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads `n` raw bytes (e.g. a nested encoded structure).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("utf-8 string"))
    }

    /// Whether the payload is fully consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Fails unless the payload is fully consumed — trailing garbage
    /// means a layout mismatch even when the checksum passes.
    pub fn expect_done(&self) -> Result<(), CodecError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.str("scope/24");
        let bytes = w.finish();
        let mut r = ByteReader::verified(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "scope/24");
        assert!(r.expect_done().is_ok());
    }

    #[test]
    fn any_flipped_byte_fails_the_checksum() {
        let mut w = ByteWriter::new();
        w.u64(42);
        w.str("payload");
        let bytes = w.finish();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                ByteReader::verified(&bad).err(),
                Some(CodecError::BadChecksum),
                "flip at byte {i} went undetected"
            );
        }
        assert_eq!(
            ByteReader::verified(&bytes[..bytes.len() - 1]).err(),
            Some(CodecError::BadChecksum)
        );
        assert_eq!(
            ByteReader::verified(&[1, 2, 3]).err(),
            Some(CodecError::Truncated)
        );
    }

    #[test]
    fn reads_past_the_end_are_truncated_not_panics() {
        let bytes = ByteWriter::new().finish();
        let mut r = ByteReader::verified(&bytes).unwrap();
        assert_eq!(r.u8().err(), Some(CodecError::Truncated));
    }
}
