//! # clientmap-store — dense /24 universe state + warm-start snapshots
//!
//! The paper's cache-probing technique (§3.1) is only tractable because
//! it *shrinks* the probe space: ECS scope discovery and per-PoP
//! service radii exist to avoid re-probing 16.7M /24s everywhere, and
//! the measurement itself is a *repeated* sweep tracking cache churn
//! over time. This crate supplies the storage substrate for both ideas:
//!
//! * **Dense /24 structures** over the full 2²⁴ prefix space — a
//!   fixed-stride radix of lazily allocated 4096-entry pages. A
//!   [`Slash24Bitset`] holds membership (set algebra is word-wise
//!   AND/OR + popcount, which makes the paper's Table 1/3/4 overlap
//!   matrices near-free), a [`Slash24Table`] holds one small integer
//!   per /24, and a [`VerdictTable`] stores per-/24 probe
//!   [`Verdict`]s with the technique's `Hit > HitScopeZero > Miss >
//!   Dropped` merge ranking. [`AsBitsets`] indexes announced space per
//!   origin AS for bitset-speed per-AS coverage queries.
//!
//! * **[`SweepSnapshot`]** — a versioned, checksummed, byte-stable
//!   serialization of everything one probing sweep learned: per-scope
//!   probe records, the telemetry delta of the probing window, fault
//!   accounting, and the config digest that scopes its validity. A
//!   later run loads the snapshot to **warm-start**: the
//!   [`planner`] diffs it against the current work list and emits
//!   probe units only for scopes that are new, expired under the
//!   rotating TTL budget, in need of rescue, or dirtied by fault
//!   quarantine.
//!
//! Everything here is deterministic: the byte layout is fixed
//! little-endian, maps are ordered, and the planner's expiry draw is a
//! stable hash — so snapshots and the runs they feed remain
//! byte-identical at any thread count.
//!
//! ```
//! use clientmap_store::{ScopeRecord, SweepSnapshot};
//!
//! let mut snap = SweepSnapshot::new(2021, 0xD16E57);
//! snap.records.insert(
//!     (0, 0, 0x0A000000, 24),
//!     ScopeRecord { attempts: 9, ..ScopeRecord::default() },
//! );
//! let bytes = snap.encode();
//! let back = SweepSnapshot::decode(&bytes).unwrap();
//! assert_eq!(back, snap);
//! // Any flipped payload byte is caught by the trailing checksum.
//! let mut bad = bytes.clone();
//! bad[10] ^= 0xFF;
//! assert!(SweepSnapshot::decode(&bad).is_err());
//! ```

#![warn(missing_docs)]

mod bitset;
mod codec;
mod confidence;
pub mod eventlog;
mod generation;
pub mod planner;
mod snapshot;
mod table;
mod verdict;

pub use bitset::{AsBitsets, Slash24Bitset, SLASH24_SPACE};
pub use codec::{checksum, ByteReader, ByteWriter, CodecError};
pub use confidence::{ConfidenceRecord, ConfidenceTable, CONFIDENCE_MAX};
pub use eventlog::{
    verdict_delta, EventLog, EventLogError, EventRecord, FailureEvent, Recovery, SweepEvent,
    VerdictChange, EVENTLOG_MAGIC, EVENTLOG_VERSION,
};
pub use generation::GenerationCell;
pub use planner::{classify, PlanReason, PlannerStats, PriorScope};
pub use snapshot::{
    CalibrationRecord, FaultRecord, HitEvent, RecordKey, ScopeRecord, SweepSnapshot,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use table::Slash24Table;
pub use verdict::{Verdict, VerdictTable};

/// The dense index of the /24 containing `addr`: its top 24 bits.
#[inline]
pub fn slash24_index(addr: u32) -> u32 {
    addr >> 8
}
