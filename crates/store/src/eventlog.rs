//! The serve mode's append-only sweep event log.
//!
//! A resident `clientmap serve` process re-sweeps on a cadence and
//! records what each sweep *changed* — per-/24 [`Verdict`] transitions
//! — as one appended [`SweepEvent`] per sweep. The log is the durable
//! longitudinal record ("which networks gained or lost client activity,
//! and when") that the batch pipeline never kept.
//!
//! ```text
//! ┌──────────┬─────────┬───────────────┬───────────────────┬──────────────┐
//! │ magic    │ version │ world_seed    │ config_digest u64 │ records ...  │
//! │ CMEL     │ u16 LE  │ u64 LE        │ LE                │              │
//! └──────────┴─────────┴───────────────┴───────────────────┴──────────────┘
//! record := ┌──────┬─────────┬────────────┬────────────┐
//!           │ kind │ len u32 │ payload    │ sum u64 LE │
//!           │ u8   │ LE      │ len bytes  │ splitmix64 │
//!           └──────┴─────────┴────────────┴────────────┘
//! ```
//!
//! Records ride the same framing/checksum discipline as the fleet's
//! `CMFR` wire frames: the trailing checksum is [`checksum`] over
//! `kind ‖ len ‖ payload`, and a length prefix above
//! [`MAX_EVENT_PAYLOAD`] is refused *before* any allocation. Appends
//! are a single `write_all` + flush, so a crash can only ever tear the
//! *tail* record; [`EventLog::open`] scans the file, truncates a torn
//! or corrupt tail back to the last intact record boundary, and never
//! half-applies anything.
//!
//! Compaction reuses the [`SweepSnapshot`] codec as the compacted
//! base: [`EventLog::compact`] atomically replaces the sibling
//! `<path>.base` file with the current snapshot and rewinds the log to
//! its header — `base ⊕ log` always reconstructs the present store
//! state, and replaying the same sweeps regenerates the same log bytes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{checksum, ByteReader, ByteWriter, CodecError};
use crate::snapshot::SweepSnapshot;
use crate::verdict::{Verdict, VerdictTable};

/// Event-log magic: the first four bytes of every log file.
pub const EVENTLOG_MAGIC: [u8; 4] = *b"CMEL";

/// Current event-log format version.
pub const EVENTLOG_VERSION: u16 = 1;

/// Hard ceiling on one record's payload (256 MiB) — same rationale as
/// the fleet's frame cap: far above any real sweep delta, far below a
/// corrupt length prefix.
pub const MAX_EVENT_PAYLOAD: usize = 1 << 28;

/// Bytes before the first record: magic, version, world seed, digest.
pub const EVENTLOG_HEADER_LEN: u64 = 4 + 2 + 8 + 8;

/// Record kind: one sweep's verdict delta ([`SweepEvent`]).
pub const RECORD_SWEEP: u8 = 1;

/// Record kind: a sweep chain failure ([`FailureEvent`]) — the typed
/// mark a degraded-mode service leaves in its durable history when a
/// sweep dies but serving continues from the last good generation.
pub const RECORD_FAILURE: u8 = 2;

/// One per-/24 verdict transition between consecutive generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerdictChange {
    /// Dense /24 index (`addr >> 8`).
    pub index: u32,
    /// The verdict the previous generation held.
    pub from: Verdict,
    /// The verdict this generation holds.
    pub to: Verdict,
}

/// What one cadenced sweep changed: the unit of the event log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepEvent {
    /// The sweep's snapshot epoch.
    pub epoch: u32,
    /// The generation sequence number this sweep published (1-based).
    pub generation: u64,
    /// Active (measured-above-Unmeasured) /24s after this sweep.
    pub measured_slash24s: u64,
    /// Verdict transitions vs the previous generation, ascending by
    /// /24 index. The first event's `from` side is all-Unmeasured.
    pub changes: Vec<VerdictChange>,
}

impl SweepEvent {
    /// Encodes the event payload (with trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(self.epoch);
        w.u64(self.generation);
        w.u64(self.measured_slash24s);
        w.u32(self.changes.len() as u32);
        for c in &self.changes {
            w.u32(c.index);
            w.u8(c.from as u8);
            w.u8(c.to as u8);
        }
        w.finish()
    }

    /// Decodes an event payload, verifying its checksum.
    pub fn decode(bytes: &[u8]) -> Result<SweepEvent, CodecError> {
        let mut r = ByteReader::verified(bytes)?;
        let epoch = r.u32()?;
        let generation = r.u64()?;
        let measured_slash24s = r.u64()?;
        let n = r.u32()? as usize;
        let mut changes = Vec::with_capacity(n.min(1 << 20));
        let mut last: Option<u32> = None;
        for _ in 0..n {
            let index = r.u32()?;
            if last.is_some_and(|p| p >= index) {
                return Err(CodecError::Malformed("event changes out of order"));
            }
            last = Some(index);
            let from = Verdict::from_u8(r.u8()?)
                .ok_or(CodecError::Malformed("bad `from` verdict in event"))?;
            let to = Verdict::from_u8(r.u8()?)
                .ok_or(CodecError::Malformed("bad `to` verdict in event"))?;
            changes.push(VerdictChange { index, from, to });
        }
        r.expect_done()?;
        Ok(SweepEvent {
            epoch,
            generation,
            measured_slash24s,
            changes,
        })
    }
}

/// A sweep chain failure: the generation that was *being* produced
/// when the chain died, and why. Appending one of these is how a
/// degraded service records "history ends here because of X" instead
/// of silently stopping its log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureEvent {
    /// The 1-based sweep number that failed (= last published
    /// generation + 1).
    pub generation: u64,
    /// Human-readable failure cause (a `PipelineError` rendering or a
    /// panic message).
    pub message: String,
}

impl FailureEvent {
    /// Encodes the failure payload (with trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.generation);
        w.str(&self.message);
        w.finish()
    }

    /// Decodes a failure payload, verifying its checksum.
    pub fn decode(bytes: &[u8]) -> Result<FailureEvent, CodecError> {
        let mut r = ByteReader::verified(bytes)?;
        let generation = r.u64()?;
        let message = r.str()?;
        r.expect_done()?;
        Ok(FailureEvent {
            generation,
            message,
        })
    }
}

/// Any record an event log can hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventRecord {
    /// A completed sweep's verdict delta.
    Sweep(SweepEvent),
    /// A sweep chain failure.
    Failure(FailureEvent),
}

/// Diffs two verdict tables into the event log's change list:
/// `(index, prior verdict, next verdict)` for every /24 whose verdict
/// differs, ascending by index. `prior = None` means "against an
/// all-Unmeasured table" — the shape of a service's first sweep.
pub fn verdict_delta(prior: Option<&VerdictTable>, next: &VerdictTable) -> Vec<VerdictChange> {
    let mut changes = Vec::new();
    match prior {
        None => {
            for (index, to) in next.iter_measured() {
                changes.push(VerdictChange {
                    index,
                    from: Verdict::Unmeasured,
                    to,
                });
            }
        }
        Some(prior) => {
            // Ordered merge of the two measured sets; either side may
            // hold indices the other lacks.
            let mut a = prior.iter_measured().peekable();
            let mut b = next.iter_measured().peekable();
            loop {
                match (a.peek().copied(), b.peek().copied()) {
                    (None, None) => break,
                    (Some((ia, from)), Some((ib, _))) if ia < ib => {
                        a.next();
                        changes.push(VerdictChange {
                            index: ia,
                            from,
                            to: Verdict::Unmeasured,
                        });
                    }
                    (Some((ia, _)), Some((ib, to))) if ib < ia => {
                        b.next();
                        changes.push(VerdictChange {
                            index: ib,
                            from: Verdict::Unmeasured,
                            to,
                        });
                    }
                    (Some((index, from)), Some((_, to))) => {
                        a.next();
                        b.next();
                        if from != to {
                            changes.push(VerdictChange { index, from, to });
                        }
                    }
                    (Some((index, from)), None) => {
                        a.next();
                        changes.push(VerdictChange {
                            index,
                            from,
                            to: Verdict::Unmeasured,
                        });
                    }
                    (None, Some((index, to))) => {
                        b.next();
                        changes.push(VerdictChange {
                            index,
                            from: Verdict::Unmeasured,
                            to,
                        });
                    }
                }
            }
        }
    }
    changes
}

/// Why an event log could not be opened or read.
#[derive(Debug)]
pub enum EventLogError {
    /// The underlying file system failed.
    Io(std::io::Error),
    /// The header is not an event log (wrong magic).
    BadMagic([u8; 4]),
    /// The header's format version is not [`EVENTLOG_VERSION`].
    BadVersion(u16),
    /// A record payload failed to decode after its frame verified —
    /// a format bug, not tail corruption.
    Codec(CodecError),
    /// `read_at` was handed an offset that is not a record boundary.
    BadOffset(u64),
}

impl std::fmt::Display for EventLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventLogError::Io(e) => write!(f, "event log i/o error: {e}"),
            EventLogError::BadMagic(m) => write!(f, "bad event log magic {m:02x?}"),
            EventLogError::BadVersion(v) => write!(f, "unsupported event log version {v}"),
            EventLogError::Codec(e) => write!(f, "event record payload malformed: {e}"),
            EventLogError::BadOffset(o) => write!(f, "offset {o} is not a record boundary"),
        }
    }
}

impl std::error::Error for EventLogError {}

impl From<std::io::Error> for EventLogError {
    fn from(e: std::io::Error) -> EventLogError {
        EventLogError::Io(e)
    }
}

impl From<CodecError> for EventLogError {
    fn from(e: CodecError) -> EventLogError {
        EventLogError::Codec(e)
    }
}

/// What [`EventLog::open`] recovered: intact records kept and torn
/// tail bytes discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Recovery {
    /// Intact records found.
    pub records: usize,
    /// Bytes truncated off a torn or corrupt tail (0 = clean file).
    pub truncated_bytes: u64,
}

/// The append-only, checksummed sweep event log.
///
/// Appends are atomic-at-the-record-level (single `write_all` +
/// flush); reads are offset-indexed ([`EventLog::offsets`] +
/// [`EventLog::read_at`]); [`EventLog::open`] recovers from a crash
/// mid-append by truncating the torn tail.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    file: File,
    len: u64,
    offsets: Vec<u64>,
    world_seed: u64,
    config_digest: u64,
}

/// The bytes a record checksum covers: kind, length prefix, payload.
fn record_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut body = Vec::with_capacity(5 + payload.len());
    body.push(kind);
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    checksum(&body)
}

impl EventLog {
    /// Creates (truncating) a fresh log for the given world identity.
    pub fn create(
        path: impl AsRef<Path>,
        world_seed: u64,
        config_digest: u64,
    ) -> std::io::Result<EventLog> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(EVENTLOG_HEADER_LEN as usize);
        header.extend_from_slice(&EVENTLOG_MAGIC);
        header.extend_from_slice(&EVENTLOG_VERSION.to_le_bytes());
        header.extend_from_slice(&world_seed.to_le_bytes());
        header.extend_from_slice(&config_digest.to_le_bytes());
        file.write_all(&header)?;
        file.flush()?;
        Ok(EventLog {
            path,
            file,
            len: EVENTLOG_HEADER_LEN,
            offsets: Vec::new(),
            world_seed,
            config_digest,
        })
    }

    /// Opens an existing log, recovering from a torn tail: the file is
    /// scanned record by record, and everything after the last intact
    /// record boundary — a half-written append, a flipped bit, an
    /// unknown kind byte — is truncated away. Header corruption is not
    /// recoverable and is returned as an error instead.
    pub fn open(path: impl AsRef<Path>) -> Result<(EventLog, Recovery), EventLogError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < EVENTLOG_HEADER_LEN as usize {
            return Err(EventLogError::BadMagic(
                [bytes.first(), bytes.get(1), bytes.get(2), bytes.get(3)]
                    .map(|b| b.copied().unwrap_or(0)),
            ));
        }
        let magic: [u8; 4] = bytes[..4].try_into().expect("4-byte magic");
        if magic != EVENTLOG_MAGIC {
            return Err(EventLogError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte version"));
        if version != EVENTLOG_VERSION {
            return Err(EventLogError::BadVersion(version));
        }
        let world_seed = u64::from_le_bytes(bytes[6..14].try_into().expect("8-byte seed"));
        let config_digest = u64::from_le_bytes(bytes[14..22].try_into().expect("8-byte digest"));

        // Scan forward; `good` is always a record boundary.
        let mut offsets = Vec::new();
        let mut good = EVENTLOG_HEADER_LEN as usize;
        while let Some(consumed) = scan_record(&bytes[good..]) {
            offsets.push(good as u64);
            good += consumed;
        }
        let truncated = (bytes.len() - good) as u64;
        if truncated > 0 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        let records = offsets.len();
        Ok((
            EventLog {
                path,
                file,
                len: good as u64,
                offsets,
                world_seed,
                config_digest,
            },
            Recovery {
                records,
                truncated_bytes: truncated,
            },
        ))
    }

    /// The world seed the log's header pins.
    pub fn world_seed(&self) -> u64 {
        self.world_seed
    }

    /// The config digest the log's header pins.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// The log's validated byte length (header + intact records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no records have been appended since creation (or the
    /// last compaction).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Byte offset of each intact record, append order.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sibling path compaction writes the snapshot base to.
    pub fn base_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".base");
        PathBuf::from(name)
    }

    /// Appends one raw record (kind + payload) as a single framed,
    /// checksummed write and flushes. Returns the record's byte offset.
    fn append_record(&mut self, kind: u8, payload: &[u8]) -> std::io::Result<u64> {
        let mut buf = Vec::with_capacity(13 + payload.len());
        buf.push(kind);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&record_checksum(kind, payload).to_le_bytes());
        let offset = self.len;
        self.file.write_all(&buf)?;
        self.file.flush()?;
        self.offsets.push(offset);
        self.len += buf.len() as u64;
        Ok(offset)
    }

    /// Appends one sweep event. Returns the record's byte offset.
    pub fn append(&mut self, event: &SweepEvent) -> std::io::Result<u64> {
        self.append_record(RECORD_SWEEP, &event.encode())
    }

    /// Appends one failure event — the durable mark of a sweep chain
    /// dying under a service that keeps answering queries. Returns the
    /// record's byte offset.
    pub fn append_failure(&mut self, event: &FailureEvent) -> std::io::Result<u64> {
        self.append_record(RECORD_FAILURE, &event.encode())
    }

    /// Reads the record at `offset` (which must be one of
    /// [`EventLog::offsets`] — i.e. an intact record boundary),
    /// whatever its kind.
    pub fn read_record_at(&mut self, offset: u64) -> Result<EventRecord, EventLogError> {
        if !self.offsets.contains(&offset) {
            return Err(EventLogError::BadOffset(offset));
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let mut head = [0u8; 5];
        self.file.read_exact(&mut head)?;
        let kind = head[0];
        let len = u32::from_le_bytes(head[1..5].try_into().expect("4-byte len")) as usize;
        if !matches!(kind, RECORD_SWEEP | RECORD_FAILURE) || len > MAX_EVENT_PAYLOAD {
            return Err(EventLogError::BadOffset(offset));
        }
        let mut payload = vec![0u8; len];
        self.file.read_exact(&mut payload)?;
        let mut sum = [0u8; 8];
        self.file.read_exact(&mut sum)?;
        self.file.seek(SeekFrom::End(0))?;
        if u64::from_le_bytes(sum) != record_checksum(kind, &payload) {
            return Err(EventLogError::Codec(CodecError::BadChecksum));
        }
        Ok(match kind {
            RECORD_SWEEP => EventRecord::Sweep(SweepEvent::decode(&payload)?),
            _ => EventRecord::Failure(FailureEvent::decode(&payload)?),
        })
    }

    /// Reads the sweep event at `offset`. A failure record at that
    /// offset is a caller error ([`EventLog::read_record_at`] reads
    /// either kind).
    pub fn read_at(&mut self, offset: u64) -> Result<SweepEvent, EventLogError> {
        match self.read_record_at(offset)? {
            EventRecord::Sweep(e) => Ok(e),
            EventRecord::Failure(_) => Err(EventLogError::Codec(CodecError::Malformed(
                "record at offset is a failure event, not a sweep event",
            ))),
        }
    }

    /// Every intact record, append order, whatever the kind.
    pub fn records(&mut self) -> Result<Vec<EventRecord>, EventLogError> {
        let offsets = self.offsets.clone();
        offsets
            .into_iter()
            .map(|o| self.read_record_at(o))
            .collect()
    }

    /// Every intact *sweep* event, append order (failure records are
    /// skipped; see [`EventLog::records`] for the full history).
    pub fn events(&mut self) -> Result<Vec<SweepEvent>, EventLogError> {
        Ok(self
            .records()?
            .into_iter()
            .filter_map(|r| match r {
                EventRecord::Sweep(e) => Some(e),
                EventRecord::Failure(_) => None,
            })
            .collect())
    }

    /// Compacts the log: atomically replaces the `<path>.base` sibling
    /// with `base` (the present store state as a [`SweepSnapshot`])
    /// and rewinds the log to its header. `base ⊕ log` reconstructs
    /// the same state before and after.
    pub fn compact(&mut self, base: &SweepSnapshot) -> std::io::Result<()> {
        let base_path = self.base_path();
        let mut tmp = base_path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, base.encode())?;
        std::fs::rename(&tmp, &base_path)?;
        self.file.set_len(EVENTLOG_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(EVENTLOG_HEADER_LEN))?;
        self.len = EVENTLOG_HEADER_LEN;
        self.offsets.clear();
        Ok(())
    }

    /// Loads the compacted base snapshot, if a compaction has run.
    pub fn load_base(&self) -> Result<Option<SweepSnapshot>, EventLogError> {
        match std::fs::read(self.base_path()) {
            Ok(bytes) => Ok(Some(SweepSnapshot::decode(&bytes)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// Validates one record at the head of `bytes`; returns the bytes it
/// consumes, or `None` when the record is torn, corrupt, oversized, or
/// of unknown kind — all treated as the start of a dead tail.
fn scan_record(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < 5 {
        return None;
    }
    let kind = bytes[0];
    if !matches!(kind, RECORD_SWEEP | RECORD_FAILURE) {
        return None;
    }
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4-byte len")) as usize;
    if len > MAX_EVENT_PAYLOAD || bytes.len() < 5 + len + 8 {
        return None;
    }
    let payload = &bytes[5..5 + len];
    let sum = u64::from_le_bytes(bytes[5 + len..5 + len + 8].try_into().expect("8-byte sum"));
    if sum != record_checksum(kind, payload) {
        return None;
    }
    // The frame is intact; a payload that then fails to decode is a
    // format bug we surface on read, not a recovery matter.
    Some(5 + len + 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "clientmap-eventlog-{}-{}",
            std::process::id(),
            name
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("events.cmel")
    }

    fn event(generation: u64, n: usize) -> SweepEvent {
        SweepEvent {
            epoch: generation as u32,
            generation,
            measured_slash24s: n as u64,
            changes: (0..n as u32)
                .map(|i| VerdictChange {
                    index: i * 7 + generation as u32,
                    from: Verdict::Unmeasured,
                    to: Verdict::Hit,
                })
                .collect(),
        }
    }

    #[test]
    fn append_reopen_roundtrip_with_offsets() {
        let path = scratch("roundtrip");
        let mut log = EventLog::create(&path, 2021, 0xD16E57).unwrap();
        let events: Vec<SweepEvent> = (1..=3).map(|g| event(g, 5 * g as usize)).collect();
        let offsets: Vec<u64> = events.iter().map(|e| log.append(e).unwrap()).collect();
        assert_eq!(log.offsets(), offsets.as_slice());
        // Random-access reads by offset, out of append order.
        assert_eq!(log.read_at(offsets[2]).unwrap(), events[2]);
        assert_eq!(log.read_at(offsets[0]).unwrap(), events[0]);
        drop(log);

        let (mut back, rec) = EventLog::open(&path).unwrap();
        assert_eq!(
            rec,
            Recovery {
                records: 3,
                truncated_bytes: 0
            }
        );
        assert_eq!(back.world_seed(), 2021);
        assert_eq!(back.config_digest(), 0xD16E57);
        assert_eq!(back.events().unwrap(), events);
        // Appends continue where the log left off.
        let before = back.len();
        let off = back.append(&event(4, 2)).unwrap();
        assert_eq!(off, before);
        assert_eq!(back.read_at(off).unwrap(), event(4, 2));
    }

    #[test]
    fn torn_tail_truncated_never_half_applied() {
        let path = scratch("torn");
        let mut log = EventLog::create(&path, 7, 9).unwrap();
        for g in 1..=3 {
            log.append(&event(g, 4)).unwrap();
        }
        let intact_two = log.offsets()[2];
        let full = log.len();
        drop(log);
        let bytes = std::fs::read(&path).unwrap();

        // Cut the file at every byte inside the third record: recovery
        // must keep exactly two events and truncate the rest.
        for cut in (intact_two + 1)..full {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let (mut log, rec) = EventLog::open(&path).unwrap();
            assert_eq!(rec.records, 2, "cut at {cut}");
            assert_eq!(rec.truncated_bytes, cut - intact_two, "cut at {cut}");
            assert_eq!(log.len(), intact_two);
            assert_eq!(log.events().unwrap().len(), 2);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_two);
            // The recovered log accepts appends again.
            log.append(&event(9, 1)).unwrap();
            assert_eq!(log.events().unwrap().len(), 3);
        }
    }

    #[test]
    fn bitflip_in_tail_record_is_discarded() {
        let path = scratch("bitflip");
        let mut log = EventLog::create(&path, 7, 9).unwrap();
        log.append(&event(1, 8)).unwrap();
        log.append(&event(2, 8)).unwrap();
        let tail_start = log.offsets()[1];
        drop(log);
        let bytes = std::fs::read(&path).unwrap();
        for byte in [tail_start, tail_start + 6, bytes.len() as u64 - 1] {
            let mut bad = bytes.clone();
            bad[byte as usize] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            let (_, rec) = EventLog::open(&path).unwrap();
            assert_eq!(rec.records, 1, "flip at {byte}");
        }
    }

    #[test]
    fn header_corruption_is_not_recoverable() {
        let path = scratch("header");
        drop(EventLog::create(&path, 7, 9).unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            EventLog::open(&path),
            Err(EventLogError::BadMagic(_))
        ));
    }

    #[test]
    fn compaction_swaps_base_and_rewinds() {
        let path = scratch("compact");
        let mut log = EventLog::create(&path, 2021, 0xD16E57).unwrap();
        for g in 1..=4 {
            log.append(&event(g, 3)).unwrap();
        }
        assert!(log.load_base().unwrap().is_none());
        let mut base = SweepSnapshot::new(2021, 0xD16E57);
        base.epoch = 4;
        log.compact(&base).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.len(), EVENTLOG_HEADER_LEN);
        assert_eq!(log.load_base().unwrap(), Some(base));
        // Post-compaction appends and reopen still work.
        log.append(&event(5, 2)).unwrap();
        drop(log);
        let (mut log, rec) = EventLog::open(&path).unwrap();
        assert_eq!(rec.records, 1);
        assert_eq!(log.events().unwrap()[0].generation, 5);
    }

    #[test]
    fn failure_records_interleave_survive_reopen_and_stay_typed() {
        let path = scratch("failure");
        let mut log = EventLog::create(&path, 2021, 0xD16E57).unwrap();
        log.append(&event(1, 3)).unwrap();
        let failure = FailureEvent {
            generation: 2,
            message: "probe stage failed: injected".into(),
        };
        let f_off = log.append_failure(&failure).unwrap();
        log.append(&event(3, 2)).unwrap();

        // The typed read sees all three; the sweep-only view skips the
        // failure; the sweep-typed read refuses the failure offset.
        assert_eq!(
            log.records().unwrap(),
            vec![
                EventRecord::Sweep(event(1, 3)),
                EventRecord::Failure(failure.clone()),
                EventRecord::Sweep(event(3, 2)),
            ]
        );
        assert_eq!(log.events().unwrap(), vec![event(1, 3), event(3, 2)]);
        assert!(matches!(
            log.read_at(f_off),
            Err(EventLogError::Codec(CodecError::Malformed(_)))
        ));
        drop(log);

        // Reopen scans both kinds as intact records.
        let (mut back, rec) = EventLog::open(&path).unwrap();
        assert_eq!(rec.records, 3);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(
            back.read_record_at(f_off).unwrap(),
            EventRecord::Failure(failure.clone())
        );

        // The failure payload codec rejects damage like any other.
        let bytes = failure.encode();
        assert_eq!(FailureEvent::decode(&bytes).unwrap(), failure);
        for i in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert!(FailureEvent::decode(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn verdict_delta_merges_both_sides() {
        let mut a = VerdictTable::new();
        a.record(1, Verdict::Hit);
        a.record(5, Verdict::Miss);
        a.record(9, Verdict::Hit);
        let mut b = VerdictTable::new();
        b.record(1, Verdict::Hit); // unchanged → no entry
        b.record(5, Verdict::Hit); // upgraded
        b.record(7, Verdict::Dropped); // new
                                       // 9 only in prior → transitions to Unmeasured.
        let delta = verdict_delta(Some(&a), &b);
        assert_eq!(
            delta,
            vec![
                VerdictChange {
                    index: 5,
                    from: Verdict::Miss,
                    to: Verdict::Hit
                },
                VerdictChange {
                    index: 7,
                    from: Verdict::Unmeasured,
                    to: Verdict::Dropped
                },
                VerdictChange {
                    index: 9,
                    from: Verdict::Hit,
                    to: Verdict::Unmeasured
                },
            ]
        );
        let cold = verdict_delta(None, &b);
        assert_eq!(cold.len(), 3);
        assert!(cold.iter().all(|c| c.from == Verdict::Unmeasured));
        // Applying the delta to the prior reproduces the next table.
        let mut applied = a.clone();
        for c in &delta {
            applied.set(c.index, c.to);
        }
        assert_eq!(
            applied.iter_measured().collect::<Vec<_>>(),
            b.iter_measured().collect::<Vec<_>>()
        );
    }

    #[test]
    fn event_codec_rejects_disorder_and_bitflips() {
        let e = event(3, 16);
        let bytes = e.encode();
        assert_eq!(SweepEvent::decode(&bytes).unwrap(), e);
        for i in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(SweepEvent::decode(&bad).is_err(), "flip at {i}");
        }
    }
}
