//! Swap-on-publish generation cell: lock-free reads over immutable
//! published values.
//!
//! The serve mode's read path must never block on the sweep thread —
//! query throughput has to scale with cores while a cadenced re-sweep
//! builds the next store generation. [`GenerationCell`] gets that
//! without a single unsafe block: every published generation is an
//! immutable `Arc<T>` in a pre-allocated slot (`OnceLock`, written
//! exactly once), and publication is one release-store of the
//! published count. Readers do an acquire-load, index the slot array,
//! and clone the `Arc` — no mutex anywhere on the read path, and old
//! generations stay alive (and queryable by sequence number) for as
//! long as the cell does, so a reader can never observe a freed value.
//!
//! The capacity is fixed at construction: a serve process knows its
//! sweep schedule, so the slot array never reallocates (reallocation
//! under concurrent readers is exactly the hazard this design removes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A fixed-capacity, lock-free-on-read publication cell.
///
/// One writer publishes immutable generations in sequence; any number
/// of readers fetch the current (or any past) generation without
/// locking. Sequence numbers are 1-based: generation 0 means "nothing
/// published yet".
#[derive(Debug)]
pub struct GenerationCell<T> {
    slots: Vec<OnceLock<Arc<T>>>,
    published: AtomicU64,
}

impl<T> GenerationCell<T> {
    /// A cell with room for `capacity` generations.
    pub fn with_capacity(capacity: usize) -> GenerationCell<T> {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, OnceLock::new);
        GenerationCell {
            slots,
            published: AtomicU64::new(0),
        }
    }

    /// How many generations this cell can ever hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The latest published sequence number (0 = none yet).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Publishes the next generation and returns its sequence number.
    /// Intended for a single publisher thread; returns `None` when the
    /// cell is full.
    pub fn publish(&self, value: T) -> Option<u64> {
        let seq = self.published.load(Ordering::Relaxed);
        let slot = self.slots.get(seq as usize)?;
        slot.set(Arc::new(value)).ok()?;
        // The release-store is the publication point: a reader that
        // acquires `seq + 1` sees the fully initialised slot.
        self.published.store(seq + 1, Ordering::Release);
        Some(seq + 1)
    }

    /// The current generation, if any — an acquire-load plus an `Arc`
    /// clone, never a lock.
    pub fn current(&self) -> Option<Arc<T>> {
        self.get(self.published())
    }

    /// Generation `seq` (1-based), if published. Past generations stay
    /// retrievable forever — the introspection queries rely on it.
    pub fn get(&self, seq: u64) -> Option<Arc<T>> {
        if seq == 0 || seq > self.published() {
            return None;
        }
        self.slots
            .get((seq - 1) as usize)
            .and_then(|s| s.get())
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_read_in_order() {
        let cell = GenerationCell::with_capacity(3);
        assert!(cell.current().is_none());
        assert_eq!(cell.publish("a"), Some(1));
        assert_eq!(cell.publish("b"), Some(2));
        assert_eq!(*cell.current().unwrap(), "b");
        assert_eq!(*cell.get(1).unwrap(), "a");
        assert!(cell.get(3).is_none());
        assert_eq!(cell.publish("c"), Some(3));
        assert_eq!(cell.publish("d"), None, "capacity exhausted");
        assert_eq!(cell.published(), 3);
    }

    #[test]
    fn concurrent_readers_see_monotone_generations() {
        let cell = Arc::new(GenerationCell::with_capacity(64));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while last < 64 {
                        if let Some(g) = cell.current() {
                            assert!(*g >= last, "generation went backwards");
                            last = *g;
                        }
                    }
                })
            })
            .collect();
        for g in 1..=64u64 {
            assert_eq!(cell.publish(g), Some(g));
        }
        for r in readers {
            r.join().unwrap();
        }
    }
}
