//! Dense membership over the 2²⁴ /24 space: a fixed-stride radix of
//! lazily allocated bit pages.

use std::collections::BTreeMap;

use clientmap_net::{Asn, Prefix, Rib};

/// Number of /24s in the IPv4 space.
pub const SLASH24_SPACE: usize = 1 << 24;

/// /24s per page; pages allocate lazily, so sparse universes stay
/// small while lookups remain two array indexes deep.
const PAGE_SLOTS: usize = 4096;
/// 64-bit words per page.
const PAGE_WORDS: usize = PAGE_SLOTS / 64;
/// Number of pages covering the whole space.
const PAGES: usize = SLASH24_SPACE / PAGE_SLOTS;

/// A bitset over every /24 in the IPv4 space (index = `addr >> 8`).
///
/// Fixed stride: page `i >> 12`, bit `i & 4095`. Set algebra
/// (intersection/union counts) runs word-wise with popcount, which is
/// what makes dataset overlap matrices cheap at full-universe scale.
#[derive(Debug, Clone, Default)]
pub struct Slash24Bitset {
    pages: BTreeMap<u32, Box<[u64; PAGE_WORDS]>>,
    ones: u64,
}

impl Slash24Bitset {
    /// An empty set.
    pub fn new() -> Slash24Bitset {
        Slash24Bitset::default()
    }

    /// Builds the set of /24s covered by `prefixes`.
    pub fn from_prefixes<'a, I: IntoIterator<Item = &'a Prefix>>(prefixes: I) -> Slash24Bitset {
        let mut s = Slash24Bitset::new();
        for p in prefixes {
            s.insert_prefix(*p);
        }
        s
    }

    /// Sets the bit for /24 index `idx`; returns whether it was newly
    /// set.
    pub fn insert(&mut self, idx: u32) -> bool {
        assert!((idx as usize) < SLASH24_SPACE, "/24 index out of range");
        let page = self
            .pages
            .entry(idx >> 12)
            .or_insert_with(|| Box::new([0u64; PAGE_WORDS]));
        let slot = (idx & 4095) as usize;
        let (word, bit) = (slot / 64, slot % 64);
        let fresh = page[word] & (1 << bit) == 0;
        page[word] |= 1 << bit;
        self.ones += u64::from(fresh);
        fresh
    }

    /// Sets every /24 covered by `p` (a `/25`-or-longer prefix marks
    /// just its containing /24, matching [`Prefix::num_slash24s`]).
    pub fn insert_prefix(&mut self, p: Prefix) {
        let first = p.first_addr() >> 8;
        let n = p.num_slash24s() as u32;
        for idx in first..first + n {
            self.insert(idx);
        }
    }

    /// Whether /24 index `idx` is set.
    pub fn contains(&self, idx: u32) -> bool {
        if idx as usize >= SLASH24_SPACE {
            return false;
        }
        self.pages.get(&(idx >> 12)).is_some_and(|page| {
            let slot = (idx & 4095) as usize;
            page[slot / 64] & (1 << (slot % 64)) != 0
        })
    }

    /// Whether the /24 containing `addr` is set.
    pub fn contains_addr(&self, addr: u32) -> bool {
        self.contains(addr >> 8)
    }

    /// Whether `idx` or any of its *aligned ancestors* — the indexes
    /// obtained by clearing the low `k` bits of `idx`, `k` in
    /// `0..=max_clear` — is set. When the set holds the base /24 of
    /// every prefix in some collection, this answers "could a prefix of
    /// length ≥ 24 − max_clear cover this /24?" without walking the
    /// candidate lengths through a map: ancestors with `k ≤ 6` all land
    /// in one 64-bit word and collapse to a single mask test, and the
    /// at-most 18 coarser ones fall back to indexed probes.
    pub fn ancestor_hit(&self, idx: u32, max_clear: u8) -> bool {
        if self.ones == 0 || idx as usize >= SLASH24_SPACE {
            return false;
        }
        if let Some(page) = self.pages.get(&(idx >> 12)) {
            let word = page[((idx & 4095) / 64) as usize];
            if word & ancestor_word_mask(idx & 63, max_clear.min(6)) != 0 {
                return true;
            }
        }
        // Coarser ancestors leave the word (and eventually the page).
        // Clearing an already-zero bit repeats the previous index, so
        // consecutive duplicates are skipped.
        let mut prev = idx & !63;
        for k in 7..=u32::from(max_clear.min(24)) {
            let anc = idx & !((1u32 << k) - 1);
            if anc == prev {
                continue;
            }
            if self.contains(anc) {
                return true;
            }
            prev = anc;
        }
        false
    }

    /// Number of set /24s.
    pub fn count(&self) -> u64 {
        self.ones
    }

    /// Whether no /24 is set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// `|self ∩ other|` — word-wise AND + popcount over shared pages.
    pub fn and_count(&self, other: &Slash24Bitset) -> u64 {
        let (small, large) = if self.pages.len() <= other.pages.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .pages
            .iter()
            .filter_map(|(k, a)| large.pages.get(k).map(|b| (a, b)))
            .map(|(a, b)| {
                a.iter()
                    .zip(b.iter())
                    .map(|(x, y)| (x & y).count_ones() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// `|self ∪ other|`.
    pub fn or_count(&self, other: &Slash24Bitset) -> u64 {
        self.ones + other.ones - self.and_count(other)
    }

    /// Folds `other` into `self` (set union).
    pub fn union_with(&mut self, other: &Slash24Bitset) {
        for (k, b) in &other.pages {
            let page = self
                .pages
                .entry(*k)
                .or_insert_with(|| Box::new([0u64; PAGE_WORDS]));
            for (x, y) in page.iter_mut().zip(b.iter()) {
                self.ones += (*y & !*x).count_ones() as u64;
                *x |= *y;
            }
        }
    }

    /// Set /24 indexes, ascending — the canonical iteration order
    /// shared with a sorted reference model.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.pages.iter().flat_map(|(k, page)| {
            let base = k << 12;
            page.iter().enumerate().flat_map(move |(w, &word)| {
                BitIter { word }.map(move |bit| base + (w as u32) * 64 + bit)
            })
        })
    }

    /// Upper bound on resident pages (diagnostics only).
    pub fn pages_allocated(&self) -> usize {
        self.pages.len().min(PAGES)
    }
}

/// The in-word positions of `bit`'s cleared-low-`k` ancestors for `k`
/// in `0..=kmax` (`kmax ≤ 6` keeps every ancestor inside the word), as
/// one mask.
fn ancestor_word_mask(bit: u32, kmax: u8) -> u64 {
    let mut mask = 0u64;
    for k in 0..=u32::from(kmax) {
        mask |= 1u64 << (bit & !((1u32 << k) - 1));
    }
    mask
}

/// Iterates the set bit positions of one word, ascending.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(bit)
    }
}

/// Announced /24 space per origin AS, as one [`Slash24Bitset`] each.
///
/// Built straight from a RIB; per-AS coverage questions ("how many
/// active /24s does AS X own?") become a single `and_count` against an
/// activity bitset instead of a prefix-by-prefix trie walk.
#[derive(Debug, Clone, Default)]
pub struct AsBitsets {
    by_as: BTreeMap<Asn, Slash24Bitset>,
}

impl AsBitsets {
    /// Indexes every announcement in `rib` by its origin AS.
    pub fn from_rib(rib: &Rib) -> AsBitsets {
        let mut by_as: BTreeMap<Asn, Slash24Bitset> = BTreeMap::new();
        for (prefix, entry) in rib.routes() {
            by_as.entry(entry.origin).or_default().insert_prefix(prefix);
        }
        AsBitsets { by_as }
    }

    /// The announced-/24 bitset of `asn`, if it originates anything.
    pub fn get(&self, asn: Asn) -> Option<&Slash24Bitset> {
        self.by_as.get(&asn)
    }

    /// Origin ASes, ascending.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.by_as.keys().copied()
    }

    /// `(asn, |announced ∩ active|)` for every AS with at least one
    /// active /24, ascending by AS number.
    pub fn active_slash24s(&self, active: &Slash24Bitset) -> Vec<(Asn, u64)> {
        self.by_as
            .iter()
            .filter_map(|(asn, set)| {
                let n = set.and_count(active);
                (n > 0).then_some((*asn, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_count() {
        let mut s = Slash24Bitset::new();
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(0xFFFFFF));
        assert!(s.insert(4096));
        assert_eq!(s.count(), 3);
        assert!(s.contains(0) && s.contains(4096) && s.contains(0xFFFFFF));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 4096, 0xFFFFFF]);
    }

    #[test]
    fn prefix_ranges_fill_all_covered_slash24s() {
        let mut s = Slash24Bitset::new();
        s.insert_prefix("10.0.0.0/22".parse().unwrap());
        assert_eq!(s.count(), 4);
        assert!(s.contains_addr(0x0A000301));
        assert!(!s.contains_addr(0x0A000400));
        // A /32 marks just its containing /24.
        s.insert_prefix("192.0.2.77/32".parse().unwrap());
        assert!(s.contains_addr(0xC0000200));
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn set_algebra_matches_reference() {
        let mut a = Slash24Bitset::new();
        let mut b = Slash24Bitset::new();
        for i in 0..100u32 {
            a.insert(i * 37);
            b.insert(i * 53);
        }
        let ra: std::collections::BTreeSet<u32> = a.iter().collect();
        let rb: std::collections::BTreeSet<u32> = b.iter().collect();
        assert_eq!(a.and_count(&b), ra.intersection(&rb).count() as u64);
        assert_eq!(a.or_count(&b), ra.union(&rb).count() as u64);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), a.or_count(&b));
        assert_eq!(u.iter().collect::<Vec<_>>().len() as u64, u.count());
    }

    #[test]
    fn ancestor_hit_matches_per_level_contains() {
        // A mix of dense low indexes (in-word ancestors), page-boundary
        // indexes, and coarse-aligned indexes reachable only by the
        // k ≥ 7 fallback.
        let mut s = Slash24Bitset::new();
        for idx in [
            0u32, 1, 37, 63, 64, 4095, 4096, 0x123400, 0x800000, 0xFFFFFF,
        ] {
            s.insert(idx);
        }
        let reference = |s: &Slash24Bitset, idx: u32, max_clear: u8| -> bool {
            (0..=u32::from(max_clear.min(24))).any(|k| s.contains(idx & !((1u32 << k) - 1)))
        };
        let probes: Vec<u32> = (0..1000u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9) & 0xFF_FFFF)
            .chain([
                0, 1, 37, 63, 64, 65, 4095, 4097, 0x1234FF, 0x80_0001, 0xFFFFFF,
            ])
            .collect();
        for &idx in &probes {
            for max_clear in [0u8, 1, 3, 6, 7, 8, 12, 24, 31] {
                assert_eq!(
                    s.ancestor_hit(idx, max_clear),
                    reference(&s, idx, max_clear),
                    "idx {idx:#x} max_clear {max_clear}"
                );
            }
        }
        assert!(!Slash24Bitset::new().ancestor_hit(0, 24));
    }

    #[test]
    fn as_bitsets_index_rib_by_origin() {
        let mut rib = Rib::new();
        rib.announce("10.0.0.0/23".parse().unwrap(), Asn(64500));
        rib.announce("10.2.0.0/24".parse().unwrap(), Asn(64500));
        rib.announce("192.0.2.0/24".parse().unwrap(), Asn(64501));
        let idx = AsBitsets::from_rib(&rib);
        assert_eq!(idx.get(Asn(64500)).unwrap().count(), 3);
        assert_eq!(idx.get(Asn(64501)).unwrap().count(), 1);
        assert!(idx.get(Asn(1)).is_none());
        let mut active = Slash24Bitset::new();
        active.insert_prefix("10.0.1.0/24".parse().unwrap());
        active.insert_prefix("192.0.2.0/24".parse().unwrap());
        assert_eq!(
            idx.active_slash24s(&active),
            vec![(Asn(64500), 1), (Asn(64501), 1)]
        );
    }
}
