//! Extrapolation confidence: the provenance column the clustered
//! planner writes next to every verdict it copied instead of measured.
//!
//! A clustered sweep probes one representative per cluster and copies
//! its record to the members. Each copy carries a [`ConfidenceRecord`]:
//! which representative it came from, how close the member sat in
//! feature space (the confidence tag), and what verdict the member held
//! in the prior sweep — the reference the *next* planner checks to
//! detect verdict flips and escalate the member back to live probing.
//! [`ConfidenceTable`] is the dense per-/24 projection of those tags,
//! the [`crate::VerdictTable`] sibling analysis and reporting read.

use crate::snapshot::RecordKey;
use crate::{slash24_index, Slash24Table};

/// Top of the confidence scale: a verdict copied across zero feature
/// distance.
pub const CONFIDENCE_MAX: u8 = 255;

/// Provenance of one extrapolated ⟨vantage, domain, scope⟩ record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfidenceRecord {
    /// The representative slot whose record this slot copies.
    pub rep: RecordKey,
    /// Planner confidence in the copy, `1..=255` — a stored record
    /// always carries *some* confidence; 0 is reserved for "untagged"
    /// in the dense table.
    pub confidence: u8,
    /// Verdict rank this slot held in the prior sweep (0 = unmeasured).
    /// The next planner compares it against the extrapolated record to
    /// detect flips.
    pub prior_verdict: u8,
}

/// Dense per-/24 confidence tags over the whole IPv4 space; 0 means
/// "directly measured / untagged". Tagging merges by **minimum**
/// nonzero confidence — the weakest extrapolation touching a /24 wins,
/// the conservative dual of [`crate::VerdictTable`]'s max-rank merge —
/// so the table is insertion-order independent like every other
/// structure the deterministic reduction feeds.
#[derive(Debug, Clone, Default)]
pub struct ConfidenceTable {
    table: Slash24Table,
}

impl ConfidenceTable {
    /// An all-untagged table.
    pub fn new() -> ConfidenceTable {
        ConfidenceTable::default()
    }

    /// The confidence tag at /24 index `idx` (0 = untagged).
    pub fn get(&self, idx: u32) -> u8 {
        self.table.get(idx)
    }

    /// Tags /24 index `idx` with `confidence` (clamped up to 1),
    /// keeping the minimum of all nonzero tags seen.
    pub fn tag(&mut self, idx: u32, confidence: u8) {
        let confidence = confidence.max(1);
        let prev = self.table.get(idx);
        if prev == 0 || confidence < prev {
            self.table.set(idx, confidence);
        }
    }

    /// Tags every /24 covered by the scope `(addr, len)`; scopes longer
    /// than a /24 tag the /24 containing them.
    pub fn tag_scope(&mut self, addr: u32, len: u8, confidence: u8) {
        let base = slash24_index(addr);
        if len >= 24 {
            self.tag(base, confidence);
            return;
        }
        let span = 1u32 << (24 - len);
        let start = base & !(span - 1);
        for idx in start..start + span {
            self.tag(idx, confidence);
        }
    }

    /// Number of tagged /24s.
    pub fn count_tagged(&self) -> u64 {
        self.table.count_nonzero()
    }

    /// `(index, confidence)` for every tagged /24, ascending by index.
    pub fn iter_tagged(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.table.iter_nonzero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_keeps_the_minimum_nonzero_confidence() {
        let mut t = ConfidenceTable::new();
        assert_eq!(t.get(42), 0);
        t.tag(42, 200);
        assert_eq!(t.get(42), 200);
        t.tag(42, 250); // weaker evidence never raises the tag
        assert_eq!(t.get(42), 200);
        t.tag(42, 90);
        assert_eq!(t.get(42), 90);
        t.tag(7, 0); // clamped to 1, never silently untagged
        assert_eq!(t.get(7), 1);
        assert_eq!(t.count_tagged(), 2);
    }

    #[test]
    fn tag_scope_expands_to_every_covered_slash24() {
        let mut t = ConfidenceTable::new();
        t.tag_scope(0x0A000000, 22, 128); // 10.0.0.0/22 → four /24s
        assert_eq!(
            t.iter_tagged().collect::<Vec<_>>(),
            vec![
                (0x0A0000, 128),
                (0x0A0001, 128),
                (0x0A0002, 128),
                (0x0A0003, 128)
            ]
        );
        t.tag_scope(0x0A000280, 26, 30); // inside 10.0.2.0/24
        assert_eq!(t.get(0x0A0002), 30);
        assert_eq!(t.count_tagged(), 4);
    }
}
