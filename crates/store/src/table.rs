//! A dense small-integer table over the /24 space — the radix sibling
//! of [`crate::Slash24Bitset`] for per-/24 tags rather than membership.

use std::collections::BTreeMap;

use crate::bitset::SLASH24_SPACE;

/// Entries per lazily allocated page.
const PAGE_SLOTS: usize = 4096;

/// One `u8` per /24 across the whole IPv4 space; 0 is the implicit
/// default, so untouched space costs nothing.
///
/// Used as the scope-scan dedup table (tag = scope length + 1) and as
/// the backing of [`crate::VerdictTable`].
#[derive(Debug, Clone, Default)]
pub struct Slash24Table {
    pages: BTreeMap<u32, Box<[u8; PAGE_SLOTS]>>,
    nonzero: u64,
}

impl Slash24Table {
    /// An all-zero table.
    pub fn new() -> Slash24Table {
        Slash24Table::default()
    }

    /// The tag at /24 index `idx` (0 when never set).
    pub fn get(&self, idx: u32) -> u8 {
        if idx as usize >= SLASH24_SPACE {
            return 0;
        }
        self.pages
            .get(&(idx >> 12))
            .map_or(0, |page| page[(idx & 4095) as usize])
    }

    /// Stores `tag` at /24 index `idx`; returns the previous tag.
    pub fn set(&mut self, idx: u32, tag: u8) -> u8 {
        assert!((idx as usize) < SLASH24_SPACE, "/24 index out of range");
        let page = self
            .pages
            .entry(idx >> 12)
            .or_insert_with(|| Box::new([0u8; PAGE_SLOTS]));
        let slot = (idx & 4095) as usize;
        let prev = page[slot];
        page[slot] = tag;
        match (prev, tag) {
            (0, t) if t != 0 => self.nonzero += 1,
            (p, 0) if p != 0 => self.nonzero -= 1,
            _ => {}
        }
        prev
    }

    /// Number of /24s holding a non-zero tag.
    pub fn count_nonzero(&self) -> u64 {
        self.nonzero
    }

    /// `(index, tag)` for every non-zero entry, ascending by index —
    /// the canonical iteration order shared with a sorted reference
    /// model.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.pages.iter().flat_map(|(k, page)| {
            let base = k << 12;
            page.iter()
                .enumerate()
                .filter(|(_, &tag)| tag != 0)
                .map(move |(slot, &tag)| (base + slot as u32, tag))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_sets_round_trip() {
        let mut t = Slash24Table::new();
        assert_eq!(t.get(12345), 0);
        assert_eq!(t.set(12345, 7), 0);
        assert_eq!(t.set(12345, 9), 7);
        assert_eq!(t.get(12345), 9);
        assert_eq!(t.get(12346), 0);
        assert_eq!(t.count_nonzero(), 1);
        t.set(12345, 0);
        assert_eq!(t.count_nonzero(), 0);
    }

    #[test]
    fn iterates_nonzero_ascending_across_pages() {
        let mut t = Slash24Table::new();
        t.set(0xFFFFFF, 1);
        t.set(0, 2);
        t.set(5000, 3);
        assert_eq!(
            t.iter_nonzero().collect::<Vec<_>>(),
            vec![(0, 2), (5000, 3), (0xFFFFFF, 1)]
        );
    }
}
