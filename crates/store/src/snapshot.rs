//! The serialized state of one probing sweep — everything a later run
//! needs to warm-start instead of re-probing the world.

use std::collections::BTreeMap;

use clientmap_telemetry::{HistogramDelta, MetricsDelta};

use crate::codec::{ByteReader, ByteWriter, CodecError};

/// File magic: "CMSS" — ClientMap Sweep Snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CMSS";

/// Current format version. Policy: the version bumps on **any** layout
/// change; decoders accept exactly the versions they were built for
/// and reject everything else up front (a warm start from a stale
/// snapshot must fail loudly, never half-load).
pub const SNAPSHOT_VERSION: u16 = 1;

/// Key of one per-scope probe record:
/// `(bound-vantage index, domain index, scope address, scope length)`.
///
/// Bound-vantage and domain indexes are stable across runs of the same
/// config digest (discovery order and domain selection are
/// deterministic), so the key space lines up exactly between the run
/// that wrote the snapshot and the run that warm-starts from it.
pub type RecordKey = (u16, u16, u32, u8);

/// One cache hit observed for a scope: the response scope Google
/// returned and the remaining TTL it carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HitEvent {
    /// Response scope network address.
    pub resp_addr: u32,
    /// Response scope prefix length.
    pub resp_len: u8,
    /// Remaining TTL seconds on the cached answer.
    pub remaining_ttl: u32,
}

/// What probing one ⟨vantage, domain, scope⟩ stream slot produced over
/// the whole sweep. `attempts == 0` marks a scope that was assigned
/// but never reached (breaker-aborted stream) — the planner's rescue
/// signal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScopeRecord {
    /// Probe events sent (each `redundancy` wire queries).
    pub attempts: u64,
    /// Events answered only with a /0 scope.
    pub scope0: u64,
    /// Events lost entirely.
    pub drops: u64,
    /// Cache hits, in observation order.
    pub hit_events: Vec<HitEvent>,
}

impl ScopeRecord {
    /// Events that hit the cache with a usable scope.
    pub fn hits(&self) -> u64 {
        self.hit_events.len() as u64
    }

    /// Events that were answered but found nothing cached.
    pub fn misses(&self) -> u64 {
        self.attempts - self.hits() - self.scope0 - self.drops
    }
}

/// Fault accounting carried in a snapshot — the storable mirror of
/// `cacheprobe`'s `FaultSummary` (this crate sits below `cacheprobe`,
/// so it keeps its own struct).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultRecord {
    /// Fault profile name (`light`, `lossy`, `pop-churn`).
    pub profile: String,
    /// Failures observed client-side.
    pub observed: u64,
    /// Retry sends beyond first queries.
    pub retries: u64,
    /// Failures recovered by retry.
    pub recovered: u64,
    /// Failures recovered only via TCP upgrade.
    pub degraded: u64,
    /// Failures never recovered.
    pub lost: u64,
    /// PoP ids quarantined by the circuit breaker — the planner's
    /// dirty set for the next warm run.
    pub quarantined_pops: Vec<u64>,
    /// Scopes re-probed at fallback PoPs.
    pub rescued_scopes: u64,
    /// Assigned scopes that stayed unmeasured.
    pub unmeasured_scopes: u64,
    /// Total assigned ⟨domain, scope⟩ pairs.
    pub assigned_scopes: u64,
}

/// A versioned, checksummed, byte-stable record of one sweep.
///
/// Holds four things: (1) per-scope [`ScopeRecord`]s keyed by
/// [`RecordKey`] — enough to replay the sweep's results exactly;
/// (2) the [`MetricsDelta`] of the probing window, so a warm run that
/// skips probing can absorb the skipped telemetry; (3) the resolver
/// session counter deltas (`gpdns`) for the same reason; (4) the
/// fault accounting, whose quarantine list seeds the next planner's
/// dirty set. `world_seed` + `config_digest` scope validity: a warm
/// start under any other world or probing config is rejected.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSnapshot {
    /// Sweep generation: 1 for a cold sweep, prior + 1 for each warm
    /// re-sweep. Drives the rotating expiry draw.
    pub epoch: u32,
    /// Seed of the world this sweep measured.
    pub world_seed: u64,
    /// Digest of every probing-relevant config field (see
    /// `cacheprobe`'s sweep module). The expiry budget is deliberately
    /// excluded — re-sweeping the same world under a different
    /// freshness budget is the point of warm starts.
    pub config_digest: u64,
    /// Probing-window deltas of the six resolver session counters
    /// (queries, rate-limited, scoped hits, scope0 hits, misses,
    /// recursive), in that order.
    pub gpdns: [u64; 6],
    /// Fault accounting, when the sweep ran under fault injection.
    pub fault: Option<FaultRecord>,
    /// Telemetry recorded inside the probing window (probing + rescue
    /// stages), as a replayable delta.
    pub metrics: MetricsDelta,
    /// Per-scope probe records, ordered by key.
    pub records: BTreeMap<RecordKey, ScopeRecord>,
}

impl SweepSnapshot {
    /// An empty epoch-0 snapshot scoped to `(world_seed, digest)`.
    /// (Sweeps write epoch ≥ 1; epoch 0 only ever appears as a
    /// just-constructed value.)
    pub fn new(world_seed: u64, config_digest: u64) -> SweepSnapshot {
        SweepSnapshot {
            world_seed,
            config_digest,
            ..SweepSnapshot::default()
        }
    }

    /// The PoPs the recorded sweep quarantined — dirty for replanning.
    pub fn quarantined_pops(&self) -> &[u64] {
        self.fault
            .as_ref()
            .map_or(&[], |f| f.quarantined_pops.as_slice())
    }

    /// Serializes to the versioned, checksummed byte layout. Equal
    /// snapshots encode byte-identically (all maps are ordered).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u32(self.epoch);
        w.u64(self.world_seed);
        w.u64(self.config_digest);
        for v in self.gpdns {
            w.u64(v);
        }
        match &self.fault {
            None => w.u8(0),
            Some(f) => {
                w.u8(1);
                w.str(&f.profile);
                w.u64(f.observed);
                w.u64(f.retries);
                w.u64(f.recovered);
                w.u64(f.degraded);
                w.u64(f.lost);
                w.u32(f.quarantined_pops.len() as u32);
                for pop in &f.quarantined_pops {
                    w.u64(*pop);
                }
                w.u64(f.rescued_scopes);
                w.u64(f.unmeasured_scopes);
                w.u64(f.assigned_scopes);
            }
        }
        w.u32(self.metrics.counters.len() as u32);
        for (name, inc) in &self.metrics.counters {
            w.str(name);
            w.u64(*inc);
        }
        w.u32(self.metrics.histograms.len() as u32);
        for (name, h) in &self.metrics.histograms {
            w.str(name);
            w.u64(h.count);
            w.u64(h.sum);
            w.u64(h.min);
            w.u64(h.max);
            w.u32(h.buckets.len() as u32);
            for (le, c) in &h.buckets {
                w.u64(*le);
                w.u64(*c);
            }
        }
        w.u32(self.records.len() as u32);
        for ((bound, domain, addr, len), rec) in &self.records {
            w.u16(*bound);
            w.u16(*domain);
            w.u32(*addr);
            w.u8(*len);
            w.u64(rec.attempts);
            w.u64(rec.scope0);
            w.u64(rec.drops);
            w.u32(rec.hit_events.len() as u32);
            for e in &rec.hit_events {
                w.u32(e.resp_addr);
                w.u8(e.resp_len);
                w.u32(e.remaining_ttl);
            }
        }
        w.finish()
    }

    /// Decodes and fully validates a snapshot: magic, version, and
    /// checksum are checked before any field is interpreted, and the
    /// payload must parse to exhaustion.
    pub fn decode(bytes: &[u8]) -> Result<SweepSnapshot, CodecError> {
        if bytes.len() < 6 || bytes[..4] != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let mut r = ByteReader::verified(bytes)?;
        // Re-consume the already-validated header through the cursor.
        for expected in SNAPSHOT_MAGIC {
            if r.u8()? != expected {
                return Err(CodecError::BadMagic);
            }
        }
        let _version = r.u16()?;
        let epoch = r.u32()?;
        let world_seed = r.u64()?;
        let config_digest = r.u64()?;
        let mut gpdns = [0u64; 6];
        for slot in &mut gpdns {
            *slot = r.u64()?;
        }
        let fault = match r.u8()? {
            0 => None,
            1 => {
                let profile = r.str()?;
                let observed = r.u64()?;
                let retries = r.u64()?;
                let recovered = r.u64()?;
                let degraded = r.u64()?;
                let lost = r.u64()?;
                let n = r.u32()? as usize;
                let mut quarantined_pops = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    quarantined_pops.push(r.u64()?);
                }
                Some(FaultRecord {
                    profile,
                    observed,
                    retries,
                    recovered,
                    degraded,
                    lost,
                    quarantined_pops,
                    rescued_scopes: r.u64()?,
                    unmeasured_scopes: r.u64()?,
                    assigned_scopes: r.u64()?,
                })
            }
            _ => return Err(CodecError::Malformed("fault flag")),
        };
        let mut metrics = MetricsDelta::default();
        let n_counters = r.u32()? as usize;
        for _ in 0..n_counters {
            let name = r.str()?;
            let inc = r.u64()?;
            metrics.counters.insert(name, inc);
        }
        let n_hists = r.u32()? as usize;
        for _ in 0..n_hists {
            let name = r.str()?;
            let count = r.u64()?;
            let sum = r.u64()?;
            let min = r.u64()?;
            let max = r.u64()?;
            let n_buckets = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n_buckets.min(65));
            for _ in 0..n_buckets {
                let le = r.u64()?;
                let c = r.u64()?;
                buckets.push((le, c));
            }
            metrics.histograms.insert(
                name,
                HistogramDelta {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            );
        }
        let n_records = r.u32()? as usize;
        let mut records = BTreeMap::new();
        for _ in 0..n_records {
            let bound = r.u16()?;
            let domain = r.u16()?;
            let addr = r.u32()?;
            let len = r.u8()?;
            if len > 32 {
                return Err(CodecError::Malformed("scope length"));
            }
            let attempts = r.u64()?;
            let scope0 = r.u64()?;
            let drops = r.u64()?;
            let n_events = r.u32()? as usize;
            let mut hit_events = Vec::with_capacity(n_events.min(65536));
            for _ in 0..n_events {
                hit_events.push(HitEvent {
                    resp_addr: r.u32()?,
                    resp_len: r.u8()?,
                    remaining_ttl: r.u32()?,
                });
            }
            let rec = ScopeRecord {
                attempts,
                scope0,
                drops,
                hit_events,
            };
            if rec.hits() + rec.scope0 + rec.drops > rec.attempts {
                return Err(CodecError::Malformed("record outcome counts"));
            }
            records.insert((bound, domain, addr, len), rec);
        }
        r.expect_done()?;
        Ok(SweepSnapshot {
            epoch,
            world_seed,
            config_digest,
            gpdns,
            fault,
            metrics,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepSnapshot {
        let mut s = SweepSnapshot::new(2021, 0xD16E57);
        s.epoch = 3;
        s.gpdns = [100, 1, 40, 2, 57, 0];
        s.fault = Some(FaultRecord {
            profile: "lossy".into(),
            observed: 11,
            retries: 14,
            recovered: 9,
            degraded: 1,
            lost: 1,
            quarantined_pops: vec![4, 17],
            rescued_scopes: 3,
            unmeasured_scopes: 2,
            assigned_scopes: 40,
        });
        s.metrics.counters.insert("cacheprobe.attempts".into(), 55);
        s.metrics.histograms.insert(
            "cacheprobe.hit.remaining_ttl_secs".into(),
            HistogramDelta {
                count: 2,
                sum: 130,
                min: 30,
                max: 100,
                buckets: vec![(31, 1), (127, 1)],
            },
        );
        s.records.insert(
            (0, 1, 0x0A000000, 24),
            ScopeRecord {
                attempts: 9,
                scope0: 1,
                drops: 2,
                hit_events: vec![HitEvent {
                    resp_addr: 0x0A000000,
                    resp_len: 24,
                    remaining_ttl: 99,
                }],
            },
        );
        s.records
            .insert((2, 0, 0xC0000200, 20), ScopeRecord::default());
        s
    }

    #[test]
    fn round_trips_exactly() {
        let s = sample();
        let bytes = s.encode();
        let back = SweepSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // encode(decode(bytes)) is also byte-stable.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rejects_magic_version_and_corruption() {
        let bytes = sample().encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::BadMagic)
        );
        let mut bad = bytes.clone();
        bad[4] = SNAPSHOT_VERSION as u8 + 1;
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::BadVersion(SNAPSHOT_VERSION + 1))
        );
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(SweepSnapshot::decode(&bad).is_err());
        assert!(SweepSnapshot::decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(SweepSnapshot::decode(b"CM").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = SweepSnapshot::new(7, 9);
        assert_eq!(SweepSnapshot::decode(&s.encode()).unwrap(), s);
        assert!(s.quarantined_pops().is_empty());
    }
}
