//! The serialized state of one probing sweep — everything a later run
//! needs to warm-start instead of re-probing the world.

use std::collections::BTreeMap;

use clientmap_telemetry::{HistogramDelta, MetricsDelta};

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::confidence::ConfidenceRecord;

/// File magic: "CMSS" — ClientMap Sweep Snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CMSS";

/// Current format version. Policy: the version bumps on **any** layout
/// change; decoders accept exactly the versions they were built for
/// and reject everything else up front (a warm start from a stale
/// snapshot must fail loudly, never half-load).
///
/// Version 2 appends the per-PoP calibration section after the scope
/// records. Version 3 appends the extrapolation-confidence section
/// after calibration. Older snapshots (no calibration and/or no
/// confidence section) still decode — a v1 warm start re-calibrates
/// live, and a v1/v2 warm start simply carries no confidence tags, so
/// the clustered planner has nothing to escalate from.
pub const SNAPSHOT_VERSION: u16 = 3;

/// Cache pools per PoP — fixed by the resolver model; the calibration
/// record stores one counter per pool.
const CALIBRATION_POOLS: usize = 4;

/// Key of one per-scope probe record:
/// `(bound-vantage index, domain index, scope address, scope length)`.
///
/// Bound-vantage and domain indexes are stable across runs of the same
/// config digest (discovery order and domain selection are
/// deterministic), so the key space lines up exactly between the run
/// that wrote the snapshot and the run that warm-starts from it.
pub type RecordKey = (u16, u16, u32, u8);

/// One cache hit observed for a scope: the response scope Google
/// returned and the remaining TTL it carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HitEvent {
    /// Response scope network address.
    pub resp_addr: u32,
    /// Response scope prefix length.
    pub resp_len: u8,
    /// Remaining TTL seconds on the cached answer.
    pub remaining_ttl: u32,
}

/// What probing one ⟨vantage, domain, scope⟩ stream slot produced over
/// the whole sweep. `attempts == 0` marks a scope that was assigned
/// but never reached (breaker-aborted stream) — the planner's rescue
/// signal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScopeRecord {
    /// Probe events sent (each `redundancy` wire queries).
    pub attempts: u64,
    /// Events answered only with a /0 scope.
    pub scope0: u64,
    /// Events lost entirely.
    pub drops: u64,
    /// Cache hits, in observation order.
    pub hit_events: Vec<HitEvent>,
}

impl ScopeRecord {
    /// Events that hit the cache with a usable scope.
    pub fn hits(&self) -> u64 {
        self.hit_events.len() as u64
    }

    /// Events that were answered but found nothing cached.
    pub fn misses(&self) -> u64 {
        self.attempts - self.hits() - self.scope0 - self.drops
    }
}

/// Fault accounting carried in a snapshot — the storable mirror of
/// `cacheprobe`'s `FaultSummary` (this crate sits below `cacheprobe`,
/// so it keeps its own struct).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultRecord {
    /// Fault profile name (`light`, `lossy`, `pop-churn`).
    pub profile: String,
    /// Failures observed client-side.
    pub observed: u64,
    /// Retry sends beyond first queries.
    pub retries: u64,
    /// Failures recovered by retry.
    pub recovered: u64,
    /// Failures recovered only via TCP upgrade.
    pub degraded: u64,
    /// Failures never recovered.
    pub lost: u64,
    /// PoP ids quarantined by the circuit breaker — the planner's
    /// dirty set for the next warm run.
    pub quarantined_pops: Vec<u64>,
    /// Scopes re-probed at fallback PoPs.
    pub rescued_scopes: u64,
    /// Assigned scopes that stayed unmeasured.
    pub unmeasured_scopes: u64,
    /// Total assigned ⟨domain, scope⟩ pairs.
    pub assigned_scopes: u64,
}

/// One PoP's calibration capture: the measured service radius, the raw
/// hit distances behind it, and the exact resolver-side counter deltas
/// the calibration queries produced — everything a warm run needs to
/// replay calibration for a clean PoP without re-probing it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationRecord {
    /// The calibrated PoP id.
    pub pop: u64,
    /// The radius estimate (percentile of hit distances), if any hit
    /// landed.
    pub radius_km: Option<f64>,
    /// Geodesic distances of every calibration hit, in observation
    /// order.
    pub hit_distances_km: Vec<f64>,
    /// Resolver queries this PoP's calibration stream sent.
    pub queries: u64,
    /// Queries dropped by the rate limiter.
    pub rate_limited: u64,
    /// Scoped cache hits, per pool.
    pub pool_hits: [u64; CALIBRATION_POOLS],
    /// Scope-0 cache hits, per pool.
    pub pool_scope0: [u64; CALIBRATION_POOLS],
    /// Cache misses, per pool.
    pub pool_misses: [u64; CALIBRATION_POOLS],
}

/// A versioned, checksummed, byte-stable record of one sweep.
///
/// Holds four things: (1) per-scope [`ScopeRecord`]s keyed by
/// [`RecordKey`] — enough to replay the sweep's results exactly;
/// (2) the [`MetricsDelta`] of the probing window, so a warm run that
/// skips probing can absorb the skipped telemetry; (3) the resolver
/// session counter deltas (`gpdns`) for the same reason; (4) the
/// fault accounting, whose quarantine list seeds the next planner's
/// dirty set. `world_seed` + `config_digest` scope validity: a warm
/// start under any other world or probing config is rejected.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSnapshot {
    /// Sweep generation: 1 for a cold sweep, prior + 1 for each warm
    /// re-sweep. Drives the rotating expiry draw.
    pub epoch: u32,
    /// Seed of the world this sweep measured.
    pub world_seed: u64,
    /// Digest of every probing-relevant config field (see
    /// `cacheprobe`'s sweep module). The expiry budget is deliberately
    /// excluded — re-sweeping the same world under a different
    /// freshness budget is the point of warm starts.
    pub config_digest: u64,
    /// Probing-window deltas of the six resolver session counters
    /// (queries, rate-limited, scoped hits, scope0 hits, misses,
    /// recursive), in that order.
    pub gpdns: [u64; 6],
    /// Fault accounting, when the sweep ran under fault injection.
    pub fault: Option<FaultRecord>,
    /// Telemetry recorded inside the probing window (probing + rescue
    /// stages), as a replayable delta.
    pub metrics: MetricsDelta,
    /// Per-scope probe records, ordered by key.
    pub records: BTreeMap<RecordKey, ScopeRecord>,
    /// Per-PoP calibration captures, ordered by PoP id. Empty when the
    /// recorded sweep could not capture calibration (faulted run, or a
    /// version-1 snapshot).
    pub calibration: Vec<CalibrationRecord>,
    /// Size of the calibration prefix sample the captures were measured
    /// against.
    pub calibration_sample: u64,
    /// Extrapolation provenance, keyed by the **member** slot: which
    /// representative each extrapolated record was copied from, with
    /// what confidence, against what prior verdict. Empty for
    /// exhaustive sweeps (and for snapshots older than version 3).
    pub confidence: BTreeMap<RecordKey, ConfidenceRecord>,
}

impl SweepSnapshot {
    /// An empty epoch-0 snapshot scoped to `(world_seed, digest)`.
    /// (Sweeps write epoch ≥ 1; epoch 0 only ever appears as a
    /// just-constructed value.)
    pub fn new(world_seed: u64, config_digest: u64) -> SweepSnapshot {
        SweepSnapshot {
            world_seed,
            config_digest,
            ..SweepSnapshot::default()
        }
    }

    /// The PoPs the recorded sweep quarantined — dirty for replanning.
    pub fn quarantined_pops(&self) -> &[u64] {
        self.fault
            .as_ref()
            .map_or(&[], |f| f.quarantined_pops.as_slice())
    }

    /// Serializes to the versioned, checksummed byte layout. Equal
    /// snapshots encode byte-identically (all maps are ordered).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u32(self.epoch);
        w.u64(self.world_seed);
        w.u64(self.config_digest);
        for v in self.gpdns {
            w.u64(v);
        }
        match &self.fault {
            None => w.u8(0),
            Some(f) => {
                w.u8(1);
                w.str(&f.profile);
                w.u64(f.observed);
                w.u64(f.retries);
                w.u64(f.recovered);
                w.u64(f.degraded);
                w.u64(f.lost);
                w.u32(f.quarantined_pops.len() as u32);
                for pop in &f.quarantined_pops {
                    w.u64(*pop);
                }
                w.u64(f.rescued_scopes);
                w.u64(f.unmeasured_scopes);
                w.u64(f.assigned_scopes);
            }
        }
        w.u32(self.metrics.counters.len() as u32);
        for (name, inc) in &self.metrics.counters {
            w.str(name);
            w.u64(*inc);
        }
        w.u32(self.metrics.histograms.len() as u32);
        for (name, h) in &self.metrics.histograms {
            w.str(name);
            w.u64(h.count);
            w.u64(h.sum);
            w.u64(h.min);
            w.u64(h.max);
            w.u32(h.buckets.len() as u32);
            for (le, c) in &h.buckets {
                w.u64(*le);
                w.u64(*c);
            }
        }
        w.u32(self.records.len() as u32);
        for ((bound, domain, addr, len), rec) in &self.records {
            w.u16(*bound);
            w.u16(*domain);
            w.u32(*addr);
            w.u8(*len);
            w.u64(rec.attempts);
            w.u64(rec.scope0);
            w.u64(rec.drops);
            w.u32(rec.hit_events.len() as u32);
            for e in &rec.hit_events {
                w.u32(e.resp_addr);
                w.u8(e.resp_len);
                w.u32(e.remaining_ttl);
            }
        }
        // Version-2 calibration section.
        w.u64(self.calibration_sample);
        w.u32(self.calibration.len() as u32);
        for c in &self.calibration {
            w.u64(c.pop);
            match c.radius_km {
                None => w.u8(0),
                Some(r) => {
                    w.u8(1);
                    w.u64(r.to_bits());
                }
            }
            w.u32(c.hit_distances_km.len() as u32);
            for d in &c.hit_distances_km {
                w.u64(d.to_bits());
            }
            w.u64(c.queries);
            w.u64(c.rate_limited);
            for pool in 0..CALIBRATION_POOLS {
                w.u64(c.pool_hits[pool]);
                w.u64(c.pool_scope0[pool]);
                w.u64(c.pool_misses[pool]);
            }
        }
        // Version-3 confidence section.
        w.u32(self.confidence.len() as u32);
        for ((bound, domain, addr, len), c) in &self.confidence {
            w.u16(*bound);
            w.u16(*domain);
            w.u32(*addr);
            w.u8(*len);
            w.u16(c.rep.0);
            w.u16(c.rep.1);
            w.u32(c.rep.2);
            w.u8(c.rep.3);
            w.u8(c.confidence);
            w.u8(c.prior_verdict);
        }
        w.finish()
    }

    /// Decodes and fully validates a snapshot: magic, version, and
    /// checksum are checked before any field is interpreted, and the
    /// payload must parse to exhaustion.
    pub fn decode(bytes: &[u8]) -> Result<SweepSnapshot, CodecError> {
        if bytes.len() < 6 || bytes[..4] != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if !(1..=SNAPSHOT_VERSION).contains(&version) {
            return Err(CodecError::BadVersion(version));
        }
        let mut r = ByteReader::verified(bytes)?;
        // Re-consume the already-validated header through the cursor.
        for expected in SNAPSHOT_MAGIC {
            if r.u8()? != expected {
                return Err(CodecError::BadMagic);
            }
        }
        let _version = r.u16()?;
        let epoch = r.u32()?;
        let world_seed = r.u64()?;
        let config_digest = r.u64()?;
        let mut gpdns = [0u64; 6];
        for slot in &mut gpdns {
            *slot = r.u64()?;
        }
        let fault = match r.u8()? {
            0 => None,
            1 => {
                let profile = r.str()?;
                let observed = r.u64()?;
                let retries = r.u64()?;
                let recovered = r.u64()?;
                let degraded = r.u64()?;
                let lost = r.u64()?;
                let n = r.u32()? as usize;
                let mut quarantined_pops = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    quarantined_pops.push(r.u64()?);
                }
                Some(FaultRecord {
                    profile,
                    observed,
                    retries,
                    recovered,
                    degraded,
                    lost,
                    quarantined_pops,
                    rescued_scopes: r.u64()?,
                    unmeasured_scopes: r.u64()?,
                    assigned_scopes: r.u64()?,
                })
            }
            _ => return Err(CodecError::Malformed("fault flag")),
        };
        let mut metrics = MetricsDelta::default();
        let n_counters = r.u32()? as usize;
        for _ in 0..n_counters {
            let name = r.str()?;
            let inc = r.u64()?;
            metrics.counters.insert(name, inc);
        }
        let n_hists = r.u32()? as usize;
        for _ in 0..n_hists {
            let name = r.str()?;
            let count = r.u64()?;
            let sum = r.u64()?;
            let min = r.u64()?;
            let max = r.u64()?;
            let n_buckets = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n_buckets.min(65));
            for _ in 0..n_buckets {
                let le = r.u64()?;
                let c = r.u64()?;
                buckets.push((le, c));
            }
            metrics.histograms.insert(
                name,
                HistogramDelta {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            );
        }
        let n_records = r.u32()? as usize;
        let mut records = BTreeMap::new();
        for _ in 0..n_records {
            let bound = r.u16()?;
            let domain = r.u16()?;
            let addr = r.u32()?;
            let len = r.u8()?;
            if len > 32 {
                return Err(CodecError::Malformed("scope length"));
            }
            let attempts = r.u64()?;
            let scope0 = r.u64()?;
            let drops = r.u64()?;
            let n_events = r.u32()? as usize;
            let mut hit_events = Vec::with_capacity(n_events.min(65536));
            for _ in 0..n_events {
                hit_events.push(HitEvent {
                    resp_addr: r.u32()?,
                    resp_len: r.u8()?,
                    remaining_ttl: r.u32()?,
                });
            }
            let rec = ScopeRecord {
                attempts,
                scope0,
                drops,
                hit_events,
            };
            if rec.hits() + rec.scope0 + rec.drops > rec.attempts {
                return Err(CodecError::Malformed("record outcome counts"));
            }
            records.insert((bound, domain, addr, len), rec);
        }
        // Version 1 ends here; version 2 carries the calibration
        // section. A v1 warm start simply re-calibrates live.
        let mut calibration = Vec::new();
        let mut calibration_sample = 0u64;
        if version >= 2 {
            calibration_sample = r.u64()?;
            let n_cal = r.u32()? as usize;
            calibration.reserve(n_cal.min(4096));
            let mut last_pop = None;
            for _ in 0..n_cal {
                let pop = r.u64()?;
                if last_pop.is_some_and(|prev| prev >= pop) {
                    return Err(CodecError::Malformed("calibration pop order"));
                }
                last_pop = Some(pop);
                let radius_km = match r.u8()? {
                    0 => None,
                    1 => {
                        let radius = f64::from_bits(r.u64()?);
                        if !radius.is_finite() || radius < 0.0 {
                            return Err(CodecError::Malformed("calibration radius value"));
                        }
                        Some(radius)
                    }
                    _ => return Err(CodecError::Malformed("calibration radius flag")),
                };
                let n_distances = r.u32()? as usize;
                let mut hit_distances_km = Vec::with_capacity(n_distances.min(65536));
                for _ in 0..n_distances {
                    let d = f64::from_bits(r.u64()?);
                    if !d.is_finite() || d < 0.0 {
                        return Err(CodecError::Malformed("calibration hit distance"));
                    }
                    hit_distances_km.push(d);
                }
                let queries = r.u64()?;
                let rate_limited = r.u64()?;
                let mut pool_hits = [0u64; CALIBRATION_POOLS];
                let mut pool_scope0 = [0u64; CALIBRATION_POOLS];
                let mut pool_misses = [0u64; CALIBRATION_POOLS];
                for pool in 0..CALIBRATION_POOLS {
                    pool_hits[pool] = r.u64()?;
                    pool_scope0[pool] = r.u64()?;
                    pool_misses[pool] = r.u64()?;
                }
                let served: u64 = pool_hits.iter().sum::<u64>()
                    + pool_scope0.iter().sum::<u64>()
                    + pool_misses.iter().sum::<u64>();
                if served + rate_limited > queries {
                    return Err(CodecError::Malformed("calibration outcome counts"));
                }
                calibration.push(CalibrationRecord {
                    pop,
                    radius_km,
                    hit_distances_km,
                    queries,
                    rate_limited,
                    pool_hits,
                    pool_scope0,
                    pool_misses,
                });
            }
        }
        // Versions 1-2 end here; version 3 carries the confidence
        // section. Older snapshots warm-start with no extrapolation
        // provenance to escalate from.
        let mut confidence = BTreeMap::new();
        if version >= 3 {
            let n_conf = r.u32()? as usize;
            let mut last_key: Option<RecordKey> = None;
            for _ in 0..n_conf {
                let key = (r.u16()?, r.u16()?, r.u32()?, r.u8()?);
                if key.3 > 32 {
                    return Err(CodecError::Malformed("confidence member scope length"));
                }
                if last_key.is_some_and(|prev| prev >= key) {
                    return Err(CodecError::Malformed("confidence key order"));
                }
                last_key = Some(key);
                let rep = (r.u16()?, r.u16()?, r.u32()?, r.u8()?);
                if rep.3 > 32 {
                    return Err(CodecError::Malformed("confidence rep scope length"));
                }
                let conf = r.u8()?;
                if conf == 0 {
                    return Err(CodecError::Malformed("confidence value"));
                }
                let prior_verdict = r.u8()?;
                if prior_verdict > 4 {
                    return Err(CodecError::Malformed("confidence prior verdict"));
                }
                confidence.insert(
                    key,
                    ConfidenceRecord {
                        rep,
                        confidence: conf,
                        prior_verdict,
                    },
                );
            }
        }
        r.expect_done()?;
        Ok(SweepSnapshot {
            epoch,
            world_seed,
            config_digest,
            gpdns,
            fault,
            metrics,
            records,
            calibration,
            calibration_sample,
            confidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::checksum;

    fn sample() -> SweepSnapshot {
        let mut s = SweepSnapshot::new(2021, 0xD16E57);
        s.epoch = 3;
        s.gpdns = [100, 1, 40, 2, 57, 0];
        s.fault = Some(FaultRecord {
            profile: "lossy".into(),
            observed: 11,
            retries: 14,
            recovered: 9,
            degraded: 1,
            lost: 1,
            quarantined_pops: vec![4, 17],
            rescued_scopes: 3,
            unmeasured_scopes: 2,
            assigned_scopes: 40,
        });
        s.metrics.counters.insert("cacheprobe.attempts".into(), 55);
        s.metrics.histograms.insert(
            "cacheprobe.hit.remaining_ttl_secs".into(),
            HistogramDelta {
                count: 2,
                sum: 130,
                min: 30,
                max: 100,
                buckets: vec![(31, 1), (127, 1)],
            },
        );
        s.records.insert(
            (0, 1, 0x0A000000, 24),
            ScopeRecord {
                attempts: 9,
                scope0: 1,
                drops: 2,
                hit_events: vec![HitEvent {
                    resp_addr: 0x0A000000,
                    resp_len: 24,
                    remaining_ttl: 99,
                }],
            },
        );
        s.records
            .insert((2, 0, 0xC0000200, 20), ScopeRecord::default());
        s.confidence.insert(
            (0, 1, 0x0A000100, 24),
            ConfidenceRecord {
                rep: (0, 1, 0x0A000000, 24),
                confidence: 240,
                prior_verdict: 4,
            },
        );
        s.confidence.insert(
            (2, 0, 0xC0000300, 24),
            ConfidenceRecord {
                rep: (2, 0, 0xC0000200, 20),
                confidence: 12,
                prior_verdict: 0,
            },
        );
        s.calibration_sample = 800;
        s.calibration = vec![
            CalibrationRecord {
                pop: 2,
                radius_km: Some(1450.5),
                hit_distances_km: vec![10.0, 1450.5, 2200.25],
                queries: 40,
                rate_limited: 0,
                pool_hits: [1, 0, 2, 0],
                pool_scope0: [0, 1, 0, 0],
                pool_misses: [9, 9, 9, 9],
            },
            CalibrationRecord {
                pop: 9,
                radius_km: None,
                hit_distances_km: Vec::new(),
                queries: 12,
                rate_limited: 2,
                pool_hits: [0; 4],
                pool_scope0: [0; 4],
                pool_misses: [3, 3, 2, 2],
            },
        ];
        s
    }

    /// Re-encodes a snapshot in the version-1 layout (no calibration
    /// section) — the bytes a pre-calibration-persistence build wrote.
    fn encode_v1(s: &SweepSnapshot) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u16(1);
        w.u32(s.epoch);
        w.u64(s.world_seed);
        w.u64(s.config_digest);
        for v in s.gpdns {
            w.u64(v);
        }
        match &s.fault {
            None => w.u8(0),
            Some(f) => {
                w.u8(1);
                w.str(&f.profile);
                w.u64(f.observed);
                w.u64(f.retries);
                w.u64(f.recovered);
                w.u64(f.degraded);
                w.u64(f.lost);
                w.u32(f.quarantined_pops.len() as u32);
                for pop in &f.quarantined_pops {
                    w.u64(*pop);
                }
                w.u64(f.rescued_scopes);
                w.u64(f.unmeasured_scopes);
                w.u64(f.assigned_scopes);
            }
        }
        w.u32(s.metrics.counters.len() as u32);
        for (name, inc) in &s.metrics.counters {
            w.str(name);
            w.u64(*inc);
        }
        w.u32(s.metrics.histograms.len() as u32);
        for (name, h) in &s.metrics.histograms {
            w.str(name);
            w.u64(h.count);
            w.u64(h.sum);
            w.u64(h.min);
            w.u64(h.max);
            w.u32(h.buckets.len() as u32);
            for (le, c) in &h.buckets {
                w.u64(*le);
                w.u64(*c);
            }
        }
        w.u32(s.records.len() as u32);
        for ((bound, domain, addr, len), rec) in &s.records {
            w.u16(*bound);
            w.u16(*domain);
            w.u32(*addr);
            w.u8(*len);
            w.u64(rec.attempts);
            w.u64(rec.scope0);
            w.u64(rec.drops);
            w.u32(rec.hit_events.len() as u32);
            for e in &rec.hit_events {
                w.u32(e.resp_addr);
                w.u8(e.resp_len);
                w.u32(e.remaining_ttl);
            }
        }
        w.finish()
    }

    /// Re-encodes a snapshot in the version-2 layout (calibration
    /// section, no confidence section) — the bytes a
    /// pre-clustered-probing build wrote.
    fn encode_v2(s: &SweepSnapshot) -> Vec<u8> {
        let current = s.encode();
        // v2 is the current layout minus the trailing confidence
        // section (count + fixed-width entries) and with the version
        // stamped 2; rebuild from scratch so the checksum is right.
        let mut w = ByteWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u16(2);
        let body_end = current.len() - 8 - 4 - 20 * s.confidence.len();
        w.bytes(&current[6..body_end]);
        w.finish()
    }

    /// A hand-built v2 snapshot whose single calibration record is
    /// produced by `write_record` — for field-level corruption tests
    /// that must survive the checksum.
    fn craft_with_calibration(write_record: impl Fn(&mut ByteWriter)) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u32(1); // epoch
        w.u64(7); // world seed
        w.u64(9); // config digest
        for _ in 0..6 {
            w.u64(0); // gpdns counters
        }
        w.u8(0); // no fault record
        w.u32(0); // no metric counters
        w.u32(0); // no histograms
        w.u32(0); // no scope records
        w.u64(800); // calibration sample
        w.u32(1); // one calibration record
        write_record(&mut w);
        w.u32(0); // no confidence records
        w.finish()
    }

    /// A hand-built v3 snapshot whose single confidence record is
    /// produced by `write_record` — for field-level corruption tests
    /// that must survive the checksum.
    fn craft_with_confidence(write_record: impl Fn(&mut ByteWriter)) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u32(1); // epoch
        w.u64(7); // world seed
        w.u64(9); // config digest
        for _ in 0..6 {
            w.u64(0); // gpdns counters
        }
        w.u8(0); // no fault record
        w.u32(0); // no metric counters
        w.u32(0); // no histograms
        w.u32(0); // no scope records
        w.u64(0); // calibration sample
        w.u32(0); // no calibration records
        w.u32(1); // one confidence record
        write_record(&mut w);
        w.finish()
    }

    #[test]
    fn round_trips_exactly() {
        let s = sample();
        let bytes = s.encode();
        let back = SweepSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // encode(decode(bytes)) is also byte-stable.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rejects_magic_version_and_corruption() {
        let bytes = sample().encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::BadMagic)
        );
        let mut bad = bytes.clone();
        bad[4] = SNAPSHOT_VERSION as u8 + 1;
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::BadVersion(SNAPSHOT_VERSION + 1))
        );
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(SweepSnapshot::decode(&bad).is_err());
        assert!(SweepSnapshot::decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(SweepSnapshot::decode(b"CM").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = SweepSnapshot::new(7, 9);
        assert_eq!(SweepSnapshot::decode(&s.encode()).unwrap(), s);
        assert!(s.quarantined_pops().is_empty());
    }

    #[test]
    fn v1_snapshots_still_load_without_calibration() {
        let s = sample();
        let v1 = encode_v1(&s);
        let back = SweepSnapshot::decode(&v1).expect("v1 layout must keep decoding");
        // Everything a v1 snapshot carried survives…
        assert_eq!(back.records, s.records);
        assert_eq!(back.metrics, s.metrics);
        assert_eq!(back.fault, s.fault);
        assert_eq!(back.gpdns, s.gpdns);
        assert_eq!(
            (back.epoch, back.world_seed, back.config_digest),
            (s.epoch, s.world_seed, s.config_digest)
        );
        // …and the calibration section reads back empty: the warm run
        // re-calibrates live.
        assert!(back.calibration.is_empty());
        assert_eq!(back.calibration_sample, 0);
        // Re-encoding a v1-decoded snapshot writes the current version.
        let bytes = back.encode();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), SNAPSHOT_VERSION);
        assert_eq!(SweepSnapshot::decode(&bytes).unwrap(), back);
    }

    #[test]
    fn v2_snapshots_still_load_with_empty_confidence() {
        let s = sample();
        let v2 = encode_v2(&s);
        assert_eq!(u16::from_le_bytes([v2[4], v2[5]]), 2);
        let back = SweepSnapshot::decode(&v2).expect("v2 layout must keep decoding");
        // Everything a v2 snapshot carried survives…
        assert_eq!(back.records, s.records);
        assert_eq!(back.metrics, s.metrics);
        assert_eq!(back.fault, s.fault);
        assert_eq!(back.calibration, s.calibration);
        assert_eq!(back.calibration_sample, s.calibration_sample);
        assert_eq!(
            (back.epoch, back.world_seed, back.config_digest),
            (s.epoch, s.world_seed, s.config_digest)
        );
        // …and the confidence section reads back empty: the clustered
        // planner simply has no prior tags to escalate from.
        assert!(back.confidence.is_empty());
        // Re-encoding a v2-decoded snapshot writes the current version.
        let bytes = back.encode();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), SNAPSHOT_VERSION);
        assert_eq!(SweepSnapshot::decode(&bytes).unwrap(), back);
    }

    /// A well-formed confidence record for the crafted-buffer tests.
    fn write_good_confidence(w: &mut ByteWriter) {
        w.u16(0); // member bound
        w.u16(1); // member domain
        w.u32(0x0A000100); // member addr
        w.u8(24); // member len
        w.u16(0); // rep bound
        w.u16(1); // rep domain
        w.u32(0x0A000000); // rep addr
        w.u8(24); // rep len
        w.u8(200); // confidence
        w.u8(4); // prior verdict (Hit)
    }

    #[test]
    fn crafted_confidence_sections_parse_or_name_the_bad_field() {
        let good = craft_with_confidence(write_good_confidence);
        let s = SweepSnapshot::decode(&good).expect("good crafted record decodes");
        assert_eq!(s.confidence.len(), 1);
        let rec = s.confidence[&(0, 1, 0x0A000100, 24)];
        assert_eq!(rec.rep, (0, 1, 0x0A000000, 24));
        assert_eq!(rec.confidence, 200);
        assert_eq!(rec.prior_verdict, 4);

        // Impossible member scope length.
        let bad = craft_with_confidence(|w| {
            w.u16(0);
            w.u16(1);
            w.u32(0x0A000100);
            w.u8(33);
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("confidence member scope length"))
        );

        // Impossible representative scope length.
        let bad = craft_with_confidence(|w| {
            w.u16(0);
            w.u16(1);
            w.u32(0x0A000100);
            w.u8(24);
            w.u16(0);
            w.u16(1);
            w.u32(0x0A000000);
            w.u8(40);
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("confidence rep scope length"))
        );

        // A stored record must carry some confidence.
        let bad = craft_with_confidence(|w| {
            w.u16(0);
            w.u16(1);
            w.u32(0x0A000100);
            w.u8(24);
            w.u16(0);
            w.u16(1);
            w.u32(0x0A000000);
            w.u8(24);
            w.u8(0); // untagged sentinel is not storable
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("confidence value"))
        );

        // Prior verdict rank outside the Verdict range.
        let bad = craft_with_confidence(|w| {
            write_good_confidence(w);
        });
        let mut bad = bad;
        // Rewrite the prior-verdict byte (last payload byte before the
        // checksum) and re-seal so only the field check can object.
        let n = bad.len();
        bad[n - 9] = 9;
        let sum = checksum(&bad[..n - 8]);
        bad[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("confidence prior verdict"))
        );
    }

    #[test]
    fn confidence_records_must_come_in_key_order() {
        let s = sample();
        let keys: Vec<RecordKey> = s.confidence.keys().copied().collect();
        assert_eq!(keys.len(), 2);
        // Re-encode with the two entries swapped (descending keys).
        let good = s.encode();
        let entry_bytes = 20 * keys.len();
        let body_end = good.len() - 8 - entry_bytes;
        let mut w = ByteWriter::new();
        w.bytes(&good[..body_end]);
        w.bytes(&good[body_end + 20..body_end + 40]);
        w.bytes(&good[body_end..body_end + 20]);
        let bad = w.finish();
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("confidence key order"))
        );
    }

    #[test]
    fn truncated_or_flipped_confidence_is_rejected() {
        let bytes = sample().encode();
        // Any truncation inside the confidence section fails loudly
        // (checksum covers the whole payload).
        for cut in 1..48 {
            assert!(
                SweepSnapshot::decode(&bytes[..bytes.len() - cut]).is_err(),
                "truncation by {cut} bytes went unnoticed"
            );
        }
        // A bit flip inside the confidence section trips the trailing
        // checksum.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 10] ^= 0x01;
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::BadChecksum)
        );
    }

    /// A well-formed calibration record for the crafted-buffer tests.
    fn write_good_record(w: &mut ByteWriter) {
        w.u64(3); // pop
        w.u8(1); // radius present
        w.u64(1000.0f64.to_bits());
        w.u32(1); // one hit distance
        w.u64(1000.0f64.to_bits());
        w.u64(10); // queries
        w.u64(1); // rate limited
        for _ in 0..4 {
            w.u64(1); // pool hits
            w.u64(0); // pool scope0
            w.u64(1); // pool misses
        }
    }

    #[test]
    fn crafted_calibration_sections_parse_or_name_the_bad_field() {
        // The well-formed record decodes.
        let good = craft_with_calibration(write_good_record);
        let s = SweepSnapshot::decode(&good).expect("good crafted record decodes");
        assert_eq!(s.calibration.len(), 1);
        assert_eq!(s.calibration[0].pop, 3);
        assert_eq!(s.calibration[0].radius_km, Some(1000.0));
        assert_eq!(s.calibration_sample, 800);

        // Radius flag outside {0, 1}.
        let bad = craft_with_calibration(|w| {
            w.u64(3);
            w.u8(9); // bad flag
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("calibration radius flag"))
        );

        // Non-finite radius.
        let bad = craft_with_calibration(|w| {
            w.u64(3);
            w.u8(1);
            w.u64(f64::NAN.to_bits());
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("calibration radius value"))
        );

        // Negative hit distance.
        let bad = craft_with_calibration(|w| {
            w.u64(3);
            w.u8(0);
            w.u32(1);
            w.u64((-4.0f64).to_bits());
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("calibration hit distance"))
        );

        // Outcome counts exceeding the query count.
        let bad = craft_with_calibration(|w| {
            w.u64(3);
            w.u8(0);
            w.u32(0);
            w.u64(1); // queries
            w.u64(0); // rate limited
            for _ in 0..4 {
                w.u64(1);
                w.u64(1);
                w.u64(1);
            }
        });
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::Malformed("calibration outcome counts"))
        );
    }

    #[test]
    fn calibration_records_must_come_in_pop_order() {
        let mut s = sample();
        s.calibration.swap(0, 1); // descending pop order
        assert_eq!(
            SweepSnapshot::decode(&s.encode()).err(),
            Some(CodecError::Malformed("calibration pop order"))
        );
    }

    #[test]
    fn truncated_or_flipped_calibration_is_rejected() {
        let bytes = sample().encode();
        // Any truncation inside the calibration section fails loudly
        // (checksum covers the whole payload).
        for cut in 1..60 {
            assert!(
                SweepSnapshot::decode(&bytes[..bytes.len() - cut]).is_err(),
                "truncation by {cut} bytes went unnoticed"
            );
        }
        // A bit flip inside the calibration section trips the checksum.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 20] ^= 0x01;
        assert_eq!(
            SweepSnapshot::decode(&bad).err(),
            Some(CodecError::BadChecksum)
        );
    }
}
