//! Per-/24 probe verdicts with the technique's merge ranking.

use crate::Slash24Table;

/// The best probing evidence seen for one /24, ordered by the same
/// ranking the probe loops use to merge redundant queries:
/// `Hit > HitScopeZero > Miss > Dropped` (> `Unmeasured`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum Verdict {
    /// Never probed (or assigned but never reached).
    #[default]
    Unmeasured = 0,
    /// Probed, every attempt lost.
    Dropped = 1,
    /// Probed, answered, never present in any cache.
    Miss = 2,
    /// Answered only with a /0 scope (cached, location unusable).
    HitScopeZero = 3,
    /// Cached with a usable scope — active client space.
    Hit = 4,
}

impl Verdict {
    /// All verdicts, ascending by rank.
    pub const ALL: [Verdict; 5] = [
        Verdict::Unmeasured,
        Verdict::Dropped,
        Verdict::Miss,
        Verdict::HitScopeZero,
        Verdict::Hit,
    ];

    /// The verdict encoded by `v`, if valid.
    pub fn from_u8(v: u8) -> Option<Verdict> {
        Verdict::ALL.get(v as usize).copied()
    }
}

/// A dense per-/24 [`Verdict`] map over the whole IPv4 space.
///
/// Recording merges by max rank, so the table converges to the best
/// evidence regardless of insertion order — exactly the commutativity
/// the deterministic executor's ordered reduction relies on.
#[derive(Debug, Clone, Default)]
pub struct VerdictTable {
    table: Slash24Table,
}

impl VerdictTable {
    /// An all-[`Verdict::Unmeasured`] table.
    pub fn new() -> VerdictTable {
        VerdictTable::default()
    }

    /// The verdict for /24 index `idx`.
    pub fn get(&self, idx: u32) -> Verdict {
        Verdict::from_u8(self.table.get(idx)).unwrap_or(Verdict::Unmeasured)
    }

    /// Merges `v` into /24 index `idx` by max rank; returns the
    /// resulting verdict.
    pub fn record(&mut self, idx: u32, v: Verdict) -> Verdict {
        let best = self.get(idx).max(v);
        if best != Verdict::Unmeasured {
            self.table.set(idx, best as u8);
        }
        best
    }

    /// Overwrites /24 index `idx` with `v`, rank regardless —
    /// [`Verdict::Unmeasured`] clears the slot. This is the event-log
    /// replay primitive: a later generation's verdict *replaces* the
    /// earlier one (activity can lapse), unlike [`VerdictTable::record`]
    /// which merges redundant probes of one sweep by max rank.
    pub fn set(&mut self, idx: u32, v: Verdict) {
        self.table.set(idx, v as u8);
    }

    /// Folds every measured entry of `other` into `self`.
    pub fn merge_from(&mut self, other: &VerdictTable) {
        for (idx, v) in other.iter_measured() {
            self.record(idx, v);
        }
    }

    /// Number of /24s with any verdict above [`Verdict::Unmeasured`].
    pub fn count_measured(&self) -> u64 {
        self.table.count_nonzero()
    }

    /// `(index, verdict)` for every measured /24, ascending by index.
    pub fn iter_measured(&self) -> impl Iterator<Item = (u32, Verdict)> + '_ {
        self.table
            .iter_nonzero()
            .map(|(idx, v)| (idx, Verdict::from_u8(v).unwrap_or(Verdict::Unmeasured)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_by_rank() {
        let mut t = VerdictTable::new();
        assert_eq!(t.record(7, Verdict::Miss), Verdict::Miss);
        assert_eq!(t.record(7, Verdict::Dropped), Verdict::Miss);
        assert_eq!(t.record(7, Verdict::Hit), Verdict::Hit);
        assert_eq!(t.get(7), Verdict::Hit);
        assert_eq!(t.get(8), Verdict::Unmeasured);
        assert_eq!(t.count_measured(), 1);
    }

    #[test]
    fn merge_from_is_max_per_slot() {
        let mut a = VerdictTable::new();
        a.record(1, Verdict::Miss);
        a.record(2, Verdict::Hit);
        let mut b = VerdictTable::new();
        b.record(1, Verdict::HitScopeZero);
        b.record(3, Verdict::Dropped);
        a.merge_from(&b);
        assert_eq!(
            a.iter_measured().collect::<Vec<_>>(),
            vec![
                (1, Verdict::HitScopeZero),
                (2, Verdict::Hit),
                (3, Verdict::Dropped)
            ]
        );
    }
}
