//! The incremental re-sweep planner: given a prior sweep's record for
//! a scope, decide whether the new sweep must probe it again.
//!
//! Classification is a pure function of `(prior record, dirty flag,
//! expiry budget, epoch, stable hash)`, so plans are byte-identical at
//! any thread count and across machines. Reasons carry a strict
//! precedence so each planned scope is counted exactly once — the
//! conservation laws `planned + skipped_warm == universe` and
//! `new + dirty + rescued + expired == planned` are enforced by
//! `clientmap-core`'s invariant layer after every warm run.

/// Why the planner re-probes a scope, in precedence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanReason {
    /// No prior record: the scope (or its assignment) is new.
    New,
    /// The scope's PoP was quarantined last sweep — its data is
    /// suspect regardless of what the record says.
    Dirty,
    /// The prior sweep never measured it (zero attempts, or every
    /// attempt dropped): rescue it.
    Rescue,
    /// The record's freshness lapsed under the rotating TTL budget.
    Expired,
}

impl PlanReason {
    /// The counter-name suffix for this reason.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanReason::New => "new",
            PlanReason::Dirty => "dirty",
            PlanReason::Rescue => "rescued",
            PlanReason::Expired => "expired",
        }
    }
}

/// The planner's view of one prior scope record.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorScope {
    /// Probe events the prior sweep sent for this scope.
    pub attempts: u64,
    /// Events lost entirely.
    pub drops: u64,
}

/// Decides whether one scope needs probing this sweep.
///
/// * `prior` — the previous record, if any (with `dirty` true when its
///   PoP was quarantined).
/// * `expiry_budget` — fraction of records that lapse per epoch
///   (0 disables expiry). Budget `b` partitions scopes into
///   `K = round(1/b)` stable classes by `expiry_hash`; epoch `e`
///   refreshes class `e mod K`, so every scope is re-measured at least
///   once every `K` warm sweeps — rolling freshness, not a stampede.
/// * `epoch` — the epoch of the sweep being planned.
/// * `expiry_hash` — a stable hash of the scope's identity (never of
///   execution order).
pub fn classify(
    prior: Option<(PriorScope, bool)>,
    expiry_budget: f64,
    epoch: u32,
    expiry_hash: u64,
) -> Option<PlanReason> {
    let Some((record, dirty)) = prior else {
        return Some(PlanReason::New);
    };
    if dirty {
        return Some(PlanReason::Dirty);
    }
    if record.attempts == record.drops {
        // Zero attempts (never reached) or all attempts dropped: the
        // prior sweep learned nothing about this scope.
        return Some(PlanReason::Rescue);
    }
    if expiry_budget > 0.0 {
        let classes = (1.0 / expiry_budget).round().max(1.0) as u64;
        if expiry_hash % classes == u64::from(epoch) % classes {
            return Some(PlanReason::Expired);
        }
    }
    None
}

/// Planner accounting for one warm sweep; mirrors the
/// `cacheprobe.planner.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Assigned ⟨vantage, domain, scope⟩ instances considered.
    pub universe: u64,
    /// Instances emitted as probe work.
    pub planned: u64,
    /// Instances skipped thanks to the warm snapshot.
    pub skipped_warm: u64,
    /// Planned because no prior record existed.
    pub new: u64,
    /// Planned because the prior PoP was quarantined.
    pub dirty: u64,
    /// Planned as rescues of unmeasured/fully-dropped scopes.
    pub rescued: u64,
    /// Planned because freshness lapsed.
    pub expired: u64,
}

impl PlannerStats {
    /// Tallies one decision.
    pub fn count(&mut self, decision: Option<PlanReason>) {
        self.universe += 1;
        match decision {
            None => self.skipped_warm += 1,
            Some(reason) => {
                self.planned += 1;
                match reason {
                    PlanReason::New => self.new += 1,
                    PlanReason::Dirty => self.dirty += 1,
                    PlanReason::Rescue => self.rescued += 1,
                    PlanReason::Expired => self.expired += 1,
                }
            }
        }
    }

    /// The conservation laws the invariant layer re-checks.
    pub fn conserved(&self) -> bool {
        self.planned + self.skipped_warm == self.universe
            && self.new + self.dirty + self.rescued + self.expired == self.planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEASURED: PriorScope = PriorScope {
        attempts: 9,
        drops: 1,
    };

    #[test]
    fn precedence_new_dirty_rescue_expired() {
        assert_eq!(classify(None, 1.0, 0, 0), Some(PlanReason::New));
        let unmeasured = PriorScope {
            attempts: 0,
            drops: 0,
        };
        assert_eq!(
            classify(Some((unmeasured, true)), 0.0, 1, 0),
            Some(PlanReason::Dirty),
            "dirty outranks rescue"
        );
        assert_eq!(
            classify(Some((unmeasured, false)), 0.0, 1, 0),
            Some(PlanReason::Rescue)
        );
        let all_dropped = PriorScope {
            attempts: 5,
            drops: 5,
        };
        assert_eq!(
            classify(Some((all_dropped, false)), 0.0, 1, 0),
            Some(PlanReason::Rescue)
        );
        // hash 0 matches epoch 10 mod 10.
        assert_eq!(
            classify(Some((MEASURED, false)), 0.1, 10, 0),
            Some(PlanReason::Expired)
        );
        assert_eq!(classify(Some((MEASURED, false)), 0.1, 10, 1), None);
        assert_eq!(classify(Some((MEASURED, false)), 0.0, 10, 0), None);
    }

    #[test]
    fn expiry_rotates_through_every_class() {
        // Over K consecutive epochs, a measured scope expires exactly
        // once, whatever its hash.
        for hash in [0u64, 3, 7, 9, 1234567] {
            let expirations = (1..=10u32)
                .filter(|&e| classify(Some((MEASURED, false)), 0.1, e, hash).is_some())
                .count();
            assert_eq!(expirations, 1, "hash {hash}");
        }
    }

    #[test]
    fn stats_conserve() {
        let mut stats = PlannerStats::default();
        stats.count(Some(PlanReason::New));
        stats.count(Some(PlanReason::Dirty));
        stats.count(Some(PlanReason::Rescue));
        stats.count(Some(PlanReason::Expired));
        stats.count(None);
        assert_eq!(stats.universe, 5);
        assert_eq!(stats.planned, 4);
        assert_eq!(stats.skipped_warm, 1);
        assert!(stats.conserved());
    }
}
