//! Property tests for the dense store: random insert/query/merge
//! sequences checked against plain-map reference models (same
//! verdicts, same iteration order), and snapshot round-trip +
//! corruption-rejection laws. The shim proptest runner derives its RNG
//! seed from each test's name, so every run replays the same cases.

use std::collections::{BTreeMap, BTreeSet};

use clientmap_net::Prefix;
use clientmap_store::{
    FaultRecord, HitEvent, ScopeRecord, Slash24Bitset, SweepSnapshot, Verdict, VerdictTable,
};
use clientmap_telemetry::HistogramDelta;
use proptest::prelude::*;

fn prefix_strategy() -> impl Strategy<Value = Prefix> {
    (0u32..=u32::MAX, 12u8..=24).prop_map(|(addr, len)| Prefix::new(addr, len).unwrap())
}

fn verdict_strategy() -> impl Strategy<Value = Verdict> {
    (0u8..=4).prop_map(|v| Verdict::from_u8(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitset vs `BTreeSet<u32>`: membership, cardinality, iteration
    /// order, and the AND/OR popcounts all agree for any insert/merge
    /// sequence.
    #[test]
    fn bitset_matches_reference_model(
        a_prefixes in proptest::collection::vec(prefix_strategy(), 0..40),
        b_prefixes in proptest::collection::vec(prefix_strategy(), 0..40),
    ) {
        let mut a = Slash24Bitset::new();
        let mut a_ref = BTreeSet::new();
        for p in &a_prefixes {
            a.insert_prefix(*p);
            let first = p.first_addr() >> 8;
            a_ref.extend(first..first + p.num_slash24s() as u32);
        }
        prop_assert_eq!(a.count(), a_ref.len() as u64);
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), a_ref.iter().copied().collect::<Vec<_>>());

        let b = Slash24Bitset::from_prefixes(&b_prefixes);
        let b_ref: BTreeSet<u32> = b
            .iter()
            .collect();
        for idx in a_ref.iter().take(8).chain(b_ref.iter().take(8)) {
            prop_assert_eq!(a.contains(*idx), a_ref.contains(idx));
        }
        prop_assert_eq!(a.and_count(&b), a_ref.intersection(&b_ref).count() as u64);
        prop_assert_eq!(a.or_count(&b), a_ref.union(&b_ref).count() as u64);

        // Merge = set union, including the incremental `ones` count.
        let mut merged = a.clone();
        merged.union_with(&b);
        let merged_ref: Vec<u32> = a_ref.union(&b_ref).copied().collect();
        prop_assert_eq!(merged.count(), merged_ref.len() as u64);
        prop_assert_eq!(merged.iter().collect::<Vec<_>>(), merged_ref);
    }

    /// VerdictTable vs `BTreeMap<u32, Verdict>` under max-rank merge:
    /// same verdicts, same ascending iteration order, for any record
    /// sequence split arbitrarily into two tables merged afterwards.
    #[test]
    fn verdict_table_matches_reference_model(
        ops in proptest::collection::vec(
            (0u32..1 << 24, verdict_strategy(), proptest::arbitrary::any::<bool>()),
            1..120,
        ),
    ) {
        let mut left = VerdictTable::new();
        let mut right = VerdictTable::new();
        let mut reference: BTreeMap<u32, Verdict> = BTreeMap::new();
        for (idx, verdict, go_left) in &ops {
            let table = if *go_left { &mut left } else { &mut right };
            table.record(*idx, *verdict);
            let slot = reference.entry(*idx).or_default();
            *slot = (*slot).max(*verdict);
        }
        left.merge_from(&right);
        reference.retain(|_, v| *v != Verdict::Unmeasured);
        for (idx, expected) in reference.iter().take(16) {
            prop_assert_eq!(left.get(*idx), *expected);
        }
        prop_assert_eq!(left.count_measured(), reference.len() as u64);
        prop_assert_eq!(
            left.iter_measured().collect::<Vec<_>>(),
            reference.into_iter().collect::<Vec<_>>()
        );
    }
}

fn record_strategy() -> impl Strategy<Value = ScopeRecord> {
    (
        0u64..6,
        0u64..3,
        0u64..3,
        proptest::collection::vec((0u32..=u32::MAX, 0u8..=24, 0u32..100_000), 0..4),
    )
        .prop_map(|(extra, scope0, drops, events)| {
            let hit_events: Vec<HitEvent> = events
                .into_iter()
                .map(|(resp_addr, resp_len, remaining_ttl)| HitEvent {
                    resp_addr,
                    resp_len,
                    remaining_ttl,
                })
                .collect();
            // Attempts always cover the outcomes, as in a real sweep.
            ScopeRecord {
                attempts: hit_events.len() as u64 + scope0 + drops + extra,
                scope0,
                drops,
                hit_events,
            }
        })
}

fn snapshot_strategy() -> impl Strategy<Value = SweepSnapshot> {
    (
        (
            1u32..50,
            proptest::arbitrary::any::<u64>(),
            proptest::arbitrary::any::<u64>(),
        ),
        proptest::collection::vec(proptest::arbitrary::any::<u64>(), 6),
        proptest::option::of((0u64..100, proptest::collection::vec(0u64..64, 0..4))),
        proptest::collection::vec(
            (0u16..8, 0u16..5, prefix_strategy(), record_strategy()),
            0..24,
        ),
        proptest::collection::vec((0u64..1 << 40, 1u64..1 << 20), 0..6),
    )
        .prop_map(
            |((epoch, world_seed, digest), gpdns, fault, records, counters)| {
                let mut snap = SweepSnapshot::new(world_seed, digest);
                snap.epoch = epoch;
                snap.gpdns = gpdns.try_into().unwrap();
                snap.fault = fault.map(|(observed, quarantined_pops)| FaultRecord {
                    profile: "lossy".into(),
                    observed,
                    retries: observed / 2,
                    recovered: observed / 3,
                    degraded: observed / 7,
                    lost: observed - observed / 3 - observed / 7,
                    quarantined_pops,
                    rescued_scopes: 3,
                    unmeasured_scopes: 2,
                    assigned_scopes: observed + 5,
                });
                for (bound, domain, scope, record) in records {
                    snap.records
                        .insert((bound, domain, scope.addr(), scope.len()), record);
                }
                for (i, (sum, count)) in counters.iter().enumerate() {
                    snap.metrics
                        .counters
                        .insert(format!("cacheprobe.c{i}"), *count);
                    snap.metrics.histograms.insert(
                        format!("cacheprobe.h{i}"),
                        HistogramDelta {
                            count: *count,
                            sum: *sum,
                            min: sum % 97,
                            max: sum % 97 + count,
                            buckets: vec![(127, *count)],
                        },
                    );
                }
                snap
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decode(encode(x)) == x` and `encode(decode(bytes)) == bytes`
    /// for arbitrary snapshots.
    #[test]
    fn snapshot_round_trips(snap in snapshot_strategy()) {
        let bytes = snap.encode();
        let back = SweepSnapshot::decode(&bytes).expect("fresh encoding decodes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Flipping any single byte is always rejected — by the checksum,
    /// or by the stricter magic/version gates in front of it.
    #[test]
    fn corruption_is_always_rejected(
        snap in snapshot_strategy(),
        flip in proptest::arbitrary::any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = snap.encode();
        let pos = (flip % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            SweepSnapshot::decode(&bytes).is_err(),
            "flip at byte {} bit {} went undetected",
            pos,
            bit
        );
    }
}
