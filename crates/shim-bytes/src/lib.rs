//! Offline stand-in for the `bytes` crate (API subset).
//!
//! The DNS wire codec only needs an append-only byte buffer with
//! big-endian integer writers and slice indexing, so [`BytesMut`] is a
//! thin newtype over `Vec<u8>` and [`BufMut`] carries the `put_*`
//! writers. Semantics match the real crate for this subset.

use std::ops::{Deref, DerefMut};

/// Append-only growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Consumes the buffer, yielding the written bytes.
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Big-endian append writers (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_are_big_endian_and_ordered() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x0304_0506);
        b.put_slice(&[9, 8]);
        assert_eq!(&b[..], &[0xAB, 1, 2, 3, 4, 5, 6, 9, 8]);
        assert_eq!(b.len(), 9);
        b[0] = 0xCD;
        assert_eq!(b.to_vec()[0], 0xCD);
    }
}
